"""Synthetic holiday domain (SASY / Top Case stand-in, refs [11], [24]).

Figure 1 of the paper shows SASY, a *scrutable* holiday recommender: the
page explains which profile attributes (volunteered or inferred) selected
each holiday, and lets the user change them.  This generator supplies the
holiday catalogue, its typed schema and a default profile-attribute
vocabulary for the scrutable-profile machinery.
"""

from __future__ import annotations

import numpy as np

from repro.recsys.data import Dataset, Item, RatingScale, User
from repro.recsys.knowledge import AttributeSpec, Catalog

__all__ = [
    "DESTINATIONS",
    "CLIMATES",
    "ACTIVITIES",
    "holiday_catalog",
    "make_holidays",
    "PROFILE_VOCABULARY",
]

DESTINATIONS = (
    "Crete", "Lapland", "Tuscany", "Bali", "Hebrides", "Kyoto", "Patagonia",
    "Algarve",
)
CLIMATES = ("hot", "mild", "cold")
ACTIVITIES = ("beach", "skiing", "hiking", "culture", "nightlife", "family-park")

PROFILE_VOCABULARY: dict[str, tuple[object, ...]] = {
    "likes_beach": (True, False),
    "travels_with_children": (True, False),
    "budget_conscious": (True, False),
    "preferred_climate": CLIMATES,
    "preferred_activity": ACTIVITIES,
}
"""Attributes a scrutable holiday profile may contain."""


def holiday_catalog() -> Catalog:
    """The attribute schema of the holiday domain."""
    return Catalog(
        [
            AttributeSpec(name="destination", kind="categorical"),
            AttributeSpec(name="climate", kind="categorical"),
            AttributeSpec(name="activity", kind="categorical"),
            AttributeSpec(
                name="price",
                kind="numeric",
                direction="lower_better",
                low=200.0,
                high=5000.0,
                unit="EUR",
                less_phrase="Cheaper",
                more_phrase="More Expensive",
            ),
            AttributeSpec(
                name="duration_days",
                kind="numeric",
                low=3.0,
                high=21.0,
                unit="days",
                less_phrase="Shorter",
                more_phrase="Longer",
            ),
            AttributeSpec(name="family_friendly", kind="boolean"),
        ]
    )


_CLIMATE_BY_DESTINATION = {
    "Crete": "hot",
    "Lapland": "cold",
    "Tuscany": "mild",
    "Bali": "hot",
    "Hebrides": "cold",
    "Kyoto": "mild",
    "Patagonia": "cold",
    "Algarve": "hot",
}


def make_holidays(n_items: int = 48, seed: int = 41) -> tuple[Dataset, Catalog]:
    """A holiday catalogue with destination-consistent climates."""
    rng = np.random.default_rng(seed)
    catalog = holiday_catalog()
    items: list[Item] = []
    for index in range(n_items):
        destination = DESTINATIONS[int(rng.integers(0, len(DESTINATIONS)))]
        climate = _CLIMATE_BY_DESTINATION[destination]
        if climate == "cold":
            activity_pool = ("skiing", "hiking", "culture")
        elif climate == "hot":
            activity_pool = ("beach", "nightlife", "family-park", "culture")
        else:
            activity_pool = ("culture", "hiking", "family-park")
        activity = activity_pool[int(rng.integers(0, len(activity_pool)))]
        family_friendly = activity in ("beach", "family-park", "hiking")
        price = float(rng.uniform(200.0, 5000.0))
        items.append(
            Item(
                item_id=f"holiday_{index:03d}",
                title=f"{destination} {activity} break ({index:03d})",
                attributes={
                    "destination": destination,
                    "climate": climate,
                    "activity": activity,
                    "price": round(price, 0),
                    "duration_days": float(rng.integers(3, 22)),
                    "family_friendly": family_friendly,
                },
                keywords=frozenset(
                    {destination.lower(), climate, activity, "holiday"}
                ),
                topics=("holidays", activity),
                recency=float(rng.uniform(0.0, 100.0)),
            )
        )
    users = [User(user_id="traveller", name="Holiday planner")]
    dataset = Dataset(items=items, users=users, scale=RatingScale())
    return dataset, catalog
