"""Synthetic movie domain (MovieLens stand-in).

The paper's collaborative-filtering examples — MovieLens explanation
interfaces [10, 18], the TiVo anecdote, the Wärnestål thriller dialog —
all live in a movie world.  :func:`make_movies` builds one: genre-aligned
latent tastes, title strings, actor/director keyword bags (so the dialog
manager can answer "a thriller starring Bruce Willis"-style requests).
"""

from __future__ import annotations

import numpy as np

from repro.domains._synthetic import SyntheticWorld, build_world

__all__ = ["MOVIE_GENRES", "make_movies"]

MOVIE_GENRES: dict[str, tuple[str, ...]] = {
    "action": (
        "explosion", "chase", "hero", "gunfight", "stunt", "vendetta",
        "willis", "stallone", "mission",
    ),
    "comedy": (
        "laugh", "slapstick", "romcom", "wedding", "standup", "farce",
        "mistaken-identity", "roadtrip",
    ),
    "drama": (
        "family", "tragedy", "courtroom", "memoir", "redemption",
        "smalltown", "award-winning",
    ),
    "thriller": (
        "suspense", "conspiracy", "detective", "noir", "twist",
        "serial", "willis", "heist",
    ),
    "scifi": (
        "space", "robot", "alien", "dystopia", "timetravel", "cyber",
        "terraform", "android",
    ),
    "documentary": (
        "history", "nature", "biography", "war", "archive",
        "investigation", "wildlife",
    ),
}
"""Genre to keyword-vocabulary mapping for the movie world."""

_TITLE_ADJECTIVES = (
    "Last", "Dark", "Silent", "Golden", "Broken", "Hidden", "Final",
    "Crimson", "Electric", "Lost",
)
_TITLE_NOUNS = {
    "action": ("Strike", "Pursuit", "Protocol", "Vengeance", "Squadron"),
    "comedy": ("Wedding", "Roommate", "Holiday", "Reunion", "Caper"),
    "drama": ("Harvest", "Letter", "Promise", "Winter", "Verdict"),
    "thriller": ("Witness", "Cipher", "Alibi", "Informant", "Hour"),
    "scifi": ("Horizon", "Colony", "Signal", "Paradox", "Machine"),
    "documentary": ("Archive", "Frontier", "Century", "Kingdom", "Record"),
}


def _movie_title(genre: str, index: int, rng: np.random.Generator) -> str:
    adjective = _TITLE_ADJECTIVES[int(rng.integers(0, len(_TITLE_ADJECTIVES)))]
    nouns = _TITLE_NOUNS[genre]
    noun = nouns[int(rng.integers(0, len(nouns)))]
    return f"The {adjective} {noun} ({index:03d})"


def _movie_attributes(
    genre: str, index: int, rng: np.random.Generator
) -> dict[str, object]:
    return {
        "year": int(rng.integers(1985, 2007)),
        "runtime_minutes": int(rng.integers(85, 165)),
    }


def make_movies(
    n_users: int = 60,
    n_items: int = 120,
    seed: int = 7,
    density: float = 0.18,
    noise: float = 0.45,
) -> SyntheticWorld:
    """A synthetic movie world with genre-aligned latent preferences."""
    return build_world(
        prefix="movie",
        n_users=n_users,
        n_items=n_items,
        genre_keywords=MOVIE_GENRES,
        title_maker=_movie_title,
        attribute_maker=_movie_attributes,
        seed=seed,
        density=density,
        noise=noise,
        shared_keywords=("sequel", "cult", "blockbuster", "indie"),
    )
