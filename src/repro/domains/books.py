"""Synthetic book domain (LIBRA / Amazon stand-in).

The influence-explanation experiments (Bilgic & Mooney [5], Figure 3) and
the "You might also like ... Oliver Twist by Charles Dickens" example
(Section 4.3) live in a book world.  Books carry an ``author`` attribute
and author-token keywords, so same-author books are genuinely
content-similar — exactly the structure the LIBRA influence table needs.
"""

from __future__ import annotations

import numpy as np

from repro.domains._synthetic import SyntheticWorld, build_world

__all__ = ["BOOK_GENRES", "BOOK_AUTHORS", "make_books"]

BOOK_GENRES: dict[str, tuple[str, ...]] = {
    "victorian": (
        "orphan", "london", "inheritance", "serialized", "social-critique",
        "workhouse", "bildungsroman",
    ),
    "mystery": (
        "detective", "murder", "clue", "locked-room", "inspector",
        "poison", "alibi",
    ),
    "fantasy": (
        "quest", "dragon", "prophecy", "kingdom", "magic", "sword",
        "chosen-one",
    ),
    "scifi": (
        "galaxy", "empire", "ai", "clone", "starship", "first-contact",
        "uplift",
    ),
    "romance": (
        "courtship", "regency", "letters", "estate", "elopement",
        "misunderstanding",
    ),
    "history": (
        "empire-fall", "biography", "war", "archive", "dynasty",
        "revolution",
    ),
}
"""Genre to keyword-vocabulary mapping for the book world."""

BOOK_AUTHORS: dict[str, tuple[str, ...]] = {
    "victorian": ("dickens", "gaskell", "trollope"),
    "mystery": ("christie", "sayers", "chandler"),
    "fantasy": ("lefay", "thorn", "umber"),
    "scifi": ("vance", "solari", "quill"),
    "romance": ("austen-school", "ferrier", "brook"),
    "history": ("gibbonish", "tuchman-like", "mantelled"),
}
"""Per-genre author pools; the author token joins the keyword bag."""

_TITLE_WORDS = {
    "victorian": ("Expectations", "Times", "House", "Friend", "Curiosity"),
    "mystery": ("Vicarage", "Express", "Corpse", "Testament", "Window"),
    "fantasy": ("Crown", "Gate", "Flame", "Oath", "Shard"),
    "scifi": ("Nebula", "Vault", "Drift", "Engine", "Echo"),
    "romance": ("Park", "Abbey", "Persuasion", "Garden", "Season"),
    "history": ("Decline", "Guns", "Mirror", "Crossing", "Throne"),
}


def _book_author(genre: str, rng: np.random.Generator) -> str:
    pool = BOOK_AUTHORS[genre]
    return pool[int(rng.integers(0, len(pool)))]


def _make_title(genre: str, index: int, rng: np.random.Generator) -> str:
    words = _TITLE_WORDS[genre]
    word = words[int(rng.integers(0, len(words)))]
    return f"The {word} (vol. {index:03d})"


def make_books(
    n_users: int = 50,
    n_items: int = 100,
    seed: int = 11,
    density: float = 0.16,
    noise: float = 0.45,
) -> SyntheticWorld:
    """A synthetic book world with authors woven into the keyword bags."""
    rng_for_authors = np.random.default_rng(seed + 1)
    authors: dict[int, str] = {}

    def attribute_maker(
        genre: str, index: int, rng: np.random.Generator
    ) -> dict[str, object]:
        author = _book_author(genre, rng_for_authors)
        authors[index] = author
        return {"author": author, "pages": int(rng.integers(150, 900))}

    world = build_world(
        prefix="book",
        n_users=n_users,
        n_items=n_items,
        genre_keywords=BOOK_GENRES,
        title_maker=_make_title,
        attribute_maker=attribute_maker,
        seed=seed,
        density=density,
        noise=noise,
        shared_keywords=("bestseller", "classic", "translated"),
    )

    # Fold the author token into each book's keyword bag so that books by
    # the same author are content-similar (the Dickens effect).
    rebuilt = []
    for item in world.dataset.items.values():
        author = str(item.attributes["author"])
        rebuilt.append(
            type(item)(
                item_id=item.item_id,
                title=item.title,
                attributes=item.attributes,
                keywords=item.keywords | {author},
                topics=item.topics,
                recency=item.recency,
            )
        )
    for item in rebuilt:
        world.dataset.add_item(item)
    return world
