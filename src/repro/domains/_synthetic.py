"""Shared machinery for synthetic rating worlds.

The original studies the survey draws on used human subjects and
proprietary catalogues (MovieLens, TiVo, Amazon).  Offline we substitute
**latent-factor synthetic worlds**: users and items get latent taste
vectors; an item's *true utility* for a user is an affine map of their
dot product onto the rating scale; an observed rating is the true utility
plus Gaussian noise.  Unlike human datasets this gives us ground truth,
which Section 3.5's effectiveness measure (rating before vs. after
consumption) requires.

Topic structure is injected by assigning each item a dominant genre from
its strongest latent factor group, which makes genre labels, keywords and
latent preferences mutually consistent — a user whose factors load on the
"football" group genuinely likes football items.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.recsys.data import Dataset, Item, Rating, RatingScale, User

__all__ = ["SyntheticWorld", "build_world"]


@dataclass
class SyntheticWorld:
    """A synthetic dataset plus its generating ground truth.

    ``dataset`` holds the observed (noisy, subsampled) ratings that
    recommenders train on; ``true_utility`` answers what the user would
    *really* think of an item after consuming it.
    """

    dataset: Dataset
    user_factors: np.ndarray
    item_factors: np.ndarray
    user_index: dict[str, int]
    item_index: dict[str, int]
    noise: float
    rng: np.random.Generator = field(repr=False)

    @property
    def scale(self) -> RatingScale:
        """The rating scale of the underlying dataset."""
        return self.dataset.scale

    def true_utility(self, user_id: str, item_id: str) -> float:
        """Noise-free utility of an item for a user, on the rating scale."""
        u = self.user_factors[self.user_index[user_id]]
        v = self.item_factors[self.item_index[item_id]]
        affinity = float(np.dot(u, v)) / len(u)
        # affinity is roughly in [-1, 1]; map onto the scale.
        unit = (np.tanh(affinity * 2.0) + 1.0) / 2.0
        return self.scale.denormalize(float(unit))

    def observed_rating(
        self, user_id: str, item_id: str, rng: np.random.Generator | None = None
    ) -> float:
        """A fresh noisy rating draw for (user, item)."""
        rng = rng if rng is not None else self.rng
        value = self.true_utility(user_id, item_id) + rng.normal(0.0, self.noise)
        return _round_to_half(self.scale.clip(value))

    def relevant_items(self, user_id: str) -> frozenset[str]:
        """Items whose *true* utility clears the like threshold."""
        return frozenset(
            item_id
            for item_id in self.item_index
            if self.scale.is_positive(self.true_utility(user_id, item_id))
        )


def _round_to_half(value: float) -> float:
    return round(value * 2.0) / 2.0


def build_world(
    prefix: str,
    n_users: int,
    n_items: int,
    genre_keywords: Mapping[str, Sequence[str]],
    title_maker,
    seed: int = 0,
    density: float = 0.15,
    noise: float = 0.5,
    factors_per_genre: int = 2,
    keywords_per_item: int = 6,
    shared_keywords: Sequence[str] = (),
    attribute_maker=None,
    scale: RatingScale | None = None,
) -> SyntheticWorld:
    """Construct a synthetic world with genre-aligned latent factors.

    Parameters
    ----------
    prefix:
        Id prefix, e.g. ``"movie"`` produces ``movie_000`` item ids.
    genre_keywords:
        Mapping of genre name to its keyword vocabulary.
    title_maker:
        ``title_maker(genre, index, rng) -> str``.
    attribute_maker:
        Optional ``attribute_maker(genre, index, rng) -> dict`` adding
        structured attributes to each item.
    density:
        Fraction of the (user, item) grid observed as ratings.
    noise:
        Standard deviation of observation noise on the rating scale.
    """
    rng = np.random.default_rng(seed)
    genres = list(genre_keywords)
    n_factors = len(genres) * factors_per_genre
    scale = scale if scale is not None else RatingScale()

    # Users: a mildly genre-concentrated taste vector.
    user_factors = rng.normal(0.0, 0.6, size=(n_users, n_factors))
    favorite_genres = rng.integers(0, len(genres), size=n_users)
    for row, genre_index in enumerate(favorite_genres):
        start = genre_index * factors_per_genre
        user_factors[row, start : start + factors_per_genre] += rng.normal(
            1.2, 0.3, size=factors_per_genre
        )

    # Items: concentrated on their genre's factor block.
    item_factors = rng.normal(0.0, 0.4, size=(n_items, n_factors))
    item_genres = rng.integers(0, len(genres), size=n_items)
    for row, genre_index in enumerate(item_genres):
        start = genre_index * factors_per_genre
        item_factors[row, start : start + factors_per_genre] += rng.normal(
            1.5, 0.4, size=factors_per_genre
        )

    items: list[Item] = []
    for index in range(n_items):
        genre = genres[item_genres[index]]
        vocabulary = list(genre_keywords[genre])
        n_genre_keywords = min(
            max(2, keywords_per_item - 2), len(vocabulary)
        )
        chosen = set(
            rng.choice(vocabulary, size=n_genre_keywords, replace=False)
        )
        if shared_keywords:
            n_shared = min(2, len(shared_keywords))
            chosen.update(rng.choice(shared_keywords, size=n_shared, replace=False))
        chosen.add(genre)
        attributes: dict[str, object] = {"genre": genre}
        if attribute_maker is not None:
            attributes.update(attribute_maker(genre, index, rng))
        items.append(
            Item(
                item_id=f"{prefix}_{index:03d}",
                title=title_maker(genre, index, rng),
                attributes=attributes,
                keywords=frozenset(str(k) for k in chosen),
                topics=(genre,),
                recency=float(rng.uniform(0.0, 100.0)),
            )
        )

    users = [
        User(
            user_id=f"user_{index:03d}",
            name=f"User {index}",
            attributes={"favorite_genre": genres[favorite_genres[index]]},
        )
        for index in range(n_users)
    ]

    dataset = Dataset(items=items, users=users, scale=scale)
    user_index = {user.user_id: i for i, user in enumerate(users)}
    item_index = {item.item_id: j for j, item in enumerate(items)}

    world = SyntheticWorld(
        dataset=dataset,
        user_factors=user_factors,
        item_factors=item_factors,
        user_index=user_index,
        item_index=item_index,
        noise=noise,
        rng=rng,
    )

    # Observe a random subsample of the grid as training ratings.
    for user in users:
        for item in items:
            if rng.random() < density:
                dataset.add_rating(
                    Rating(
                        user_id=user.user_id,
                        item_id=item.item_id,
                        value=world.observed_rating(user.user_id, item.item_id),
                        timestamp=float(rng.uniform(0.0, 100.0)),
                    )
                )
    return world
