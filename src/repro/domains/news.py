"""Synthetic news domain (Findory / News Dude / newsmap stand-in).

The paper's running example is a news viewer who "has been watching a lot
of sports, and football in particular" but dislikes hockey (Sections
4.1–4.4), and Figure 2 is a treemap of news topics.  This world provides
hierarchical topics (``sports/football``, ``sports/hockey``, ...), strong
recency, and an ``importance`` attribute for treemap sizing.
"""

from __future__ import annotations

import numpy as np

from repro.domains._synthetic import SyntheticWorld, build_world

__all__ = ["NEWS_SECTIONS", "make_news"]

NEWS_SECTIONS: dict[str, tuple[str, ...]] = {
    "sports/football": (
        "worldcup", "final", "goal", "striker", "league", "transfer",
        "penalty", "derby",
    ),
    "sports/hockey": (
        "rink", "puck", "playoff", "goalie", "icetime", "bodycheck",
        "local-league",
    ),
    "sports/tennis": (
        "grandslam", "ace", "rally", "seed", "baseline", "tiebreak",
    ),
    "technology": (
        "gadget", "startup", "chip", "software", "mobile", "browser",
        "gadget-of-the-day", "review",
    ),
    "politics": (
        "election", "parliament", "summit", "policy", "minister",
        "referendum",
    ),
    "business": (
        "market", "merger", "earnings", "ipo", "oil", "currency",
    ),
    "entertainment": (
        "premiere", "festival", "celebrity", "boxoffice", "album",
        "award-show",
    ),
}
"""Hierarchical section to keyword-vocabulary mapping."""

_HEADLINE_VERBS = ("stuns", "rallies", "unveils", "confirms", "tops", "slips")


def _headline(genre: str, index: int, rng: np.random.Generator) -> str:
    vocabulary = NEWS_SECTIONS[genre]
    subject = vocabulary[int(rng.integers(0, len(vocabulary)))]
    verb = _HEADLINE_VERBS[int(rng.integers(0, len(_HEADLINE_VERBS)))]
    section = genre.split("/")[-1].capitalize()
    return f"{section}: {subject} {verb} ({index:03d})"


def _news_attributes(
    genre: str, index: int, rng: np.random.Generator
) -> dict[str, object]:
    return {
        "importance": float(rng.uniform(0.1, 1.0)),
        "word_count": int(rng.integers(120, 1400)),
        "section": genre.split("/")[0],
    }


def make_news(
    n_users: int = 50,
    n_items: int = 140,
    seed: int = 3,
    density: float = 0.15,
    noise: float = 0.5,
) -> SyntheticWorld:
    """A synthetic news world with hierarchical sections and importance."""
    return build_world(
        prefix="news",
        n_users=n_users,
        n_items=n_items,
        genre_keywords=NEWS_SECTIONS,
        title_maker=_headline,
        attribute_maker=_news_attributes,
        seed=seed,
        density=density,
        noise=noise,
        shared_keywords=("breaking", "exclusive", "analysis"),
    )
