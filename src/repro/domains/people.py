"""Synthetic dating domain (OkCupid stand-in, paper Table 3).

OkCupid's row in Table 3: item type "People to date", presentation
"Top-N, Predicted ratings", explanation "Preference-based", interaction
"Specify reqs.".  This generator supplies a profile catalogue with the
attributes a requirement-specification interaction needs, making every
Table 3 row demonstrable with library code.
"""

from __future__ import annotations

import numpy as np

from repro.recsys.data import Dataset, Item, RatingScale, User
from repro.recsys.knowledge import AttributeSpec, Catalog

__all__ = ["INTERESTS", "people_catalog", "make_people"]

INTERESTS = (
    "hiking", "cooking", "cinema", "travel", "music", "board-games",
    "running", "photography",
)

_FIRST_NAMES = (
    "Alex", "Sam", "Robin", "Kim", "Noor", "Dana", "Eli", "Mika",
    "Charlie", "Jo",
)


def people_catalog() -> Catalog:
    """The attribute schema of the dating domain."""
    return Catalog(
        [
            AttributeSpec(
                name="age",
                kind="numeric",
                low=18.0,
                high=70.0,
                less_phrase="Younger",
                more_phrase="Older",
            ),
            AttributeSpec(
                name="distance_km",
                kind="numeric",
                direction="lower_better",
                low=0.5,
                high=120.0,
                unit="km",
                less_phrase="Closer",
                more_phrase="Farther",
            ),
            AttributeSpec(name="interest", kind="categorical"),
            AttributeSpec(name="wants_children", kind="boolean"),
            AttributeSpec(
                name="profile_completeness",
                kind="numeric",
                direction="higher_better",
                low=0.0,
                high=1.0,
                less_phrase="Sparser Profile",
                more_phrase="Fuller Profile",
            ),
        ]
    )


def make_people(n_items: int = 80, seed: int = 51) -> tuple[Dataset, Catalog]:
    """A catalogue of dating profiles."""
    rng = np.random.default_rng(seed)
    catalog = people_catalog()
    items: list[Item] = []
    for index in range(n_items):
        name = _FIRST_NAMES[int(rng.integers(0, len(_FIRST_NAMES)))]
        interest = INTERESTS[int(rng.integers(0, len(INTERESTS)))]
        items.append(
            Item(
                item_id=f"person_{index:03d}",
                title=f"{name} ({index:03d})",
                attributes={
                    "age": float(rng.integers(18, 71)),
                    "distance_km": round(float(rng.uniform(0.5, 120.0)), 1),
                    "interest": interest,
                    "wants_children": bool(rng.random() < 0.45),
                    "profile_completeness": round(
                        float(rng.uniform(0.2, 1.0)), 2
                    ),
                },
                keywords=frozenset({interest, "profile"}),
                topics=("people", interest),
                recency=float(rng.uniform(0.0, 100.0)),
            )
        )
    users = [User(user_id="seeker", name="Profile seeker")]
    dataset = Dataset(items=items, users=users, scale=RatingScale())
    return dataset, catalog
