"""Synthetic digital-camera domain (Qwikshop stand-in, paper ref [20]).

Cameras are the survey's canonical critiquing domain: "Less Memory and
Lower Resolution and Cheaper" (Sections 2.6, 5.2).  The generator builds
a catalogue with realistically correlated attributes (price rises with
resolution and zoom) so compound critiques are meaningful, plus the typed
:class:`~repro.recsys.knowledge.Catalog` the knowledge-based recommender
needs.
"""

from __future__ import annotations

import numpy as np

from repro.recsys.data import Dataset, Item, RatingScale, User
from repro.recsys.knowledge import AttributeSpec, Catalog

__all__ = ["camera_catalog", "make_cameras"]

_BRANDS = ("Axion", "Lumar", "Pentaprism", "Verity", "Kobold")


def camera_catalog() -> Catalog:
    """The attribute schema of the camera domain.

    Phrasing matches the paper's example critique vocabulary: the price
    spec renders as "Cheaper" / "More Expensive", memory as "Less Memory"
    / "More Memory", resolution as "Lower Resolution" / "Higher
    Resolution".
    """
    return Catalog(
        [
            AttributeSpec(
                name="price",
                kind="numeric",
                direction="lower_better",
                low=80.0,
                high=1200.0,
                unit="USD",
                less_phrase="Cheaper",
                more_phrase="More Expensive",
            ),
            AttributeSpec(
                name="resolution",
                kind="numeric",
                direction="higher_better",
                low=2.0,
                high=12.0,
                unit="MP",
                less_phrase="Lower Resolution",
                more_phrase="Higher Resolution",
            ),
            AttributeSpec(
                name="memory",
                kind="numeric",
                direction="higher_better",
                low=16.0,
                high=2048.0,
                unit="MB",
                less_phrase="Less Memory",
                more_phrase="More Memory",
            ),
            AttributeSpec(
                name="zoom",
                kind="numeric",
                direction="higher_better",
                low=1.0,
                high=12.0,
                unit="x",
                less_phrase="Less Zoom",
                more_phrase="More Zoom",
            ),
            AttributeSpec(
                name="weight",
                kind="numeric",
                direction="lower_better",
                low=90.0,
                high=900.0,
                unit="g",
                less_phrase="Lighter",
                more_phrase="Heavier",
            ),
            AttributeSpec(name="brand", kind="categorical"),
        ]
    )


def make_cameras(n_items: int = 60, seed: int = 21) -> tuple[Dataset, Catalog]:
    """A camera catalogue with correlated attributes.

    A latent "class" variable (budget → professional) drives price,
    resolution, memory and zoom together, with independent jitter, so
    real trade-offs exist: cheaper cameras genuinely tend to have less
    memory and lower resolution.
    """
    rng = np.random.default_rng(seed)
    catalog = camera_catalog()
    items: list[Item] = []
    for index in range(n_items):
        tier = rng.uniform(0.0, 1.0)  # 0 = budget, 1 = professional
        price = 80.0 + 1120.0 * (tier ** 1.3) * rng.uniform(0.8, 1.2)
        resolution = 2.0 + 10.0 * tier * rng.uniform(0.75, 1.25)
        memory = float(
            np.clip(16.0 * 2 ** (tier * 6.0 * rng.uniform(0.8, 1.2)), 16, 2048)
        )
        zoom = 1.0 + 11.0 * rng.uniform(0.0, 1.0) * (0.4 + 0.6 * tier)
        weight = 90.0 + 810.0 * (0.3 * rng.uniform(0, 1) + 0.7 * tier)
        brand = _BRANDS[int(rng.integers(0, len(_BRANDS)))]
        items.append(
            Item(
                item_id=f"camera_{index:03d}",
                title=f"{brand} {100 + index}",
                attributes={
                    "price": round(float(np.clip(price, 80, 1200)), 2),
                    "resolution": round(float(np.clip(resolution, 2, 12)), 1),
                    "memory": round(memory, 0),
                    "zoom": round(float(np.clip(zoom, 1, 12)), 1),
                    "weight": round(float(np.clip(weight, 90, 900)), 0),
                    "brand": brand,
                },
                keywords=frozenset({brand.lower(), "camera"}),
                topics=("cameras",),
                recency=float(rng.uniform(0.0, 100.0)),
            )
        )
    users = [User(user_id="shopper", name="Camera shopper")]
    dataset = Dataset(items=items, users=users, scale=RatingScale())
    return dataset, catalog
