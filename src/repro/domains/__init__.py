"""Synthetic item domains standing in for the paper's catalogues.

Every domain is deterministic under its seed.  Latent-factor worlds
(movies, books, news) come with ground-truth utilities for effectiveness
studies; catalogue worlds (cameras, restaurants, holidays) come with
typed attribute schemas for the knowledge-based substrate.
"""

from repro.domains._synthetic import SyntheticWorld, build_world
from repro.domains.books import BOOK_AUTHORS, BOOK_GENRES, make_books
from repro.domains.cameras import camera_catalog, make_cameras
from repro.domains.holidays import (
    ACTIVITIES,
    CLIMATES,
    DESTINATIONS,
    PROFILE_VOCABULARY,
    holiday_catalog,
    make_holidays,
)
from repro.domains.movies import MOVIE_GENRES, make_movies
from repro.domains.news import NEWS_SECTIONS, make_news
from repro.domains.people import INTERESTS, make_people, people_catalog
from repro.domains.restaurants import (
    CUISINES,
    make_restaurants,
    restaurant_catalog,
)

__all__ = [
    "SyntheticWorld",
    "build_world",
    "make_movies",
    "MOVIE_GENRES",
    "make_books",
    "BOOK_GENRES",
    "BOOK_AUTHORS",
    "make_news",
    "make_people",
    "people_catalog",
    "INTERESTS",
    "NEWS_SECTIONS",
    "make_cameras",
    "camera_catalog",
    "make_restaurants",
    "restaurant_catalog",
    "CUISINES",
    "make_holidays",
    "holiday_catalog",
    "DESTINATIONS",
    "CLIMATES",
    "ACTIVITIES",
    "PROFILE_VOCABULARY",
]
