"""Synthetic restaurant domain (Adaptive Place Advisor stand-in, ref [35]).

The survey's efficiency discussion (Section 3.6) is grounded in Thompson
et al.'s conversational restaurant recommender, which elicits preferences
slot by slot (cuisine, price range, distance).  This generator builds a
restaurant catalogue over those slots plus the typed catalogue schema the
dialog manager and knowledge-based recommender share.
"""

from __future__ import annotations

import numpy as np

from repro.recsys.data import Dataset, Item, RatingScale, User
from repro.recsys.knowledge import AttributeSpec, Catalog

__all__ = ["CUISINES", "restaurant_catalog", "make_restaurants"]

CUISINES = (
    "italian", "thai", "indian", "french", "mexican", "japanese",
    "steakhouse", "vegetarian",
)

_NAME_PARTS = (
    "Golden", "Blue", "Old Town", "Harbour", "Corner", "Royal", "Little",
    "Garden",
)
_NAME_NOUNS = (
    "Fork", "Lantern", "Table", "Kettle", "Olive", "Brasserie", "Kitchen",
    "Spoon",
)


def restaurant_catalog() -> Catalog:
    """The attribute schema of the restaurant domain."""
    return Catalog(
        [
            AttributeSpec(name="cuisine", kind="categorical"),
            AttributeSpec(
                name="price_level",
                kind="numeric",
                direction="lower_better",
                low=1.0,
                high=4.0,
                less_phrase="Cheaper",
                more_phrase="Pricier",
            ),
            AttributeSpec(
                name="distance_km",
                kind="numeric",
                direction="lower_better",
                low=0.1,
                high=25.0,
                unit="km",
                less_phrase="Closer",
                more_phrase="Farther",
            ),
            AttributeSpec(
                name="food_quality",
                kind="numeric",
                direction="higher_better",
                low=1.0,
                high=5.0,
                less_phrase="Plainer Food",
                more_phrase="Better Food",
            ),
            AttributeSpec(name="has_parking", kind="boolean"),
        ]
    )


def make_restaurants(
    n_items: int = 80, seed: int = 31
) -> tuple[Dataset, Catalog]:
    """A restaurant catalogue; quality correlates mildly with price."""
    rng = np.random.default_rng(seed)
    catalog = restaurant_catalog()
    items: list[Item] = []
    for index in range(n_items):
        cuisine = CUISINES[int(rng.integers(0, len(CUISINES)))]
        price_level = float(rng.integers(1, 5))
        quality = float(
            np.clip(2.0 + 0.5 * price_level + rng.normal(0.0, 0.7), 1.0, 5.0)
        )
        part = _NAME_PARTS[int(rng.integers(0, len(_NAME_PARTS)))]
        noun = _NAME_NOUNS[int(rng.integers(0, len(_NAME_NOUNS)))]
        items.append(
            Item(
                item_id=f"restaurant_{index:03d}",
                title=f"The {part} {noun} ({cuisine})",
                attributes={
                    "cuisine": cuisine,
                    "price_level": price_level,
                    "distance_km": round(float(rng.uniform(0.1, 25.0)), 1),
                    "food_quality": round(quality, 1),
                    "has_parking": bool(rng.random() < 0.6),
                },
                keywords=frozenset({cuisine, "restaurant"}),
                topics=("restaurants", cuisine),
                recency=float(rng.uniform(0.0, 100.0)),
            )
        )
    users = [User(user_id="diner", name="Hungry diner")]
    dataset = Dataset(items=items, users=users, scale=RatingScale())
    return dataset, catalog
