"""Command-line interface.

```
python -m repro tables            # print Tables 1-4
python -m repro figures           # print Figures 1-3 (text renderings)
python -m repro studies           # run all studies (E1-E10)
python -m repro studies E1 E3     # run a subset
python -m repro demo              # the quickstart pipeline
python -m repro metrics           # run a demo workload, print metrics
python -m repro --trace t.jsonl demo   # dump a JSONL span trace
python -m repro --resilience demo      # fallback-chained pipeline demo
python -m repro --chaos-rate 0.2 --resilience demo   # ... under chaos
python -m repro serve             # closed-loop synthetic serving run
python -m repro serve --clients 16 --workers 4 --deadline 0.5
python -m repro serve --cache     # ... with the single-flight cache
python -m repro --chaos-rate 0.2 serve  # ... against faulty substrates
python -m repro serve --log-dir wal/    # durable event log + recovery gate
python -m repro serve --shards 4        # supervised multi-process shard fleet
python -m repro replay --log-dir wal/   # rebuild state from the log
python -m repro replay --log-dir wal/ --selfcheck  # crash/recover check
python -m repro analyze           # static-analysis gate over src/repro
python -m repro analyze --format json src/repro tests
python -m repro analyze --update-baseline   # accept current findings
python -m repro quality           # offline explanation-quality metrics
python -m repro quality --check   # gate against quality-baseline.json
python -m repro quality --correlation   # + offline-vs-aim agreement
python -m repro quality --update-baseline   # accept current values
```
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable, Sequence

__all__ = ["main", "build_parser"]


def _cmd_tables(_: argparse.Namespace) -> int:
    from repro.core import (
        render_table_1,
        render_table_2,
        render_table_3,
        render_table_4,
    )

    for title, renderer in (
        ("Table 1: aims of explanation facilities", render_table_1),
        ("Table 2: aims of academic systems", render_table_2),
        ("Table 3: commercial systems", render_table_3),
        ("Table 4: academic systems", render_table_4),
    ):
        print(f"== {title} ==")
        print(renderer())
        print()
    return 0


def _cmd_figures(_: argparse.Namespace) -> int:
    from repro.core import ExplainedRecommender, InfluenceExplainer
    from repro.domains import make_books, make_news
    from repro.interaction import ScrutableProfile
    from repro.presentation import build_news_treemap
    from repro.recsys import NaiveBayesRecommender

    print("== Figure 1: scrutable profile page ==")
    profile = ScrutableProfile("traveller")
    profile.volunteer("preferred_climate", "hot")
    profile.infer(
        "travels_with_children", True,
        because="you searched for family parks twice last month",
    )
    print(profile.render_page())
    print()

    print("== Figure 2: news treemap ==")
    news = make_news(n_users=40, n_items=120, seed=3)
    print(build_news_treemap(news.dataset, list(news.dataset.items)[:60]).render())
    print()

    print("== Figure 3: influence of ratings ==")
    books = make_books(n_users=40, n_items=100, seed=11)
    pipeline = ExplainedRecommender(
        NaiveBayesRecommender(), InfluenceExplainer()
    ).fit(books.dataset)
    explained = pipeline.recommend("user_001", n=1)[0]
    print(explained.explanation.render(include_details=True))
    return 0


_STUDIES: dict[str, str] = {
    "E1": "run_herlocker_study",
    "E2": "run_cosley_study",
    "E3": "run_bilgic_study",
    "E4": "run_critiquing_study",
    "E5": "run_trust_study",
    "E6": "run_tradeoff_study",
    "E7": "run_scrutability_study",
    "E8": "run_personality_study",
    "E9": "run_diversification_study",
    "E10": "run_modality_study",
    "E11": "run_design_confound_study",
    "E12": "run_explicit_implicit_study",
}


def _cmd_studies(arguments: argparse.Namespace) -> int:
    import repro.evaluation.studies as studies_module

    requested = arguments.ids or sorted(
        _STUDIES, key=lambda sid: int(sid[1:])
    )
    exit_code = 0
    for study_id in requested:
        runner_name = _STUDIES.get(study_id.upper())
        if runner_name is None:
            print(f"unknown study id {study_id!r}; "
                  f"choose from {', '.join(sorted(_STUDIES))}")
            return 2
        runner: Callable = getattr(studies_module, runner_name)
        report = runner()
        print(report.render())
        print()
        if not report.shape_holds:
            exit_code = 1
    return exit_code


def _build_resilient_pipeline(chaos_rate: float, chaos_seed: int):
    """The demo pipeline with the resilience stack wired in.

    A chaos-wrapped collaborative substrate falls back to popularity;
    the histogram explainer degrades per item to the generic template.
    Returns ``(world, pipeline)``.
    """
    from repro.core import NeighborHistogramExplainer
    from repro.domains import make_movies
    from repro.recsys import PopularityRecommender, UserBasedCF
    from repro.resilience import (
        BreakerPolicy,
        ChaosExplainer,
        ChaosRecommender,
        ResilientExplainedRecommender,
        Retry,
    )

    world = make_movies(n_users=40, n_items=80, seed=7, density=0.25)
    primary = UserBasedCF()
    explainer = NeighborHistogramExplainer()
    if chaos_rate > 0.0:
        primary = ChaosRecommender(
            primary, failure_rate=chaos_rate, seed=chaos_seed
        )
        explainer = ChaosExplainer(
            explainer, failure_rate=chaos_rate, seed=chaos_seed + 1
        )
    pipeline = ResilientExplainedRecommender(
        [primary, PopularityRecommender()],
        explainer,
        retry=Retry(max_attempts=3, base_delay=0.0, seed=chaos_seed),
        breaker=BreakerPolicy(failure_threshold=8, reset_timeout=0.05),
    ).fit(world.dataset)
    return world, pipeline


def _cmd_demo(arguments: argparse.Namespace) -> int:
    chaos_rate = arguments.chaos_rate or 0.0
    if arguments.resilience or chaos_rate > 0.0:
        world, pipeline = _build_resilient_pipeline(
            chaos_rate, arguments.chaos_seed
        )
        for explained in pipeline.recommend("user_000", n=3):
            title = world.dataset.item(explained.item_id).title
            marker = "  [degraded]" if explained.degraded else ""
            print(f"{title}  (predicted {explained.score:.1f}){marker}")
            print(explained.explanation.render(include_details=True))
            print()
        return 0

    from repro.core import ExplainedRecommender, NeighborHistogramExplainer
    from repro.domains import make_movies
    from repro.recsys import UserBasedCF

    world = make_movies(n_users=60, n_items=120, seed=7, density=0.25)
    pipeline = ExplainedRecommender(
        UserBasedCF(), NeighborHistogramExplainer()
    ).fit(world.dataset)
    for explained in pipeline.recommend("user_000", n=3):
        title = world.dataset.item(explained.item_id).title
        print(f"{title}  (predicted {explained.score:.1f})")
        print(explained.explanation.render(include_details=True))
        print()
    return 0


def _build_serving_lanes(chaos_rate: float, chaos_seed: int):
    """Two serving lanes over one movie world: collaborative + content.

    The two-lane shape is the bulkhead story: the (chaos-prone,
    slower) collaborative lane saturates its own compartment while the
    content lane keeps serving.  Returns ``(world, lanes)``.
    """
    from repro.core import (
        ContentBasedExplainer,
        ExplainedRecommender,
        NeighborHistogramExplainer,
    )
    from repro.domains import make_movies
    from repro.recsys import (
        ContentBasedRecommender,
        PopularityRecommender,
        UserBasedCF,
    )
    from repro.resilience import (
        BreakerPolicy,
        ChaosRecommender,
        ResilientExplainedRecommender,
        Retry,
    )

    world = make_movies(n_users=40, n_items=80, seed=7, density=0.25)
    primary = UserBasedCF()
    if chaos_rate > 0.0:
        primary = ChaosRecommender(
            primary, failure_rate=chaos_rate, seed=chaos_seed
        )
    collaborative = ResilientExplainedRecommender(
        [primary, PopularityRecommender()],
        NeighborHistogramExplainer(),
        retry=Retry(max_attempts=3, base_delay=0.0, seed=chaos_seed),
        breaker=BreakerPolicy(failure_threshold=8, reset_timeout=0.05),
    ).fit(world.dataset)
    content = ExplainedRecommender(
        ContentBasedRecommender(), ContentBasedExplainer()
    ).fit(world.dataset)
    return world, {"collaborative": collaborative, "content": content}


def _cmd_serve_sharded(arguments: argparse.Namespace) -> int:
    """``serve --shards N``: the supervised multi-process fleet."""
    import random
    import tempfile

    from repro.serving import ShardedServer, run_traffic

    log_root = arguments.shard_log_root or tempfile.mkdtemp(
        prefix="repro-fleet-"
    )
    fleet = ShardedServer(
        log_root=log_root,
        shards=arguments.shards,
        shard_workers=arguments.workers,
        queue_size=arguments.queue_size,
        default_deadline_seconds=arguments.deadline,
    )
    user_ids = [f"user_{index:03d}" for index in range(40)]
    item_ids = [f"movie_{index:03d}" for index in range(80)]
    try:
        if not fleet.await_ready(timeout=60.0):
            print("fleet never became ready; aborting")
            return 1
        rng = random.Random(arguments.chaos_seed)
        for _ in range(arguments.log_writes):
            # Durable rating traffic: each ack means the owner shard
            # journalled the event before answering.
            fleet.rate(
                rng.choice(user_ids),
                rng.choice(item_ids),
                float(rng.randint(1, 5)),
            )
        report = run_traffic(
            fleet,
            user_ids,
            requests=arguments.requests,
            clients=arguments.clients,
            n=3,
            deadline_seconds=arguments.deadline,
            seed=arguments.chaos_seed,
        )
    finally:
        drain = fleet.close(drain_seconds=arguments.drain_seconds)
    print(report.render())
    health = fleet.health()
    print(
        f"fleet          shards={fleet.n_shards} "
        f"status={health.status} log_root={log_root}"
    )
    for shard in health.shards:
        print(
            f"  shard {shard.shard_id}    state={shard.state} "
            f"incarnation={shard.incarnation} "
            f"restarts={shard.restarts}"
        )
    print(
        f"drain          stopped_clean={drain.stopped_clean} "
        f"killed={drain.killed} clean={drain.clean}"
    )
    print(f"rate writes    {arguments.log_writes} acked (journalled)")
    return 0 if drain.clean else 1


def _cmd_serve(arguments: argparse.Namespace) -> int:
    import random

    from repro.cache import ShardedTTLCache
    from repro.serving import (
        DeadlineAwareShedder,
        RecommendationServer,
        TokenBucket,
        run_traffic,
    )

    if arguments.shards:
        return _cmd_serve_sharded(arguments)
    chaos_rate = arguments.chaos_rate or 0.0
    world, lanes = _build_serving_lanes(chaos_rate, arguments.chaos_seed)
    admission = []
    if arguments.rate > 0.0:
        admission.append(TokenBucket(rate=arguments.rate))
    cache = None
    if arguments.cache:
        cache = ShardedTTLCache(
            name="serve",
            capacity=arguments.cache_capacity,
            ttl_seconds=arguments.cache_ttl,
            degraded_ttl_seconds=arguments.cache_degraded_ttl,
        )
    event_log = None
    recovery = None
    if arguments.log_dir is not None:
        from repro.eventlog import EventLog, replay

        event_log = EventLog(arguments.log_dir)
        caches = [cache] if cache is not None else []

        def recovery(log=event_log, dataset=world.dataset, caches=caches):
            return replay(log, dataset, caches=caches)

    server = RecommendationServer(
        lanes,
        workers=arguments.workers,
        queue_size=arguments.queue_size,
        admission=admission,
        shedder=DeadlineAwareShedder(),
        default_bulkhead=arguments.bulkhead,
        default_deadline_seconds=arguments.deadline,
        cache=cache,
        recovery=recovery,
    )
    try:
        server.await_recovery()
        if event_log is not None:
            # Durable interaction traffic alongside the serving load:
            # every rating is journalled before the dataset mutates.
            from repro.interaction import RatingChannel

            channel = RatingChannel(world.dataset, event_log=event_log)
            rng = random.Random(arguments.chaos_seed)
            users = list(world.dataset.users)
            items = list(world.dataset.items)
            for _ in range(arguments.log_writes):
                channel.rate(
                    rng.choice(users),
                    rng.choice(items),
                    float(rng.randint(1, 5)),
                )
        report = run_traffic(
            server,
            list(world.dataset.users),
            requests=arguments.requests,
            clients=arguments.clients,
            n=3,
            lanes=sorted(lanes),
            deadline_seconds=arguments.deadline,
            seed=arguments.chaos_seed,
        )
    finally:
        drain = server.close(drain_seconds=arguments.drain_seconds)
        if event_log is not None:
            event_log.close()
    print(report.render())
    print(
        f"drain          completed={drain.completed_total} "
        f"shed_queued={drain.shed_queued} "
        f"timed_out={drain.workers_timed_out} clean={drain.clean}"
    )
    health = server.health()
    print(f"final health   status={health.status} live={health.live}")
    if cache is not None:
        stats = cache.stats()
        print(
            f"cache          hits={stats.hits} misses={stats.misses} "
            f"hit_ratio={stats.hit_ratio:.2f} "
            f"coalesced={stats.coalesced} size={stats.size}"
        )
    if event_log is not None:
        recovered = server.recovery_report
        replayed = getattr(recovered, "events_applied", 0)
        print(
            f"eventlog       replayed={replayed} "
            f"appended={arguments.log_writes} "
            f"segments={len(event_log.segment_paths())} "
            f"next_seq={event_log.next_sequence}"
        )
    return 0 if drain.clean else 1


def _replay_world(seed: int):
    """The fixed world ``serve --log-dir`` / ``replay`` agree on.

    Replay only reproduces state when the log is applied to the same
    base world it was recorded against, so both commands derive it
    from one seed.
    """
    from repro.domains import make_movies

    return make_movies(n_users=40, n_items=80, seed=seed, density=0.25)


def _cmd_replay(arguments: argparse.Namespace) -> int:
    import json

    from repro.errors import EventLogError
    from repro.eventlog import EventLog, replay
    from repro.recsys import UserBasedCF

    if arguments.selfcheck:
        return _replay_selfcheck(arguments)
    try:
        with EventLog(arguments.log_dir) as log:
            world = _replay_world(arguments.seed)
            model = UserBasedCF().fit(world.dataset)
            report = replay(
                log, world.dataset, substrates=[model]
            )
    except EventLogError as error:
        print(f"repro replay: {error}", file=sys.stderr)
        return 2
    if arguments.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return 1 if report.degraded and arguments.strict else 0


def _replay_selfcheck(arguments: argparse.Namespace) -> int:
    """Write seeded events, 'crash', recover, assert identical top-k.

    The durability invariant, end to end on real disk: every
    acknowledged interaction survives a restart, and a model fit on the
    recovered dataset recommends byte-for-byte what the pre-crash model
    did.  Exit 0 when state matches, 1 on divergence.
    """
    import random

    from repro.errors import EventLogError
    from repro.eventlog import EventLog, replay
    from repro.interaction import RatingChannel
    from repro.recsys import UserBasedCF

    try:
        world = _replay_world(arguments.seed)
        log = EventLog(arguments.log_dir)
        if log.next_sequence != 0:
            log.close()
            print(
                f"repro replay --selfcheck: {arguments.log_dir} already "
                f"holds events; point it at an empty directory",
                file=sys.stderr,
            )
            return 2
        channel = RatingChannel(world.dataset, event_log=log)
        rng = random.Random(arguments.seed)
        users = list(world.dataset.users)
        items = list(world.dataset.items)
        for _ in range(60):
            channel.rate(
                rng.choice(users),
                rng.choice(items),
                float(rng.randint(1, 5)),
            )
        model = UserBasedCF().fit(world.dataset)
        probes = users[: arguments.probes]
        before = {
            user: [
                (r.item_id, round(r.score, 12))
                for r in model.recommend(user, n=arguments.top_k)
            ]
            for user in probes
        }
        log.close()  # the "crash": nothing survives but the log

        fresh = _replay_world(arguments.seed)
        recovered_model = UserBasedCF().fit(fresh.dataset)
        with EventLog(arguments.log_dir) as recovered_log:
            report = replay(
                recovered_log, fresh.dataset, substrates=[recovered_model]
            )
        after = {
            user: [
                (r.item_id, round(r.score, 12))
                for r in recovered_model.recommend(user, n=arguments.top_k)
            ]
            for user in probes
        }
    except EventLogError as error:
        print(f"repro replay --selfcheck: {error}", file=sys.stderr)
        return 2
    print(report.render())
    mismatches = [user for user in probes if before[user] != after[user]]
    if mismatches or report.events_applied != 60:
        print(
            f"selfcheck FAILED: applied={report.events_applied}/60, "
            f"diverging users: {', '.join(mismatches) or 'none'}"
        )
        return 1
    print(
        f"selfcheck ok: 60 events replayed, top-{arguments.top_k} "
        f"identical for {len(probes)} probe user(s)"
    )
    return 0


def _run_metrics_workload(
    chaos_rate: float = 0.2, chaos_seed: int = 0
) -> None:
    """A small but representative workload exercising every hot path.

    Collaborative pipeline (fit → recommend → explain) plus a short
    critiquing conversation, so the exposition shows substrate,
    explainer, and interaction-cycle series — followed by a seeded
    chaos segment through the resilience stack so the retry, breaker,
    and fallback series are populated too, and a cached segment
    (repeat recommendations, one invalidation) so the
    ``repro_cache_*`` families show a hit/miss/invalidation mix.
    """
    from repro.core import ExplainedRecommender, NeighborHistogramExplainer
    from repro.domains import make_cameras, make_movies
    from repro.interaction import CritiqueSession
    from repro.interaction.critiques import UnitCritique
    from repro.recsys import (
        KnowledgeBasedRecommender,
        Preference,
        UserBasedCF,
        UserRequirements,
    )

    world = make_movies(n_users=40, n_items=80, seed=7, density=0.25)
    pipeline = ExplainedRecommender(
        UserBasedCF(), NeighborHistogramExplainer()
    ).fit(world.dataset)
    pipeline.recommend("user_000", n=3)

    dataset, catalog = make_cameras(n_items=40, seed=21)
    recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
    requirements = UserRequirements(
        preferences=[Preference(attribute="price", weight=1.0)]
    )
    session = CritiqueSession(recommender, requirements)
    session.critique(UnitCritique("price", "less"))
    if session.reference is not None:
        session.accept()

    if chaos_rate > 0.0:
        world, pipeline = _build_resilient_pipeline(chaos_rate, chaos_seed)
        for user_id in list(world.dataset.users)[:5]:
            pipeline.recommend(user_id, n=3)

    # A short serving segment so the queue/shed/inflight series are
    # populated; register_serving_metrics keeps the exposition complete
    # (every serving family present) even if no request is ever shed.
    from repro.serving import RecommendationServer, register_serving_metrics

    register_serving_metrics()
    server = RecommendationServer(
        pipeline, workers=2, queue_size=8, default_deadline_seconds=5.0
    )
    try:
        for user_id in list(world.dataset.users)[:4]:
            server.serve(user_id, n=3)
    finally:
        server.close()

    # A cached segment: repeat recommendations hit, one user's
    # invalidation forces a recompute — so the repro_cache_* families
    # show hits, misses and an invalidation, and the lookups = hits +
    # misses partition is checkable from the exposition alone.
    from repro.cache import CachedExplainedRecommender, register_cache_metrics

    register_cache_metrics()
    cached = CachedExplainedRecommender(pipeline)
    users = list(world.dataset.users)[:4]
    cached.recommend_many(users, n=3)
    cached.recommend_many(users, n=3)
    cached.invalidate_user(users[0])
    cached.recommend(users[0], n=3)


#: Default analysis targets and suppression baseline, relative to the
#: invocation directory (the repo root in CI and development).
_DEFAULT_ANALYZE_PATHS = ("src/repro",)
_DEFAULT_BASELINE = "analysis-baseline.txt"


def _split_rule_ids(raw: str | None) -> list[str] | None:
    return None if raw is None else [part for part in raw.split(",") if part]


def _cmd_analyze(arguments: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        AnalysisCache,
        Analyzer,
        Baseline,
        BaselineEntry,
        changed_files,
        default_rules,
        render_json,
        render_text,
        run_analysis,
    )
    from repro.errors import AnalysisError

    paths = arguments.paths or list(_DEFAULT_ANALYZE_PATHS)
    baseline_path = arguments.baseline or _DEFAULT_BASELINE
    try:
        rules = default_rules(
            select=_split_rule_ids(arguments.select),
            ignore=_split_rule_ids(arguments.ignore),
        )
        cache = (
            None
            if arguments.no_cache
            else AnalysisCache(arguments.cache_dir or ".analysis-cache")
        )
        only_files: set[Path] | None = None
        if arguments.diff is not None:
            only_files = changed_files(base=arguments.diff)
        elif arguments.changed:
            only_files = changed_files()
        if arguments.update_baseline and only_files is not None:
            raise AnalysisError(
                "--update-baseline rewrites the full baseline and "
                "cannot be combined with --changed/--diff"
            )
        # The default baseline path may simply not exist yet; a baseline
        # the user *named* must — unless we are about to (re)write it.
        result = run_analysis(
            paths,
            baseline_path=baseline_path,
            baseline_required=(
                arguments.baseline is not None
                and not arguments.update_baseline
            ),
            analyzer=Analyzer(rules=rules, cache=cache),
            only_files=only_files,
        )
        if arguments.update_baseline:
            old = Baseline.load(baseline_path, required=False)
            entries = [
                entry
                for entry in old.entries
                if entry.fingerprint
                in {f.fingerprint for f in result.findings}
            ]
            # Distinct findings can share a fingerprint (same scope and
            # slug on different lines); one entry suppresses them all.
            seen = {entry.fingerprint for entry in entries}
            for finding in result.new:
                if finding.fingerprint not in seen:
                    seen.add(finding.fingerprint)
                    entries.append(
                        BaselineEntry(finding.fingerprint, "TODO: justify")
                    )
            entries.sort(key=lambda entry: entry.fingerprint)
            Path(baseline_path).write_text(
                Baseline(entries).format(
                    header=(
                        "repro.analysis suppression baseline.\n"
                        "Each line: RULE PATH SCOPE SLUG  # justification\n"
                        "Regenerate with: "
                        "python -m repro analyze --update-baseline"
                    )
                ),
                encoding="utf-8",
            )
            print(
                f"wrote {len(entries)} entr"
                f"{'y' if len(entries) == 1 else 'ies'} to {baseline_path}"
            )
            return 0
    except AnalysisError as error:
        print(f"repro analyze: {error}", file=sys.stderr)
        return 2
    if arguments.format == "json":
        print(render_json(result))
    else:
        print(render_text(result), end="")
    return 0 if result.ok else 1


_DEFAULT_QUALITY_BASELINE = "quality-baseline.json"


def _cmd_quality(arguments: argparse.Namespace) -> int:
    import json

    from repro.domains import make_movies
    from repro.errors import QualityError
    from repro.quality import (
        QualityBaseline,
        QualityWorldConfig,
        aim_correlation,
        run_quality_suite,
    )

    baseline_path = arguments.baseline or _DEFAULT_QUALITY_BASELINE
    try:
        config = QualityWorldConfig()
        report = run_quality_suite(config)
        if arguments.correlation:
            world = make_movies(
                n_users=config.n_users,
                n_items=config.n_items,
                seed=config.seed,
                density=config.density,
            )
            report.correlation = aim_correlation(
                report, world, seed=config.seed
            )
        if arguments.update_baseline:
            baseline = QualityBaseline.from_report(
                report, tolerance=arguments.tolerance
            )
            baseline.save(baseline_path)
            bands = sum(len(m) for m in baseline.bands.values())
            print(f"wrote {bands} metric band(s) to {baseline_path}")
            return 0
        if arguments.check:
            comparison = QualityBaseline.load(baseline_path).compare(
                report
            )
            print(comparison.render())
            return 0 if comparison.ok else 1
    except QualityError as error:
        print(f"repro quality: {error}", file=sys.stderr)
        return 2
    if arguments.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render_text())
    return 0


def _cmd_metrics(arguments: argparse.Namespace) -> int:
    import json

    from repro import obs

    if not arguments.no_demo:
        # Unless the user pins a rate, the workload includes a 20%
        # seeded chaos segment so the resilience series are non-empty.
        chaos_rate = (
            0.2 if arguments.chaos_rate is None else arguments.chaos_rate
        )
        _run_metrics_workload(chaos_rate, arguments.chaos_seed)
    registry = obs.get_registry()
    if len(registry) == 0:
        print("no metrics recorded", flush=True)
        return 1
    if arguments.format == "json":
        print(json.dumps(registry.as_dict(), indent=2))
    else:
        print(registry.exposition(), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Explanation framework for recommender systems "
            "(reproduction of Tintarev & Masthoff 2007)."
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write a JSONL span trace of the command to PATH "
            "(one JSON event per line; see docs/observability.md)"
        ),
    )
    parser.add_argument(
        "--chaos-rate",
        type=float,
        metavar="RATE",
        default=None,
        help=(
            "inject seeded faults with this probability per call "
            "(demo: default 0; metrics workload: default 0.2; "
            "see docs/resilience.md)"
        ),
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        metavar="SEED",
        default=0,
        help="seed for the deterministic fault plan (default: 0)",
    )
    parser.add_argument(
        "--resilience",
        action="store_true",
        help=(
            "route the demo through the resilience stack "
            "(retry + breaker + fallback chain)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    tables = subparsers.add_parser("tables", help="print Tables 1-4")
    tables.set_defaults(handler=_cmd_tables)

    figures = subparsers.add_parser(
        "figures", help="print Figures 1-3 (text renderings)"
    )
    figures.set_defaults(handler=_cmd_figures)

    studies = subparsers.add_parser(
        "studies", help="run the simulated studies (E1-E10)"
    )
    studies.add_argument(
        "ids", nargs="*", help="study ids to run (default: all)"
    )
    studies.set_defaults(handler=_cmd_studies)

    demo = subparsers.add_parser("demo", help="quickstart pipeline demo")
    demo.set_defaults(handler=_cmd_demo)

    metrics = subparsers.add_parser(
        "metrics",
        help="run a demo workload and print the metrics exposition",
    )
    metrics.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="output format: Prometheus text (default) or JSON",
    )
    metrics.add_argument(
        "--no-demo",
        action="store_true",
        help="skip the demo workload; print whatever is already recorded",
    )
    metrics.set_defaults(handler=_cmd_metrics)

    serve = subparsers.add_parser(
        "serve",
        help=(
            "run closed-loop synthetic traffic through the "
            "overload-robust serving layer (see docs/serving.md)"
        ),
    )
    serve.add_argument(
        "--requests", type=int, default=120,
        help="total requests to issue (default: 120)",
    )
    serve.add_argument(
        "--clients", type=int, default=8,
        help="concurrent closed-loop client threads (default: 8)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="server worker threads (default: 4)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=32,
        help="bounded admission-queue capacity (default: 32)",
    )
    serve.add_argument(
        "--bulkhead", type=int, default=2,
        help="concurrency slots per lane (default: 2)",
    )
    serve.add_argument(
        "--rate", type=float, default=0.0,
        help="token-bucket admission rate in req/s (0 disables; default: 0)",
    )
    serve.add_argument(
        "--deadline", type=float, default=2.0,
        help="per-request deadline budget in seconds (default: 2.0)",
    )
    serve.add_argument(
        "--drain-seconds", type=float, default=5.0,
        help="graceful-shutdown drain budget (default: 5.0)",
    )
    serve.add_argument(
        "--cache",
        action="store_true",
        help=(
            "serve repeated requests from a sharded single-flight "
            "cache (hits bypass queue, shedder and bulkhead; "
            "see docs/caching.md)"
        ),
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=2048,
        help="maximum resident cache entries (default: 2048)",
    )
    serve.add_argument(
        "--cache-ttl", type=float, default=30.0,
        help="cache entry lifetime in seconds (default: 30.0)",
    )
    serve.add_argument(
        "--cache-degraded-ttl", type=float, default=2.0,
        help=(
            "lifetime of cached fallback (degraded) answers "
            "(default: 2.0)"
        ),
    )
    serve.add_argument(
        "--log-dir",
        metavar="PATH",
        default=None,
        help=(
            "durable interaction event log directory: existing events "
            "replay before the readiness probe flips, and rating "
            "traffic journals through the log while serving "
            "(see docs/event_log.md)"
        ),
    )
    serve.add_argument(
        "--log-writes", type=int, default=20,
        help=(
            "durable rating events to write through the log during "
            "the run (default: 20; needs --log-dir)"
        ),
    )
    serve.add_argument(
        "--shards", type=int, default=0,
        help=(
            "run the sharded multi-process topology with N supervised "
            "shard workers instead of the single-process server "
            "(chaos/cache/admission flags apply per worker defaults; "
            "see docs/sharding.md)"
        ),
    )
    serve.add_argument(
        "--shard-log-root",
        metavar="PATH",
        default=None,
        help=(
            "root directory for per-shard event logs (default: a "
            "fresh temp directory; reuse a path to replay on boot)"
        ),
    )
    serve.set_defaults(handler=_cmd_serve)

    replay = subparsers.add_parser(
        "replay",
        help=(
            "rebuild state from a durable interaction event log "
            "(see docs/event_log.md)"
        ),
    )
    replay.add_argument(
        "--log-dir",
        metavar="PATH",
        required=True,
        help="event log directory to scan and replay",
    )
    replay.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    replay.add_argument(
        "--seed", type=int, default=7,
        help=(
            "seed of the base world the log was recorded against "
            "(default: 7, matching serve --log-dir)"
        ),
    )
    replay.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when the log shows damage (corruption/torn tail)",
    )
    replay.add_argument(
        "--selfcheck",
        action="store_true",
        help=(
            "write seeded events into --log-dir, simulate a crash, "
            "recover, and assert byte-identical recommendations "
            "(exit 0 on match, 1 on divergence)"
        ),
    )
    replay.add_argument(
        "--top-k", type=int, default=5,
        help="recommendation list depth compared by --selfcheck",
    )
    replay.add_argument(
        "--probes", type=int, default=5,
        help="probe users compared by --selfcheck (default: 5)",
    )
    replay.set_defaults(handler=_cmd_replay)

    analyze = subparsers.add_parser(
        "analyze",
        help=(
            "run the repro.analysis static-analysis gate "
            "(see docs/static_analysis.md)"
        ),
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    analyze.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    analyze.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "suppression baseline to check against (default: "
            f"{_DEFAULT_BASELINE}, which may be absent; an explicitly "
            "named baseline must exist)"
        ),
    )
    analyze.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to accept all current findings "
            "(new entries get a 'TODO: justify' comment to fill in), "
            "pruning entries whose finding no longer occurs"
        ),
    )
    analyze.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help=(
            "comma-separated rule ids to run (e.g. RR010,RR012); "
            "unknown ids exit 2"
        ),
    )
    analyze.add_argument(
        "--ignore",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to skip; unknown ids exit 2",
    )
    analyze.add_argument(
        "--changed",
        action="store_true",
        help=(
            "gate only findings in files changed vs HEAD (uncommitted "
            "+ untracked); the full tree is still analyzed so "
            "cross-module rules stay exact"
        ),
    )
    analyze.add_argument(
        "--diff",
        metavar="BASE",
        default=None,
        help=(
            "gate only findings in files changed since merge-base with "
            "BASE (plus uncommitted changes) — the PR-check mode"
        ),
    )
    analyze.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (force a cold run)",
    )
    analyze.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="incremental cache directory (default: .analysis-cache)",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    quality = subparsers.add_parser(
        "quality",
        help=(
            "run the offline explanation-quality metrics suite "
            "(see docs/quality_metrics.md)"
        ),
    )
    quality.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    quality.add_argument(
        "--check",
        action="store_true",
        help=(
            "compare against the committed baseline; exit 1 when any "
            "metric leaves its tolerance band (or is unbaselined/stale)"
        ),
    )
    quality.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "baseline file for --check / --update-baseline "
            f"(default: {_DEFAULT_QUALITY_BASELINE})"
        ),
    )
    quality.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept the current metric values",
    )
    quality.add_argument(
        "--tolerance",
        type=float,
        metavar="T",
        default=0.05,
        help=(
            "band half-width written by --update-baseline "
            "(default: 0.05)"
        ),
    )
    quality.add_argument(
        "--correlation",
        action="store_true",
        help=(
            "also run the simulated seven-aims studies and report "
            "offline-metric-vs-aim agreement per substrate"
        ),
    )
    quality.set_defaults(handler=_cmd_quality)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.trace is None:
        return arguments.handler(arguments)
    from repro import obs

    obs.configure(trace_path=arguments.trace)
    try:
        return arguments.handler(arguments)
    finally:
        obs.get_tracer().close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
