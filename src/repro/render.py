"""Shared plain-text rendering utilities.

Explainers and presenters both render to monospace text (the library is
UI-agnostic; a GUI would consume the structured objects instead).  This
module holds the shared primitives: horizontal bars, star ratings, fixed
width tables and boxes.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["bar", "stars", "table", "boxed", "histogram_lines"]


def bar(value: float, maximum: float, width: int = 20, fill: str = "#") -> str:
    """A horizontal bar scaled to ``width`` characters.

    >>> bar(3, 6, width=4)
    '##  '
    """
    if maximum <= 0:
        return " " * width
    filled = int(round(width * max(0.0, min(value, maximum)) / maximum))
    return fill * filled + " " * (width - filled)


def stars(value: float, maximum: int = 5) -> str:
    """A star rendering of a rating, half stars as '+'.

    >>> stars(3.5)
    '***+ '
    """
    full = int(value)
    half = 1 if (value - full) >= 0.5 else 0
    return "*" * full + "+" * half + " " * (maximum - full - half)


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    min_width: int = 4,
) -> str:
    """A fixed-width text table with a header rule.

    Column widths adapt to content; all values are str()-ed.
    """
    columns = len(headers)
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
    widths = [max(min_width, len(header)) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    rule = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.ljust(widths[index]) for index, value in enumerate(row))
        for row in cells
    ]
    return "\n".join([header_line, rule, *body])


def boxed(text: str, title: str = "") -> str:
    """Surround text with a simple ASCII box, optionally titled."""
    lines = text.splitlines() or [""]
    width = max(len(line) for line in lines)
    if title:
        width = max(width, len(title) + 2)
    top = "+" + (f" {title} " if title else "").center(width + 2, "-") + "+"
    body = [f"| {line.ljust(width)} |" for line in lines]
    bottom = "+" + "-" * (width + 2) + "+"
    return "\n".join([top, *body, bottom])


def histogram_lines(
    counts: Mapping[int, int],
    labels: Mapping[int, str] | None = None,
    width: int = 20,
) -> list[str]:
    """Render bucket counts as horizontal bars, highest bucket first.

    This is the shape of the Herlocker et al. histogram interface — the
    most persuasive of the 21 interfaces in the paper's Section 3.4.
    """
    if not counts:
        return []
    maximum = max(counts.values()) or 1
    lines = []
    for bucket in sorted(counts, reverse=True):
        label = labels.get(bucket, str(bucket)) if labels else str(bucket)
        lines.append(
            f"{label:>12} | {bar(counts[bucket], maximum, width)} "
            f"{counts[bucket]}"
        )
    return lines
