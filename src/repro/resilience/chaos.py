"""Seeded fault injection for recommenders and explainers.

:class:`ChaosRecommender` and :class:`ChaosExplainer` wrap a real
component and inject failures and latency from a private seeded RNG, so
every retry policy, breaker transition and fallback decision in the
stack can be exercised end-to-end by a *deterministic* test: the same
seed always yields the same fault schedule.

Faults default to :class:`~repro.errors.InjectedFaultError`, which plain
``predict_or_default`` does **not** swallow — an injected fault is
visible to every layer that has not opted into resilience, which is
exactly what makes the chaos tests honest.

Latency is injected through an injectable ``sleep`` so tests can count
the injected seconds without waiting for them.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Iterable

from repro import obs
from repro.core.explainers.base import Explainer
from repro.core.explanation import Explanation
from repro.errors import InjectedFaultError
from repro.recsys.base import Prediction, Recommendation, Recommender
from repro.recsys.data import Dataset

__all__ = ["ChaosRecommender", "ChaosExplainer", "FaultPlan"]


class FaultPlan:
    """A seeded schedule of failures and latencies.

    One instance is one deterministic stream: the ``n``-th call to
    :meth:`roll` always answers the same for a given seed, regardless of
    wall clock or interleaving with other plans.
    """

    def __init__(
        self,
        failure_rate: float = 0.2,
        latency_seconds: float = 0.0,
        latency_jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1], got {failure_rate}"
            )
        if latency_seconds < 0.0 or latency_jitter < 0.0:
            raise ValueError("latencies must be >= 0")
        self.failure_rate = failure_rate
        self.latency_seconds = latency_seconds
        self.latency_jitter = latency_jitter
        self.seed = seed
        self._rng = random.Random(seed)

    def roll(self) -> tuple[bool, float]:
        """``(fail?, latency_seconds)`` for the next call."""
        fail = self._rng.random() < self.failure_rate
        latency = self.latency_seconds
        if self.latency_jitter > 0.0:
            latency += self._rng.random() * self.latency_jitter
        return fail, latency

    def reset(self) -> None:
        """Rewind the stream to the start (same seed, same schedule)."""
        self._rng = random.Random(self.seed)


def _count_injection(target: str, kind: str) -> None:
    obs.get_registry().counter(
        "repro_chaos_injected_total",
        "Faults and latencies injected by the chaos wrappers.",
        labelnames=("target", "kind"),
    ).inc(target=target, kind=kind)


class ChaosRecommender(Recommender):
    """A recommender whose calls fail and stall on a seeded schedule.

    Parameters
    ----------
    inner:
        The wrapped recommender.  Attributes the wrapper does not define
        (``rank``, ``catalog``, ...) are forwarded, so domain-specific
        substrates keep their extended API.
    failure_rate:
        Probability that an intercepted call raises ``error``.
    error:
        Exception *type* to raise on injected failures.
    fail_on:
        Method names to intercept.  ``predict`` and ``recommend`` are
        intercepted natively; any other name is intercepted through
        attribute forwarding.
    latency_seconds / latency_jitter:
        Injected latency per intercepted call (``sleep`` is injectable;
        tests pass a recorder and never wait).
    """

    def __init__(
        self,
        inner: Recommender,
        failure_rate: float = 0.2,
        error: type[Exception] = InjectedFaultError,
        fail_on: Iterable[str] = ("predict",),
        latency_seconds: float = 0.0,
        latency_jitter: float = 0.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.plan = FaultPlan(
            failure_rate=failure_rate,
            latency_seconds=latency_seconds,
            latency_jitter=latency_jitter,
            seed=seed,
        )
        self.error = error
        self.fail_on = frozenset(fail_on)
        self._sleep = sleep

    # -- chaos core -------------------------------------------------------

    def _maybe_inject(self, method: str) -> None:
        if method not in self.fail_on:
            return
        fail, latency = self.plan.roll()
        if latency > 0.0:
            _count_injection(type(self.inner).__name__, "latency")
            self._sleep(latency)
        if fail:
            _count_injection(type(self.inner).__name__, "failure")
            obs.event(
                "chaos.fault",
                target=type(self.inner).__name__,
                method=method,
                error=self.error.__name__,
            )
            raise self.error(
                f"chaos: injected {self.error.__name__} in "
                f"{type(self.inner).__name__}.{method}"
            )

    # -- Recommender protocol --------------------------------------------

    def fit(self, dataset: Dataset) -> "ChaosRecommender":
        self.inner.fit(dataset)
        return self

    @property
    def dataset(self) -> Dataset:
        return self.inner.dataset

    @property
    def is_fitted(self) -> bool:
        return self.inner.is_fitted

    def predict(self, user_id: str, item_id: str) -> Prediction:
        self._maybe_inject("predict")
        return self.inner.predict(user_id, item_id)

    def recommend(self, *args: object, **kwargs: object) -> list[Recommendation]:
        self._maybe_inject("recommend")
        return self.inner.recommend(*args, **kwargs)

    def __getattr__(self, name: str):
        # Only reached for attributes this class does not define; chaos
        # is injected into forwarded *methods* named in ``fail_on``.
        inner = object.__getattribute__(self, "inner")
        attribute = getattr(inner, name)
        if callable(attribute) and name in self.fail_on:
            def chaotic(*args, **kwargs):
                self._maybe_inject(name)
                return attribute(*args, **kwargs)

            return chaotic
        return attribute


class ChaosExplainer(Explainer):
    """An explainer whose calls fail on a seeded schedule."""

    def __init__(
        self,
        inner: Explainer,
        failure_rate: float = 0.2,
        error: type[Exception] = InjectedFaultError,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.plan = FaultPlan(failure_rate=failure_rate, seed=seed)
        self.error = error
        self.style = inner.style
        self.default_aims = inner.default_aims

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        fail, __ = self.plan.roll()
        if fail:
            _count_injection(type(self.inner).__name__, "failure")
            obs.event(
                "chaos.fault",
                target=type(self.inner).__name__,
                method="explain",
                error=self.error.__name__,
            )
            raise self.error(
                f"chaos: injected {self.error.__name__} in "
                f"{type(self.inner).__name__}.explain"
            )
        return self.inner.explain(user_id, recommendation, dataset)
