"""Seeded fault injection for recommenders and explainers.

:class:`ChaosRecommender` and :class:`ChaosExplainer` wrap a real
component and inject failures and latency from a private seeded RNG, so
every retry policy, breaker transition and fallback decision in the
stack can be exercised end-to-end by a *deterministic* test: the same
seed always yields the same fault schedule.

Faults default to :class:`~repro.errors.InjectedFaultError`, which plain
``predict_or_default`` does **not** swallow — an injected fault is
visible to every layer that has not opted into resilience, which is
exactly what makes the chaos tests honest.

Latency is injected through an injectable ``sleep`` so tests can count
the injected seconds without waiting for them.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Iterable, Mapping

from pathlib import Path

from repro import obs
from repro.core.explainers.base import Explainer
from repro.core.explanation import Explanation
from repro.errors import EventLogError, InjectedFaultError
from repro.eventlog.storage import FileStorage, SegmentHandle
from repro.recsys.base import Prediction, Recommendation, Recommender
from repro.recsys.data import Dataset

__all__ = [
    "ChaosRecommender",
    "ChaosExplainer",
    "FaultPlan",
    "DiskFaultPlan",
    "ChaosStorage",
    "ShardFaultPlan",
    "ShardFaultSchedule",
]


class FaultPlan:
    """A seeded schedule of failures and latencies.

    One instance is one deterministic stream: the ``n``-th call to
    :meth:`roll` always answers the same for a given seed, regardless of
    wall clock or interleaving with other plans.
    """

    def __init__(
        self,
        failure_rate: float = 0.2,
        latency_seconds: float = 0.0,
        latency_jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1], got {failure_rate}"
            )
        if latency_seconds < 0.0 or latency_jitter < 0.0:
            raise ValueError("latencies must be >= 0")
        self.failure_rate = failure_rate
        self.latency_seconds = latency_seconds
        self.latency_jitter = latency_jitter
        self.seed = seed
        self._rng = random.Random(seed)

    def roll(self) -> tuple[bool, float]:
        """``(fail?, latency_seconds)`` for the next call."""
        fail = self._rng.random() < self.failure_rate
        latency = self.latency_seconds
        if self.latency_jitter > 0.0:
            latency += self._rng.random() * self.latency_jitter
        return fail, latency

    def reset(self) -> None:
        """Rewind the stream to the start (same seed, same schedule)."""
        self._rng = random.Random(self.seed)


def _count_injection(target: str, kind: str) -> None:
    obs.get_registry().counter(
        "repro_chaos_injected_total",
        "Faults and latencies injected by the chaos wrappers.",
        labelnames=("target", "kind"),
    ).inc(target=target, kind=kind)


class ChaosRecommender(Recommender):
    """A recommender whose calls fail and stall on a seeded schedule.

    Parameters
    ----------
    inner:
        The wrapped recommender.  Attributes the wrapper does not define
        (``rank``, ``catalog``, ...) are forwarded, so domain-specific
        substrates keep their extended API.
    failure_rate:
        Probability that an intercepted call raises ``error``.
    error:
        Exception *type* to raise on injected failures.
    fail_on:
        Method names to intercept.  ``predict`` and ``recommend`` are
        intercepted natively; any other name is intercepted through
        attribute forwarding.
    latency_seconds / latency_jitter:
        Injected latency per intercepted call (``sleep`` is injectable;
        tests pass a recorder and never wait).
    """

    def __init__(
        self,
        inner: Recommender,
        failure_rate: float = 0.2,
        error: type[Exception] = InjectedFaultError,
        fail_on: Iterable[str] = ("predict",),
        latency_seconds: float = 0.0,
        latency_jitter: float = 0.0,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.plan = FaultPlan(
            failure_rate=failure_rate,
            latency_seconds=latency_seconds,
            latency_jitter=latency_jitter,
            seed=seed,
        )
        self.error = error
        self.fail_on = frozenset(fail_on)
        self._sleep = sleep

    # -- chaos core -------------------------------------------------------

    def _maybe_inject(self, method: str) -> None:
        if method not in self.fail_on:
            return
        fail, latency = self.plan.roll()
        if latency > 0.0:
            _count_injection(type(self.inner).__name__, "latency")
            self._sleep(latency)
        if fail:
            _count_injection(type(self.inner).__name__, "failure")
            obs.event(
                "chaos.fault",
                target=type(self.inner).__name__,
                method=method,
                error=self.error.__name__,
            )
            raise self.error(
                f"chaos: injected {self.error.__name__} in "
                f"{type(self.inner).__name__}.{method}"
            )

    # -- Recommender protocol --------------------------------------------

    def fit(self, dataset: Dataset) -> "ChaosRecommender":
        self.inner.fit(dataset)
        return self

    @property
    def dataset(self) -> Dataset:
        return self.inner.dataset

    @property
    def is_fitted(self) -> bool:
        return self.inner.is_fitted

    def predict(self, user_id: str, item_id: str) -> Prediction:
        self._maybe_inject("predict")
        return self.inner.predict(user_id, item_id)

    def recommend(self, *args: object, **kwargs: object) -> list[Recommendation]:
        self._maybe_inject("recommend")
        return self.inner.recommend(*args, **kwargs)

    def __getattr__(self, name: str):
        # Only reached for attributes this class does not define; chaos
        # is injected into forwarded *methods* named in ``fail_on``.
        inner = object.__getattribute__(self, "inner")
        attribute = getattr(inner, name)
        if callable(attribute) and name in self.fail_on:
            def chaotic(*args, **kwargs):
                self._maybe_inject(name)
                return attribute(*args, **kwargs)

            return chaotic
        return attribute


class DiskFaultPlan:
    """A seeded schedule of disk faults for the event-log storage layer.

    Like :class:`FaultPlan`, one instance is one deterministic stream —
    the ``n``-th write/fsync/read roll always answers the same for a
    given seed — so a crash-recovery test can "kill the world" at an
    exactly reproducible write boundary.

    Parameters
    ----------
    write_failure_rate:
        Probability an intercepted write raises.  Of those failures,
        ``partial_share`` are *torn*: a seeded prefix of the bytes
        lands on disk before the error (the worst case a real disk
        produces), the rest fail cleanly with nothing written.
    fsync_failure_rate:
        Probability an fsync barrier raises (the write is in the OS
        cache but not durable — the log must roll it back).
    read_corruption_rate:
        Probability a segment read comes back with one seeded byte
        flipped (bit rot / controller corruption on the read path).
    """

    def __init__(
        self,
        write_failure_rate: float = 0.2,
        partial_share: float = 0.5,
        fsync_failure_rate: float = 0.0,
        read_corruption_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        for label, rate in (
            ("write_failure_rate", write_failure_rate),
            ("partial_share", partial_share),
            ("fsync_failure_rate", fsync_failure_rate),
            ("read_corruption_rate", read_corruption_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        self.write_failure_rate = write_failure_rate
        self.partial_share = partial_share
        self.fsync_failure_rate = fsync_failure_rate
        self.read_corruption_rate = read_corruption_rate
        self.seed = seed
        self._rng = random.Random(seed)

    def roll_write(self, n_bytes: int) -> int | None:
        """``None`` = write succeeds; otherwise the torn-prefix length.

        A returned ``0`` is a clean failure (nothing lands); ``k > 0``
        means ``k`` bytes land before the error (a torn write).
        """
        if self._rng.random() >= self.write_failure_rate:
            return None
        if n_bytes > 0 and self._rng.random() < self.partial_share:
            return self._rng.randrange(1, n_bytes + 1)
        return 0

    def roll_fsync(self) -> bool:
        """Whether the next fsync barrier fails."""
        return self._rng.random() < self.fsync_failure_rate

    def roll_read(self, n_bytes: int) -> int | None:
        """``None`` = clean read; otherwise the byte offset to corrupt."""
        if n_bytes == 0 or self._rng.random() >= self.read_corruption_rate:
            return None
        return self._rng.randrange(n_bytes)

    def reset(self) -> None:
        """Rewind the stream to the start (same seed, same schedule)."""
        self._rng = random.Random(self.seed)


class _ChaosHandle:
    """A segment handle whose writes and fsyncs fail on the plan."""

    def __init__(self, inner: SegmentHandle, plan: DiskFaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self.path = inner.path

    def position(self) -> int:
        return self._inner.position()

    def write(self, data: bytes) -> None:
        torn = self._plan.roll_write(len(data))
        if torn is None:
            self._inner.write(data)
            return
        if torn > 0:
            self._inner.write(data[:torn])
            _count_injection("storage", "torn_write")
            obs.event(
                "chaos.disk_fault",
                kind="torn_write",
                segment=self.path.name,
                landed=torn,
                requested=len(data),
            )
            raise EventLogError(
                f"chaos: torn write to {self.path.name} "
                f"({torn}/{len(data)} bytes landed)"
            )
        _count_injection("storage", "write_failure")
        obs.event(
            "chaos.disk_fault", kind="write_failure", segment=self.path.name
        )
        raise EventLogError(
            f"chaos: injected write failure on {self.path.name}"
        )

    def sync(self) -> None:
        if self._plan.roll_fsync():
            _count_injection("storage", "fsync_failure")
            obs.event(
                "chaos.disk_fault",
                kind="fsync_failure",
                segment=self.path.name,
            )
            raise EventLogError(
                f"chaos: injected fsync failure on {self.path.name}"
            )
        self._inner.sync()

    def truncate(self, size: int) -> None:
        # Rollback/repair paths stay reliable: chaos models a flaky
        # disk, not one that blocks recovery itself.
        self._inner.truncate(size)

    def close(self) -> None:
        self._inner.close()


class ChaosStorage(FileStorage):
    """Event-log storage whose writes, fsyncs, and reads fail on a plan.

    Drop-in for :class:`~repro.eventlog.storage.FileStorage` (pass as
    ``EventLog(..., storage=ChaosStorage(plan))``): appends go through
    a :class:`_ChaosHandle` that injects clean failures, torn writes,
    and fsync errors; :meth:`read_bytes` flips seeded bytes to model
    corruption on the read path.  Repair primitives (truncate, remove,
    replace, listing) stay reliable so recovery is always possible —
    the invariant under test is *zero acknowledged-event loss*, which
    only makes sense if recovery itself can run.
    """

    def __init__(
        self,
        plan: DiskFaultPlan | None = None,
        inner: FileStorage | None = None,
    ) -> None:
        self.plan = plan if plan is not None else DiskFaultPlan()
        self.inner = inner if inner is not None else FileStorage()

    def open_append(self, path: Path) -> SegmentHandle:
        handle = _ChaosHandle(self.inner.open_append(path), self.plan)
        return handle  # type: ignore[return-value]

    def read_bytes(self, path: Path) -> bytes:
        data = self.inner.read_bytes(path)
        offset = self.plan.roll_read(len(data))
        if offset is not None:
            _count_injection("storage", "read_corruption")
            obs.event(
                "chaos.disk_fault",
                kind="read_corruption",
                segment=path.name,
                offset=offset,
            )
            corrupted = bytearray(data)
            corrupted[offset] ^= 0xFF
            data = bytes(corrupted)
        return data

    def truncate_path(self, path: Path, size: int) -> None:
        self.inner.truncate_path(path, size)

    def remove(self, path: Path) -> None:
        self.inner.remove(path)

    def replace(self, source: Path, destination: Path) -> None:
        self.inner.replace(source, destination)

    def list_segments(self, directory: Path, pattern: str) -> list[Path]:
        return self.inner.list_segments(directory, pattern)


class ChaosExplainer(Explainer):
    """An explainer whose calls fail on a seeded schedule."""

    def __init__(
        self,
        inner: Explainer,
        failure_rate: float = 0.2,
        error: type[Exception] = InjectedFaultError,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.plan = FaultPlan(failure_rate=failure_rate, seed=seed)
        self.error = error
        self.style = inner.style
        self.default_aims = inner.default_aims

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        fail, __ = self.plan.roll()
        if fail:
            _count_injection(type(self.inner).__name__, "failure")
            obs.event(
                "chaos.fault",
                target=type(self.inner).__name__,
                method="explain",
                error=self.error.__name__,
            )
            raise self.error(
                f"chaos: injected {self.error.__name__} in "
                f"{type(self.inner).__name__}.explain"
            )
        return self.inner.explain(user_id, recommendation, dataset)


class ShardFaultSchedule:
    """One worker incarnation's deterministic view of a fault plan.

    Created inside the shard worker process from the
    :class:`ShardFaultPlan` it inherited in its spec; every roll
    happens against a stream seeded by ``(seed, shard_id,
    incarnation)``, so a kill on shard 2's 7th request reproduces
    exactly across runs regardless of fleet interleaving.
    """

    def __init__(
        self,
        shard_id: int,
        incarnation: int,
        *,
        kill_at: int | None,
        hang_at: int | None,
        startup_delay: float,
        kill_rate: float,
        hang_rate: float,
        hang_seconds: float,
        seed: int,
    ) -> None:
        self.shard_id = shard_id
        self.incarnation = incarnation
        self.kill_at = kill_at
        self.hang_at = hang_at
        self.startup_delay = startup_delay
        self.kill_rate = kill_rate
        self.hang_rate = hang_rate
        self.hang_seconds = hang_seconds
        self._requests = 0
        self._rng = random.Random(
            (seed * 1_000_003 + shard_id) * 8191 + incarnation
        )

    def on_request(self) -> str | None:
        """Roll the next request: ``"kill"``, ``"hang"``, or ``None``."""
        index = self._requests
        self._requests += 1
        action: str | None = None
        if self.kill_at is not None and index == self.kill_at:
            action = "kill"
        elif self.hang_at is not None and index == self.hang_at:
            action = "hang"
        elif self.kill_rate > 0.0 and self._rng.random() < self.kill_rate:
            action = "kill"
        elif self.hang_rate > 0.0 and self._rng.random() < self.hang_rate:
            action = "hang"
        if action is not None:
            _count_injection(f"shard:{self.shard_id}", action)
            obs.event(
                "chaos.shard_fault",
                shard=self.shard_id,
                incarnation=self.incarnation,
                request_index=index,
                kind=action,
            )
        return action


class ShardFaultPlan:
    """A seeded schedule of worker-process faults for the shard fleet.

    Three fault shapes, matching the supervisor's failure matrix:

    * **kill** — the worker ``SIGKILL``\\ s itself mid-request (a real
      ``kill -9``: no flush, no goodbye on the pipe);
    * **hang** — the worker sleeps ``hang_seconds`` inside its serving
      loop, so heartbeats stop while the process stays alive;
    * **slow start** — the worker sleeps before opening its event log,
      so no heartbeat arrives within the supervisor's start budget.

    Deterministic triggers (``kill_after={shard: request_index}``,
    ``hang_after``, ``slow_start_seconds``) fire once each; with
    ``first_incarnation_only=True`` (the default) only incarnation 0
    is armed, so a restarted worker converges instead of crash-looping.
    ``kill_rate``/``hang_rate`` add seeded per-request rolls for stress
    runs.  Instances are picklable: they cross the process boundary in
    the shard spec.
    """

    def __init__(
        self,
        *,
        kill_after: "Mapping[int, int] | None" = None,
        hang_after: "Mapping[int, int] | None" = None,
        slow_start_seconds: "Mapping[int, float] | None" = None,
        kill_rate: float = 0.0,
        hang_rate: float = 0.0,
        hang_seconds: float = 30.0,
        first_incarnation_only: bool = True,
        seed: int = 0,
    ) -> None:
        for label, rate in (
            ("kill_rate", kill_rate),
            ("hang_rate", hang_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        if hang_seconds < 0.0:
            raise ValueError(
                f"hang_seconds must be >= 0, got {hang_seconds}"
            )
        self.kill_after = dict(kill_after or {})
        self.hang_after = dict(hang_after or {})
        self.slow_start_seconds = dict(slow_start_seconds or {})
        self.kill_rate = kill_rate
        self.hang_rate = hang_rate
        self.hang_seconds = hang_seconds
        self.first_incarnation_only = first_incarnation_only
        self.seed = seed

    def schedule(
        self, shard_id: int, incarnation: int
    ) -> ShardFaultSchedule:
        """The fault stream for one worker incarnation."""
        armed = incarnation == 0 or not self.first_incarnation_only
        return ShardFaultSchedule(
            shard_id,
            incarnation,
            kill_at=self.kill_after.get(shard_id) if armed else None,
            hang_at=self.hang_after.get(shard_id) if armed else None,
            startup_delay=(
                self.slow_start_seconds.get(shard_id, 0.0) if armed else 0.0
            ),
            kill_rate=self.kill_rate if armed else 0.0,
            hang_rate=self.hang_rate if armed else 0.0,
            hang_seconds=self.hang_seconds,
            seed=self.seed,
        )
