"""Resilience: fault tolerance for the explained-recommendation pipeline.

The survey motivates the shape: hybrid systems degrade from
collaborative to content-based evidence when neighbours are missing
(Section 4), and an explanation facility must stay available even when
the model cannot justify a score — a degraded generic explanation beats
an error page.  This package makes that promise operational:

* **policies** (``repro.resilience.policies``) —
  :class:`Retry` with bounded exponential backoff and deterministic
  jitter, :class:`Deadline` wall-clock budgets, and the
  :class:`CircuitBreaker` closed → open → half-open state machine (one
  per substrate, built from a shareable :class:`BreakerPolicy`);
* **fallback** (``repro.resilience.fallback``) —
  :class:`ResilientRecommender` (one substrate under policies),
  :class:`FallbackChain` (ordered degradation across substrates) and
  :class:`FallbackExplainer` (explanation chains ending at the generic
  template);
* **chaos** (``repro.resilience.chaos``) — :class:`ChaosRecommender`
  and :class:`ChaosExplainer`, seeded deterministic fault/latency
  injection so every policy is testable end-to-end;
* **pipeline** (``repro.resilience.pipeline``) —
  :class:`ResilientExplainedRecommender`, the one-stop serving wrapper.

Everything is observable: ``repro_retries_total``,
``repro_breaker_state``, ``repro_fallbacks_total``,
``repro_degraded_explanations_total`` and ``repro_chaos_injected_total``
land in the global registry, and every retry/fallback/breaker decision
emits a tracer event (free when tracing is disabled).  With no policies
configured nothing is wrapped and nothing is counted — the no-op fast
path mirrors :mod:`repro.obs`.

Surfaced via ``python -m repro --chaos-rate 0.2 --resilience demo`` /
``metrics``.  See ``docs/resilience.md``.
"""

from repro.resilience.chaos import (
    ChaosExplainer,
    ChaosRecommender,
    ChaosStorage,
    DiskFaultPlan,
    FaultPlan,
    ShardFaultPlan,
    ShardFaultSchedule,
)
from repro.resilience.fallback import (
    DEGRADABLE_ERRORS,
    DegradationTracker,
    FallbackChain,
    FallbackExplainer,
    ResilientRecommender,
    mark_degraded,
    substrate_name,
    track_degradation,
)
from repro.resilience.pipeline import ResilientExplainedRecommender
from repro.resilience.policies import (
    BreakerPolicy,
    CircuitBreaker,
    Deadline,
    Retry,
)

__all__ = [
    "Retry",
    "Deadline",
    "CircuitBreaker",
    "BreakerPolicy",
    "ResilientRecommender",
    "FallbackChain",
    "FallbackExplainer",
    "DEGRADABLE_ERRORS",
    "DegradationTracker",
    "track_degradation",
    "mark_degraded",
    "substrate_name",
    "ChaosRecommender",
    "ChaosStorage",
    "DiskFaultPlan",
    "ChaosExplainer",
    "FaultPlan",
    "ShardFaultPlan",
    "ShardFaultSchedule",
    "ResilientExplainedRecommender",
]
