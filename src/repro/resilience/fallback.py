"""Graceful degradation: resilient wrappers and fallback chains.

Two layers, composed freely:

* :class:`ResilientRecommender` wraps **one** substrate with the
  :mod:`repro.resilience.policies` mechanisms — retry/backoff around
  every prediction, a per-substrate circuit breaker, an optional
  per-call deadline;
* :class:`FallbackChain` lines up **several** substrates (typically
  personalised first, popularity last) and degrades across them: any
  component failure the chain classifies as degradable moves to the
  next component, exactly the hybrid shape the survey describes
  (collaborative evidence first, content-based when neighbours are
  missing, non-personalised last).

:class:`FallbackExplainer` does the same for explanation generation,
ending at :class:`~repro.core.explainers.base.GenericExplainer` so an
explanation facility never takes a batch down — a degraded generic
explanation beats an error page.
"""

from __future__ import annotations

import contextvars
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import obs
from repro.core.explainers.base import Explainer, GenericExplainer
from repro.core.explanation import Explanation
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFaultError,
    NotFittedError,
    PredictionImpossibleError,
    ReproError,
    RetryExhaustedError,
)
from repro.recsys.base import Prediction, Recommendation, Recommender
from repro.recsys.data import Dataset
from repro.resilience.policies import BreakerPolicy, CircuitBreaker, Deadline, Retry

__all__ = [
    "ResilientRecommender",
    "FallbackChain",
    "FallbackExplainer",
    "DegradationTracker",
    "track_degradation",
    "mark_degraded",
    "substrate_name",
]

#: Component errors a :class:`FallbackChain` degrades across by default.
DEGRADABLE_ERRORS: tuple[type[ReproError], ...] = (
    PredictionImpossibleError,
    NotFittedError,
    CircuitOpenError,
    RetryExhaustedError,
    DeadlineExceededError,
    InjectedFaultError,
)


def substrate_name(recommender: Recommender) -> str:
    """The wrapped substrate's class name, unwrapping chaos/resilient shells."""
    seen: set[int] = set()
    current = recommender
    while hasattr(current, "inner") and id(current) not in seen:
        seen.add(id(current))
        current = current.inner
    return type(current).__name__


@dataclass
class DegradationTracker:
    """Records substrate fallbacks observed during one tracked call.

    Before PR 5, a :class:`FallbackChain` result reached callers with
    no marker distinguishing it from a primary result — the serving
    boundary reported ``outcome="served"`` for a popularity-fallback
    answer, and caches pinned it for the full TTL.  The tracker is the
    channel that carries "a fallback happened" out of the per-item
    ``predict`` calls up to the batch that contains them.
    """

    events: list[tuple[str, str]] = field(default_factory=list)

    @property
    def fired(self) -> bool:
        """Whether any fallback happened inside the tracked scope."""
        return bool(self.events)

    def record(self, substrate: str, reason: str) -> None:
        """Note one fallback decision (substrate that failed, reason)."""
        self.events.append((substrate, reason))


_degradation_tracker: contextvars.ContextVar[DegradationTracker | None] = (
    contextvars.ContextVar("repro_degradation_tracker", default=None)
)


@contextmanager
def track_degradation() -> Iterator[DegradationTracker]:
    """Collect fallback events from everything called inside the block.

    Contextvar-based, so it is safe under the serving layer's worker
    threads: each tracked call sees only its own fallbacks.
    """
    tracker = DegradationTracker()
    token = _degradation_tracker.set(tracker)
    try:
        yield tracker
    finally:
        _degradation_tracker.reset(token)


def mark_degraded(substrate: str, reason: str) -> None:
    """Report a fallback to the active tracker, if any."""
    tracker = _degradation_tracker.get()
    if tracker is not None:
        tracker.record(substrate, reason)


def _count_fallback(substrate: str, reason: str) -> None:
    obs.get_registry().counter(
        "repro_fallbacks_total",
        "Fallback decisions: a component failed and the next was tried.",
        labelnames=("substrate", "reason"),
    ).inc(substrate=substrate, reason=reason)


class ResilientRecommender(Recommender):
    """One substrate under retry, breaker, and deadline policies.

    Parameters
    ----------
    inner:
        The wrapped recommender (possibly a chaos wrapper).
    retry:
        Retry policy applied around every protected call; ``None``
        disables retries.
    breaker:
        Either a ready :class:`CircuitBreaker` or a
        :class:`BreakerPolicy` from which one is built, keyed by the
        wrapped substrate's class name; ``None`` disables the breaker.
    deadline_seconds:
        Per-call wall-clock budget shared across that call's retries;
        ``None`` disables the deadline.
    protect:
        Extra method names (beyond ``predict``) guarded with the same
        policies when reached through attribute forwarding — e.g.
        ``("rank",)`` for a knowledge-based substrate driving a
        critiquing session.
    """

    def __init__(
        self,
        inner: Recommender,
        retry: Retry | None = None,
        breaker: CircuitBreaker | BreakerPolicy | None = None,
        deadline_seconds: float | None = None,
        protect: Sequence[str] = (),
        clock: Callable[[], float] | None = None,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.retry = retry
        self.deadline_seconds = deadline_seconds
        self.protect = frozenset(protect)
        self._clock = clock
        name = substrate_name(inner)
        self._substrate = name
        if isinstance(breaker, BreakerPolicy):
            breaker = breaker.build(name)
        self.breaker = breaker

    # -- policy engine ----------------------------------------------------

    def _count_retry(self, attempt: int, delay: float, error: BaseException) -> None:
        obs.get_registry().counter(
            "repro_retries_total",
            "Retries scheduled by resilience policies per substrate.",
            labelnames=("substrate",),
        ).inc(substrate=self._substrate)

    def guard(self, operation: Callable[[], object], name: str) -> object:
        """Run one call under breaker + deadline + retry.

        Raises :class:`~repro.errors.CircuitOpenError` without touching
        the substrate when the breaker is open; otherwise failures are
        recorded on the breaker (every :class:`ReproError` except a
        rejection by another breaker counts as a substrate failure).
        """
        if self.breaker is not None:
            self.breaker.check()
        deadline = None
        if self.deadline_seconds is not None:
            clock = self._clock
            deadline = (
                Deadline(self.deadline_seconds, clock=clock)
                if clock is not None
                else Deadline(self.deadline_seconds)
            )
        try:
            if self.retry is not None:
                result = self.retry.call(
                    operation,
                    name=f"{self._substrate}.{name}",
                    deadline=deadline,
                    on_retry=self._count_retry,
                )
            else:
                if deadline is not None:
                    deadline.require()
                result = operation()
        except ReproError as error:
            if self.breaker is not None and not isinstance(
                error, CircuitOpenError
            ):
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return result

    # -- Recommender protocol --------------------------------------------

    def fit(self, dataset: Dataset) -> "ResilientRecommender":
        self.inner.fit(dataset)
        return self

    @property
    def dataset(self) -> Dataset:
        return self.inner.dataset

    @property
    def is_fitted(self) -> bool:
        return self.inner.is_fitted

    #: A resilient substrate's ``predict_or_default`` also degrades on
    #: exhausted retries, open breakers, spent deadlines and injected
    #: faults (never on :class:`~repro.errors.NotFittedError`).
    degrade_on = DEGRADABLE_ERRORS

    def predict(self, user_id: str, item_id: str) -> Prediction:
        return self.guard(
            lambda: self.inner.predict(user_id, item_id), "predict"
        )

    def __getattr__(self, name: str):
        inner = object.__getattribute__(self, "inner")
        attribute = getattr(inner, name)
        if callable(attribute) and name in self.protect:
            def guarded(*args, **kwargs):
                return self.guard(lambda: attribute(*args, **kwargs), name)

            return guarded
        return attribute


class FallbackChain(Recommender):
    """Degrade predictions across an ordered list of substrates.

    ``FallbackChain([cf_user, hybrid, popularity])`` asks each component
    in turn; a component failing with one of ``degrade_on`` moves the
    chain to the next one (counted in ``repro_fallbacks_total`` and
    emitted as a ``resilience.fallback`` event).  When every component
    fails, the chain raises
    :class:`~repro.errors.PredictionImpossibleError`, so the inherited
    ``recommend`` still fills the slot with the item-mean guess — a
    chain's recommendation list never comes back short.
    """

    def __init__(
        self,
        components: Sequence[Recommender],
        degrade_on: tuple[type[BaseException], ...] = DEGRADABLE_ERRORS,
    ) -> None:
        super().__init__()
        if not components:
            raise ValueError("a fallback chain needs at least one component")
        self.components = list(components)
        self.degrade_on = degrade_on

    def _fit(self, dataset: Dataset) -> None:
        for component in self.components:
            component.fit(dataset)

    def predict(self, user_id: str, item_id: str) -> Prediction:
        last_error: BaseException | None = None
        for component in self.components:
            name = substrate_name(component)
            try:
                return component.predict(user_id, item_id)
            except self.degrade_on as error:
                last_error = error
                reason = type(error).__name__
                _count_fallback(name, reason)
                mark_degraded(name, reason)
                obs.event(
                    "resilience.fallback",
                    substrate=name,
                    reason=reason,
                    user=user_id,
                    item=item_id,
                )
        raise PredictionImpossibleError(
            f"all {len(self.components)} chain components failed for "
            f"({user_id!r}, {item_id!r})"
        ) from last_error


class FallbackExplainer(Explainer):
    """Try each explainer in turn; never leave a recommendation bare.

    The chain implicitly ends at
    :class:`~repro.core.explainers.base.GenericExplainer` unless
    ``terminal=False``, so :meth:`explain` only raises when explicitly
    configured as non-terminal (useful for composing chains).
    """

    def __init__(
        self, explainers: Sequence[Explainer], terminal: bool = True
    ) -> None:
        if not explainers:
            raise ValueError("a fallback explainer needs at least one stage")
        self.explainers = list(explainers)
        if terminal and not isinstance(self.explainers[-1], GenericExplainer):
            self.explainers.append(GenericExplainer())
        self.style = self.explainers[0].style
        self.default_aims = self.explainers[0].default_aims

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        last_error: BaseException | None = None
        for explainer in self.explainers:
            try:
                return explainer.explain(user_id, recommendation, dataset)
            except ReproError as error:
                last_error = error
                name = type(explainer).__name__
                _count_fallback(name, type(error).__name__)
                obs.event(
                    "resilience.fallback",
                    substrate=name,
                    reason=type(error).__name__,
                    user=user_id,
                    item=recommendation.item_id,
                )
        assert last_error is not None
        raise last_error
