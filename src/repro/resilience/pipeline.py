"""The resilient explained-recommendation pipeline.

:class:`ResilientExplainedRecommender` is
:class:`~repro.core.pipeline.ExplainedRecommender` with the resilience
policies wired in: each substrate is wrapped in a
:class:`~repro.resilience.fallback.ResilientRecommender` (retry /
breaker / deadline), the wrapped substrates are lined up in a
:class:`~repro.resilience.fallback.FallbackChain`, and the explainer is
backed by the degradation fallback the base pipeline already applies
per item.

With every policy argument left at ``None`` and a single substrate, the
construction collapses to a plain ``ExplainedRecommender`` over the
bare substrate — the no-op fast path: no wrappers, no breakers, no
per-call overhead, byte-identical behaviour.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import replace

from repro.core.explainers.base import Explainer
from repro.core.pipeline import ExplainedRecommendation, ExplainedRecommender
from repro.recsys.base import Recommender
from repro.resilience.fallback import (
    FallbackChain,
    ResilientRecommender,
    track_degradation,
)
from repro.resilience.policies import BreakerPolicy, Retry

__all__ = ["ResilientExplainedRecommender"]


class ResilientExplainedRecommender(ExplainedRecommender):
    """An explained recommender that degrades instead of failing.

    Parameters
    ----------
    recommenders:
        One substrate or an ordered fallback list (personalised first,
        non-personalised last).  A ready
        :class:`~repro.resilience.fallback.FallbackChain` is used as-is.
    explainer:
        The primary explainer; failures degrade per item to
        ``fallback_explainer`` (default: the generic template).
    retry / breaker / deadline_seconds:
        Policies applied to **each** substrate independently (a breaker
        policy builds one breaker per substrate, keyed by its class
        name).  All default to off.
    """

    def __init__(
        self,
        recommenders: Recommender | Sequence[Recommender],
        explainer: Explainer,
        *,
        retry: Retry | None = None,
        breaker: BreakerPolicy | None = None,
        deadline_seconds: float | None = None,
        fallback_explainer: Explainer | None = None,
    ) -> None:
        if isinstance(recommenders, Recommender):
            components: list[Recommender] = [recommenders]
        else:
            components = list(recommenders)
        if not components:
            raise ValueError("need at least one recommender")

        policies_on = (
            retry is not None
            or breaker is not None
            or deadline_seconds is not None
        )
        recommender: Recommender
        if len(components) == 1 and isinstance(components[0], FallbackChain):
            # A pre-built chain is used as-is (its components carry
            # whatever policies the caller already applied).
            recommender = components[0]
        else:
            if policies_on:
                components = [
                    ResilientRecommender(
                        component,
                        retry=retry,
                        breaker=breaker,
                        deadline_seconds=deadline_seconds,
                    )
                    for component in components
                ]
            recommender = (
                components[0]
                if len(components) == 1
                else FallbackChain(components)
            )
        super().__init__(
            recommender, explainer, fallback_explainer=fallback_explainer
        )

    @property
    def chain(self) -> FallbackChain | None:
        """The underlying fallback chain, when one was built."""
        if isinstance(self.recommender, FallbackChain):
            return self.recommender
        return None

    def recommend(
        self,
        user_id: str,
        n: int = 10,
        exclude_rated: bool = True,
        candidates: Iterable[str] | None = None,
    ) -> list[ExplainedRecommendation]:
        """Top-``n`` with the degradation marker threaded through.

        A batch whose scoring fell back to a later chain component
        (popularity after a collapsed collaborative substrate, say) is
        no longer indistinguishable from a primary result: every item
        in it carries ``degraded=True``, so the serving boundary
        reports ``outcome="degraded"`` and caches apply the shorter
        degraded TTL — recovery replaces the answer instead of pinning
        it.  Tracking is batch-granular: a single mid-ranking fallback
        marks the whole list, because the ranking it produced was
        shaped by the fallback substrate.
        """
        with track_degradation() as tracker:
            explained = super().recommend(
                user_id,
                n=n,
                exclude_rated=exclude_rated,
                candidates=candidates,
            )
        if not tracker.fired:
            return explained
        return [
            item if item.degraded else replace(item, degraded=True)
            for item in explained
        ]

    def recommend_many(
        self,
        user_ids: Sequence[str],
        n: int = 10,
        exclude_rated: bool = True,
    ) -> list[list[ExplainedRecommendation]]:
        """Batched :meth:`recommend` with per-user fallback isolation.

        Deliberately per-user rather than one substrate batch call: a
        fallback firing for one user must mark only that user's batch
        as degraded, and one user's substrate failure must not drag the
        rest of the batch down the chain with it.
        """
        unique: dict[str, list[ExplainedRecommendation]] = {}
        for user_id in user_ids:
            if user_id not in unique:
                unique[user_id] = self.recommend(
                    user_id, n=n, exclude_rated=exclude_rated
                )
        return list(map(unique.__getitem__, user_ids))
