"""Resilience policies: retry with backoff, deadlines, circuit breakers.

Three small, composable mechanisms, all deterministic under test:

* :class:`Retry` — bounded exponential backoff with *deterministic*
  jitter (the jitter for attempt ``k`` is a pure function of the policy
  seed and ``k``, so a replayed failure schedule produces an identical
  delay schedule);
* :class:`Deadline` — a wall-clock budget for one logical operation,
  shared across the retries it spans;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, one instance per substrate, so a persistently failing
  recommender stops being hammered and gets probed instead.

Clocks and sleepers are injectable everywhere: production code uses
``time.monotonic`` / ``time.sleep``, tests pass fakes and never wait.
Every state transition and retry decision is counted in the global
:mod:`repro.obs` registry and emitted as a tracer event (free when
tracing is disabled, mirroring the rest of the instrumentation).
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro import obs
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    NotFittedError,
    ReproError,
    RetryExhaustedError,
)

__all__ = ["Retry", "Deadline", "CircuitBreaker", "BreakerPolicy"]

#: Gauge encoding of breaker states (``repro_breaker_state``).
BREAKER_STATE_VALUES = {"closed": 0, "open": 1, "half_open": 2}


class Deadline:
    """A wall-clock budget for one logical operation.

    Parameters
    ----------
    seconds:
        The budget.  Must be positive.
    clock:
        Monotonic clock; injectable for tests.
    """

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds <= 0.0:
            raise ValueError(f"deadline must be > 0 seconds, got {seconds}")
        self.seconds = float(seconds)
        self._clock = clock
        self._started = clock()

    @property
    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Budget left, clipped at zero."""
        return max(0.0, self.seconds - self.elapsed)

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.elapsed >= self.seconds

    def require(self) -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        elapsed = self.elapsed
        if elapsed >= self.seconds:
            raise DeadlineExceededError(
                deadline_seconds=self.seconds, elapsed_seconds=elapsed
            )


@dataclass(frozen=True)
class Retry:
    """Bounded exponential backoff with deterministic jitter.

    The unjittered backoff for attempt ``k`` (1-based; the delay waited
    *after* attempt ``k`` fails) is ``min(max_delay, base_delay *
    multiplier**(k-1))`` — non-decreasing and bounded by construction.
    Jitter then shaves off up to ``jitter`` (a fraction in [0, 1)) of
    the delay; the shave for attempt ``k`` is a pure function of
    ``(seed, k)``, so two runs of the same policy produce byte-identical
    schedules.

    ``retry_on`` / ``give_up_on`` classify errors: an exception is
    retried iff it is an instance of ``retry_on`` and *not* an instance
    of ``give_up_on``.  The defaults retry any :class:`ReproError`
    except the ones retrying cannot help (an unfitted model, an open
    breaker, a spent deadline).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    retry_on: tuple[type[BaseException], ...] = (ReproError,)
    give_up_on: tuple[type[BaseException], ...] = (
        NotFittedError,
        CircuitOpenError,
        DeadlineExceededError,
    )
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int) -> float:
        """Unjittered delay after the given (1-based) failed attempt."""
        if attempt < 1:
            raise ValueError(f"attempt numbers start at 1, got {attempt}")
        return min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )

    def delay(self, attempt: int) -> float:
        """Jittered delay after the given failed attempt (deterministic)."""
        raw = self.backoff(attempt)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        # A private RNG keyed on (seed, attempt): stateless, replayable.
        shave = random.Random(self.seed * 1_000_003 + attempt).random()
        return raw * (1.0 - self.jitter * shave)

    def delays(self) -> tuple[float, ...]:
        """The full jittered schedule (one delay per non-final attempt)."""
        return tuple(
            self.delay(attempt) for attempt in range(1, self.max_attempts)
        )

    def retryable(self, error: BaseException) -> bool:
        """Whether the policy retries after this error."""
        return isinstance(error, self.retry_on) and not isinstance(
            error, self.give_up_on
        )

    def call(
        self,
        operation: Callable[[], object],
        *,
        name: str = "operation",
        deadline: Deadline | None = None,
        on_retry: Callable[[int, float, BaseException], None] | None = None,
    ) -> object:
        """Run ``operation`` under the policy.

        Raises :class:`RetryExhaustedError` (chaining the last error)
        when every attempt failed retryably, re-raises non-retryable
        errors immediately, and raises :class:`DeadlineExceededError`
        when ``deadline`` runs out between attempts — *eagerly*: a
        backoff pause that would spend the whole remaining budget is
        never slept, because the retry it buys could not start inside
        the deadline anyway.  ``on_retry`` fires once per scheduled
        retry with ``(attempt, delay, error)``.
        """
        last_error: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.require()
            try:
                return operation()
            except BaseException as error:  # noqa: B036 - classified below
                if not self.retryable(error):
                    raise
                last_error = error
                if attempt == self.max_attempts:
                    break
                pause = self.delay(attempt)
                if deadline is not None:
                    # Never sleep into a guaranteed timeout: if the
                    # backoff pause would consume the whole remaining
                    # budget, the next attempt could not start in time —
                    # fail eagerly instead of wasting the caller's wait.
                    remaining = deadline.remaining()
                    if pause >= remaining:
                        raise DeadlineExceededError(
                            deadline_seconds=deadline.seconds,
                            elapsed_seconds=deadline.elapsed,
                        ) from error
                obs.event(
                    "resilience.retry",
                    operation=name,
                    attempt=attempt,
                    delay_s=round(pause, 6),
                    error=type(error).__name__,
                )
                if on_retry is not None:
                    on_retry(attempt, pause, error)
                if pause > 0.0:
                    self.sleep(pause)
        raise RetryExhaustedError(
            operation=name, attempts=self.max_attempts, last_error=last_error
        ) from last_error


class CircuitBreaker:
    """Closed → open → half-open breaker for one substrate.

    * **closed**: calls flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open**: calls are rejected (:meth:`check` raises
      :class:`CircuitOpenError`) until ``reset_timeout`` seconds have
      passed, at which point the breaker moves to half-open.
    * **half-open**: up to ``half_open_max_calls`` probe calls are
      admitted; the first recorded success closes the breaker, the
      first recorded failure re-opens it.

    The instance is thread-safe; ``name`` keys the
    ``repro_breaker_state`` gauge (0=closed, 1=open, 2=half-open).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str = "default",
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_max_calls: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0.0:
            raise ValueError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        if half_open_max_calls < 1:
            raise ValueError(
                f"half_open_max_calls must be >= 1, got {half_open_max_calls}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max_calls = half_open_max_calls
        self._clock = clock
        self._lock = threading.RLock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_admitted = 0
        self._publish_state()

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state (advancing open → half-open when the timeout is up)."""
        with self._lock:
            self._advance()
            return self._state

    @property
    def open_until(self) -> float:
        """Clock reading at which an open breaker admits a probe."""
        with self._lock:
            return self._opened_at + self.reset_timeout

    def _advance(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock() >= self._opened_at + self.reset_timeout
        ):
            self._transition(self.HALF_OPEN)
            self._half_open_admitted = 0

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        previous, self._state = self._state, state
        self._publish_state()
        obs.event(
            "resilience.breaker",
            substrate=self.name,
            from_state=previous,
            to_state=state,
        )
        obs.get_registry().counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions per substrate.",
            labelnames=("substrate", "to_state"),
        ).inc(substrate=self.name, to_state=state)

    def _publish_state(self) -> None:
        obs.get_registry().gauge(
            "repro_breaker_state",
            "Circuit-breaker state per substrate "
            "(0=closed, 1=open, 2=half-open).",
            labelnames=("substrate",),
        ).set(BREAKER_STATE_VALUES[self._state], substrate=self.name)

    # -- call protocol ----------------------------------------------------

    def allow(self) -> bool:
        """Whether a call may proceed right now (counts half-open probes)."""
        with self._lock:
            self._advance()
            if self._state == self.OPEN:
                return False
            if self._state == self.HALF_OPEN:
                if self._half_open_admitted >= self.half_open_max_calls:
                    return False
                self._half_open_admitted += 1
            return True

    def check(self) -> None:
        """Like :meth:`allow` but raises :class:`CircuitOpenError`.

        Decision and error construction happen under one lock hold, so
        the ``open_until`` a concurrent caller sees always belongs to
        the rejection it just received — two lock acquisitions here
        could interleave with a transition and report a stale opening.
        """
        with self._lock:
            self._advance()
            if self._state == self.HALF_OPEN:
                if self._half_open_admitted < self.half_open_max_calls:
                    self._half_open_admitted += 1
                    return
            elif self._state != self.OPEN:
                return
            raise CircuitOpenError(
                breaker_name=self.name,
                open_until=self._opened_at + self.reset_timeout,
            )

    def record_success(self) -> None:
        """Report a successful call: closes a half-open breaker."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == self.HALF_OPEN:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """Report a failed call: may trip the breaker open."""
        with self._lock:
            self._advance()
            if self._state == self.HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(self.OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(self.OPEN)


@dataclass(frozen=True)
class BreakerPolicy:
    """Configuration from which per-substrate breakers are built.

    A :class:`CircuitBreaker` is stateful and must not be shared across
    substrates; the policy is the shareable part.
    """

    failure_threshold: int = 5
    reset_timeout: float = 30.0
    half_open_max_calls: int = 1
    clock: Callable[[], float] = field(default=time.monotonic)

    def build(self, name: str) -> CircuitBreaker:
        """A fresh breaker for one substrate."""
        return CircuitBreaker(
            name=name,
            failure_threshold=self.failure_threshold,
            reset_timeout=self.reset_timeout,
            half_open_max_calls=self.half_open_max_calls,
            clock=self.clock,
        )
