"""The explained-recommendation pipeline.

:class:`ExplainedRecommender` composes a recommender substrate with an
explainer so that every recommendation arrives with its explanation —
the coupling the paper insists on ("explanations are intrinsically
linked with the way recommendations are presented", Section 6).
Presenters from :mod:`repro.presentation` then render the pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.explainers.base import Explainer, GenericExplainer
from repro.core.explanation import Explanation
from repro.errors import ReproError
from repro.recsys.base import Recommendation, Recommender
from repro.recsys.data import Dataset

__all__ = ["ExplainedRecommendation", "ExplainedRecommender", "UNRANKED"]

#: Sentinel rank for recommendations that never went through ranking
#: (e.g. :meth:`ExplainedRecommender.predict_and_explain`).  Genuine
#: ranks start at 1, so any non-positive rank means "not a ranked
#: result" — never confuse it with a top-1 hit.
UNRANKED: int = -1


@dataclass(frozen=True)
class ExplainedRecommendation:
    """A recommendation paired with its explanation.

    ``degraded`` is ``True`` when the intended explainer failed and the
    explanation came from the degradation fallback instead — presenters
    can soften their framing, and evaluation harnesses can count how
    often the facility ran degraded.
    """

    recommendation: Recommendation
    explanation: Explanation
    degraded: bool = False

    @property
    def item_id(self) -> str:
        """The recommended item id."""
        return self.recommendation.item_id

    @property
    def score(self) -> float:
        """The recommendation score (predicted rating or utility)."""
        return self.recommendation.score


class ExplainedRecommender:
    """A recommender and an explainer, bound together.

    Parameters
    ----------
    recommender:
        Any fitted or unfitted :class:`~repro.recsys.base.Recommender`.
    explainer:
        The explainer applied to every produced recommendation.
    """

    def __init__(
        self,
        recommender: Recommender,
        explainer: Explainer,
        fallback_explainer: Explainer | None = None,
    ) -> None:
        self.recommender = recommender
        self.explainer = explainer
        #: Applied per item when ``explainer`` raises a ReproError midway
        #: through a batch, so one bad explanation never loses the whole
        #: result list.  Defaults to the generic template explainer.
        self.fallback_explainer = fallback_explainer or GenericExplainer()

    def fit(self, dataset: Dataset) -> "ExplainedRecommender":
        """Fit the underlying recommender; returns ``self``."""
        self.recommender.fit(dataset)
        return self

    @property
    def dataset(self) -> Dataset:
        """The fitted dataset."""
        return self.recommender.dataset

    def explain(
        self, user_id: str, recommendation: Recommendation
    ) -> Explanation:
        """Explain one already-produced recommendation."""
        explainer = type(self.explainer).__name__
        with obs.span(
            "pipeline.explain",
            explainer=explainer,
            user=user_id,
            item=recommendation.item_id,
        ), obs.timed(
            "repro_explain_seconds",
            "Latency of one explanation per explainer.",
            explainer=explainer,
        ):
            explanation = self.explainer.explain(
                user_id, recommendation, self.recommender.dataset
            )
        obs.get_registry().counter(
            "repro_explanations_total",
            "Explanations generated per explainer.",
            labelnames=("explainer",),
        ).inc(explainer=explainer)
        return explanation

    def explain_or_degrade(
        self, user_id: str, recommendation: Recommendation
    ) -> tuple[Explanation, bool]:
        """Explain one recommendation, degrading instead of raising.

        Returns ``(explanation, degraded)``.  A :class:`ReproError` from
        the explainer is absorbed: the fallback explainer produces a
        generic explanation, the failure is counted in
        ``repro_degraded_explanations_total`` and emitted as a
        ``pipeline.explain_degraded`` event.  Non-library exceptions
        (programming errors) still propagate.
        """
        try:
            return self.explain(user_id, recommendation), False
        except ReproError as error:
            explainer = type(self.explainer).__name__
            obs.get_registry().counter(
                "repro_degraded_explanations_total",
                "Explanations served by the degradation fallback.",
                labelnames=("explainer",),
            ).inc(explainer=explainer)
            obs.event(
                "pipeline.explain_degraded",
                explainer=explainer,
                user=user_id,
                item=recommendation.item_id,
                error=type(error).__name__,
            )
            try:
                explanation = self.fallback_explainer.explain(
                    user_id, recommendation, self.recommender.dataset
                )
            except ReproError:
                # Even the fallback failed (e.g. it is chaos-wrapped in a
                # test): serve the irreducible generic template.
                explanation = GenericExplainer().explain(
                    user_id, recommendation, self.recommender.dataset
                )
            return explanation, True

    def recommend(
        self,
        user_id: str,
        n: int = 10,
        exclude_rated: bool = True,
        candidates=None,
    ) -> list[ExplainedRecommendation]:
        """Top-``n`` recommendations, each with its explanation.

        Explanation failures are handled per item: an explainer raising
        a :class:`ReproError` on item ``k`` no longer loses the ``k-1``
        explanations already produced — that item is served with a
        degraded generic explanation (``degraded=True``) and the batch
        completes at full length.
        """
        with obs.span(
            "pipeline.recommend",
            substrate=type(self.recommender).__name__,
            explainer=type(self.explainer).__name__,
            user=user_id,
            n=n,
        ):
            recommendations = self.recommender.recommend(
                user_id, n=n, exclude_rated=exclude_rated,
                candidates=candidates,
            )
            explained = []
            for recommendation in recommendations:
                explanation, degraded = self.explain_or_degrade(
                    user_id, recommendation
                )
                explained.append(
                    ExplainedRecommendation(
                        recommendation=recommendation,
                        explanation=explanation,
                        degraded=degraded,
                    )
                )
            return explained

    def recommend_many(
        self,
        user_ids,
        n: int = 10,
        exclude_rated: bool = True,
    ) -> list[list[ExplainedRecommendation]]:
        """Batched :meth:`recommend`, aligned with ``user_ids``.

        The substrate scores the whole batch through its own
        ``recommend_many`` (one vectorized pass for engine-backed
        substrates); explanations are then attached per user with the
        same per-item degradation semantics as :meth:`recommend`.
        """
        with obs.span(
            "pipeline.recommend_many",
            substrate=type(self.recommender).__name__,
            explainer=type(self.explainer).__name__,
            n_users=len(user_ids),
            n=n,
        ):
            batches = self.recommender.recommend_many(
                user_ids, n=n, exclude_rated=exclude_rated
            )
            explained_batches = []
            for user_id, recommendations in zip(user_ids, batches):
                explained = []
                for recommendation in recommendations:
                    explanation, degraded = self.explain_or_degrade(
                        user_id, recommendation
                    )
                    explained.append(
                        ExplainedRecommendation(
                            recommendation=recommendation,
                            explanation=explanation,
                            degraded=degraded,
                        )
                    )
                explained_batches.append(explained)
            return explained_batches

    def predict_and_explain(
        self, user_id: str, item_id: str
    ) -> ExplainedRecommendation:
        """Prediction + explanation for one specific item.

        This answers the Section 4.4 "why is this predicted low?" query:
        the item need not be a top recommendation, so the result carries
        the :data:`UNRANKED` sentinel rank (``-1``) — a genuine top-1
        result always has ``rank == 1``.
        """
        with obs.span(
            "pipeline.predict_and_explain", user=user_id, item=item_id
        ):
            prediction = self.recommender.predict_or_default(user_id, item_id)
            recommendation = Recommendation(
                item_id=item_id,
                score=prediction.value,
                rank=UNRANKED,
                prediction=prediction,
            )
            explanation, degraded = self.explain_or_degrade(
                user_id, recommendation
            )
            return ExplainedRecommendation(
                recommendation=recommendation,
                explanation=explanation,
                degraded=degraded,
            )
