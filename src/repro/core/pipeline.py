"""The explained-recommendation pipeline.

:class:`ExplainedRecommender` composes a recommender substrate with an
explainer so that every recommendation arrives with its explanation —
the coupling the paper insists on ("explanations are intrinsically
linked with the way recommendations are presented", Section 6).
Presenters from :mod:`repro.presentation` then render the pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.explainers.base import Explainer
from repro.core.explanation import Explanation
from repro.recsys.base import Recommendation, Recommender
from repro.recsys.data import Dataset

__all__ = ["ExplainedRecommendation", "ExplainedRecommender", "UNRANKED"]

#: Sentinel rank for recommendations that never went through ranking
#: (e.g. :meth:`ExplainedRecommender.predict_and_explain`).  Genuine
#: ranks start at 1, so any non-positive rank means "not a ranked
#: result" — never confuse it with a top-1 hit.
UNRANKED: int = -1


@dataclass(frozen=True)
class ExplainedRecommendation:
    """A recommendation paired with its explanation."""

    recommendation: Recommendation
    explanation: Explanation

    @property
    def item_id(self) -> str:
        """The recommended item id."""
        return self.recommendation.item_id

    @property
    def score(self) -> float:
        """The recommendation score (predicted rating or utility)."""
        return self.recommendation.score


class ExplainedRecommender:
    """A recommender and an explainer, bound together.

    Parameters
    ----------
    recommender:
        Any fitted or unfitted :class:`~repro.recsys.base.Recommender`.
    explainer:
        The explainer applied to every produced recommendation.
    """

    def __init__(self, recommender: Recommender, explainer: Explainer) -> None:
        self.recommender = recommender
        self.explainer = explainer

    def fit(self, dataset: Dataset) -> "ExplainedRecommender":
        """Fit the underlying recommender; returns ``self``."""
        self.recommender.fit(dataset)
        return self

    @property
    def dataset(self) -> Dataset:
        """The fitted dataset."""
        return self.recommender.dataset

    def explain(
        self, user_id: str, recommendation: Recommendation
    ) -> Explanation:
        """Explain one already-produced recommendation."""
        explainer = type(self.explainer).__name__
        with obs.span(
            "pipeline.explain",
            explainer=explainer,
            user=user_id,
            item=recommendation.item_id,
        ), obs.timed(
            "repro_explain_seconds",
            "Latency of one explanation per explainer.",
            explainer=explainer,
        ):
            explanation = self.explainer.explain(
                user_id, recommendation, self.recommender.dataset
            )
        obs.get_registry().counter(
            "repro_explanations_total",
            "Explanations generated per explainer.",
            labelnames=("explainer",),
        ).inc(explainer=explainer)
        return explanation

    def recommend(
        self,
        user_id: str,
        n: int = 10,
        exclude_rated: bool = True,
        candidates=None,
    ) -> list[ExplainedRecommendation]:
        """Top-``n`` recommendations, each with its explanation."""
        with obs.span(
            "pipeline.recommend",
            substrate=type(self.recommender).__name__,
            explainer=type(self.explainer).__name__,
            user=user_id,
            n=n,
        ):
            recommendations = self.recommender.recommend(
                user_id, n=n, exclude_rated=exclude_rated,
                candidates=candidates,
            )
            return [
                ExplainedRecommendation(
                    recommendation=recommendation,
                    explanation=self.explain(user_id, recommendation),
                )
                for recommendation in recommendations
            ]

    def predict_and_explain(
        self, user_id: str, item_id: str
    ) -> ExplainedRecommendation:
        """Prediction + explanation for one specific item.

        This answers the Section 4.4 "why is this predicted low?" query:
        the item need not be a top recommendation, so the result carries
        the :data:`UNRANKED` sentinel rank (``-1``) — a genuine top-1
        result always has ``rank == 1``.
        """
        with obs.span(
            "pipeline.predict_and_explain", user=user_id, item=item_id
        ):
            prediction = self.recommender.predict_or_default(user_id, item_id)
            recommendation = Recommendation(
                item_id=item_id,
                score=prediction.value,
                rank=UNRANKED,
                prediction=prediction,
            )
            return ExplainedRecommendation(
                recommendation=recommendation,
                explanation=self.explain(user_id, recommendation),
            )
