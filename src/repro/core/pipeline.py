"""The explained-recommendation pipeline.

:class:`ExplainedRecommender` composes a recommender substrate with an
explainer so that every recommendation arrives with its explanation —
the coupling the paper insists on ("explanations are intrinsically
linked with the way recommendations are presented", Section 6).
Presenters from :mod:`repro.presentation` then render the pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.explainers.base import Explainer
from repro.core.explanation import Explanation
from repro.recsys.base import Recommendation, Recommender
from repro.recsys.data import Dataset

__all__ = ["ExplainedRecommendation", "ExplainedRecommender"]


@dataclass(frozen=True)
class ExplainedRecommendation:
    """A recommendation paired with its explanation."""

    recommendation: Recommendation
    explanation: Explanation

    @property
    def item_id(self) -> str:
        """The recommended item id."""
        return self.recommendation.item_id

    @property
    def score(self) -> float:
        """The recommendation score (predicted rating or utility)."""
        return self.recommendation.score


class ExplainedRecommender:
    """A recommender and an explainer, bound together.

    Parameters
    ----------
    recommender:
        Any fitted or unfitted :class:`~repro.recsys.base.Recommender`.
    explainer:
        The explainer applied to every produced recommendation.
    """

    def __init__(self, recommender: Recommender, explainer: Explainer) -> None:
        self.recommender = recommender
        self.explainer = explainer

    def fit(self, dataset: Dataset) -> "ExplainedRecommender":
        """Fit the underlying recommender; returns ``self``."""
        self.recommender.fit(dataset)
        return self

    @property
    def dataset(self) -> Dataset:
        """The fitted dataset."""
        return self.recommender.dataset

    def explain(
        self, user_id: str, recommendation: Recommendation
    ) -> Explanation:
        """Explain one already-produced recommendation."""
        return self.explainer.explain(
            user_id, recommendation, self.recommender.dataset
        )

    def recommend(
        self,
        user_id: str,
        n: int = 10,
        exclude_rated: bool = True,
        candidates=None,
    ) -> list[ExplainedRecommendation]:
        """Top-``n`` recommendations, each with its explanation."""
        recommendations = self.recommender.recommend(
            user_id, n=n, exclude_rated=exclude_rated, candidates=candidates
        )
        return [
            ExplainedRecommendation(
                recommendation=recommendation,
                explanation=self.explain(user_id, recommendation),
            )
            for recommendation in recommendations
        ]

    def predict_and_explain(
        self, user_id: str, item_id: str
    ) -> ExplainedRecommendation:
        """Prediction + explanation for one specific item.

        This answers the Section 4.4 "why is this predicted low?" query:
        the item need not be a top recommendation.
        """
        prediction = self.recommender.predict_or_default(user_id, item_id)
        recommendation = Recommendation(
            item_id=item_id, score=prediction.value, rank=0, prediction=prediction
        )
        return ExplainedRecommendation(
            recommendation=recommendation,
            explanation=self.explain(user_id, recommendation),
        )
