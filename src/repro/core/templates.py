"""Natural-language templates for explanation text.

Central home for the sentence shapes the paper exhibits, so every
explainer phrases things consistently and the paper's own example
sentences are reproducible verbatim-in-structure:

* "You have been watching a lot of sports, and football in particular.
  This is the most popular and recent item from the world cup." (4.1)
* "You might also like ... Oliver Twist by Charles Dickens" (4.3)
* "People like you liked ... Oliver Twist by Charles Dickens" (4.3)
* "This is a sports item, but it is about hockey.  You do not seem to
  like hockey!" (4.4)
* "[these laptops] ... are cheaper and lighter, but have lower processor
  speed" (4.5)
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.recsys.data import RatingScale

__all__ = [
    "join_phrases",
    "describe_rating",
    "describe_confidence",
    "viewing_history_sentence",
    "top_item_sentence",
    "might_also_like",
    "people_like_you_liked",
    "because_you_liked",
    "interests_suggest",
    "negative_topic_sentence",
    "tradeoff_sentence",
    "confidence_disclosure",
]


def join_phrases(phrases: Sequence[str], conjunction: str = "and") -> str:
    """Join phrases with commas and a final conjunction.

    >>> join_phrases(["a"])
    'a'
    >>> join_phrases(["a", "b"])
    'a and b'
    >>> join_phrases(["a", "b", "c"])
    'a, b and c'
    """
    phrases = [p for p in phrases if p]
    if not phrases:
        return ""
    if len(phrases) == 1:
        return phrases[0]
    return f"{', '.join(phrases[:-1])} {conjunction} {phrases[-1]}"


def describe_rating(value: float, scale: RatingScale) -> str:
    """A qualitative word for a rating value on its scale."""
    unit = scale.normalize(value)
    if unit >= 0.85:
        return "outstanding"
    if unit >= 0.65:
        return "good"
    if unit >= 0.45:
        return "average"
    if unit >= 0.25:
        return "poor"
    return "very poor"


def describe_confidence(confidence: float) -> str:
    """A qualitative word for a confidence value in [0, 1]."""
    if confidence >= 0.8:
        return "very confident"
    if confidence >= 0.55:
        return "fairly confident"
    if confidence >= 0.3:
        return "somewhat unsure"
    return "really not sure"


def viewing_history_sentence(
    general_topic: str, specific_topic: str | None = None
) -> str:
    """'You have been watching a lot of sports, and football in particular.'"""
    if specific_topic and specific_topic != general_topic:
        return (
            f"You have been watching a lot of {general_topic}, "
            f"and {specific_topic} in particular."
        )
    return f"You have been watching a lot of {general_topic}."


def top_item_sentence(context: str) -> str:
    """'This is the most popular and recent item from the world cup.'"""
    return f"This is the most popular and recent item from {context}."


def might_also_like(title: str) -> str:
    """'You might also like ... Oliver Twist by Charles Dickens.'"""
    return f"You might also like... {title}."


def people_like_you_liked(title: str) -> str:
    """'People like you liked ... Oliver Twist by Charles Dickens.'"""
    return f"People like you liked... {title}."


def because_you_liked(title: str, liked_titles: Sequence[str]) -> str:
    """'We have recommended X because you liked Y.'"""
    liked = join_phrases(list(liked_titles))
    return f"We have recommended {title} because you liked {liked}."


def interests_suggest(title: str) -> str:
    """'Your interests suggest that you would like X.'"""
    return f"Your interests suggest that you would like {title}."


def negative_topic_sentence(
    general_topic: str, specific_topic: str
) -> str:
    """'This is a sports item, but it is about hockey. You do not seem to
    like hockey!'"""
    return (
        f"This is a {general_topic} item, but it is about "
        f"{specific_topic}. You do not seem to like {specific_topic}!"
    )


def tradeoff_sentence(
    pros: Sequence[str], cons: Sequence[str], subject: str = "These items"
) -> str:
    """'These items are Cheaper and Lighter, but have Lower Processor Speed.'

    Positive deltas lead, negatives trail after "but" — the "Thinking
    positively" critique ordering of McCarthy et al. (paper ref [20]).
    """
    pros_text = join_phrases(list(pros))
    cons_text = join_phrases(list(cons))
    if pros_text and cons_text:
        return f"{subject} are {pros_text}, but {cons_text}."
    if pros_text:
        return f"{subject} are {pros_text}."
    if cons_text:
        return f"{subject} are {cons_text}."
    return f"{subject} are equivalent on your criteria."


def confidence_disclosure(confidence: float) -> str:
    """A frank admission of the system's own confidence (Section 2.3).

    "A user may also appreciate when a system is 'frank' and admits that
    it is not confident about a particular recommendation."
    """
    quality = describe_confidence(confidence)
    return (
        f"To be frank, we are {quality} about this recommendation "
        f"(confidence {confidence:.0%})."
    )
