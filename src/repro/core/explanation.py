"""The :class:`Explanation` object.

An explanation is more than its sentence: it keeps the structured
evidence it was generated from (so presenters can re-render it as a
histogram, an influence table or a trade-off category title), the
recommender's confidence (so frank personalities can disclose it), and
the aims it was designed to serve (so evaluators know what to measure it
against).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aims import Aim
from repro.core.styles import ExplanationStyle
from repro.recsys.base import Evidence, EvidenceItem

__all__ = ["Explanation"]


@dataclass(frozen=True)
class Explanation:
    """One explanation of one recommendation for one user.

    Attributes
    ----------
    item_id:
        The recommended item being explained.
    style:
        Content classification (content / collaborative / preference).
    text:
        The natural-language rendering shown to the user.
    evidence:
        The typed evidence records the text was generated from — the
        explanation's honest provenance.
    confidence:
        The recommender's self-assessed confidence in [0, 1], carried so
        a "frank" presentation can disclose it (paper Section 4.6).
    aims:
        The aims this explanation is designed to serve (Table 1), used by
        evaluators and the survey registry.
    details:
        Optional extra renderings keyed by name (e.g. ``"histogram"``,
        ``"influence_table"``) produced by richer explainers.
    """

    item_id: str
    style: ExplanationStyle
    text: str
    evidence: tuple[Evidence, ...] = ()
    confidence: float = 0.5
    aims: frozenset[Aim] = frozenset()
    details: dict[str, str] = field(default_factory=dict)

    def serves(self, aim: Aim) -> bool:
        """Whether this explanation targets the given aim."""
        return aim in self.aims

    def evidence_items(self) -> tuple[EvidenceItem, ...]:
        """All structured support atoms across the evidence records.

        Quality metrics consume these instead of parsing :attr:`text`;
        explainers that *cite* only a subset of the carried evidence
        narrow this via :meth:`repro.core.explainers.base.Explainer.\
evidence_items`.
        """
        items: list[EvidenceItem] = []
        for record in self.evidence:
            items.extend(record.support_items())
        return tuple(items)

    @property
    def evidence_withheld(self) -> bool:
        """Whether this explanation explicitly declares it has no evidence.

        True only when a :class:`~repro.recsys.base.NoEvidence` marker
        is attached (the degraded-template path); an explanation that
        simply carries no records returns ``False``.
        """
        return any(record.kind == "no_evidence" for record in self.evidence)

    def render(self, include_details: bool = False) -> str:
        """The user-facing text, optionally with detail blocks appended."""
        if not include_details or not self.details:
            return self.text
        blocks = [self.text]
        for name in sorted(self.details):
            blocks.append(self.details[name])
        return "\n\n".join(blocks)

    def with_suffix(self, suffix: str) -> "Explanation":
        """A copy with ``suffix`` appended to the text.

        Used by decorating explainers (e.g. frank confidence statements).
        """
        return Explanation(
            item_id=self.item_id,
            style=self.style,
            text=f"{self.text} {suffix}".strip(),
            evidence=self.evidence,
            confidence=self.confidence,
            aims=self.aims,
            details=dict(self.details),
        )
