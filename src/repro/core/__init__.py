"""The explanation framework: the paper's primary contribution as code.

Aims taxonomy (Table 1), explanation styles (Section 6), explainers for
every style, the explained-recommendation pipeline, and the survey
registry (Tables 2–4).
"""

from repro.core.aims import AIM_INFO, TRADEOFFS, Aim, AimInfo, Tradeoff
from repro.core.explainers import (
    CollaborativeExplainer,
    ContentBasedExplainer,
    Explainer,
    FrankExplainer,
    GenericExplainer,
    InfluenceExplainer,
    NeighborHistogramExplainer,
    NoExplanationExplainer,
    PersonalizedSimilarityLanguage,
    PreferenceBasedExplainer,
    SimilarityAwareCollaborativeExplainer,
    TradeoffExplainer,
    topic_history,
)
from repro.core.explanation import Explanation
from repro.core.pipeline import (
    UNRANKED,
    ExplainedRecommendation,
    ExplainedRecommender,
)
from repro.core.styles import CANONICAL_SENTENCES, ExplanationStyle
from repro.core.survey import (
    REGISTRY,
    TABLE_2,
    SurveyedSystem,
    SurveyRegistry,
    aims_for_citations,
    render_table_1,
    render_table_2,
    render_table_3,
    render_table_4,
)
from repro.core.taxonomy import InteractionMode, PresentationMode

__all__ = [
    "Aim",
    "AimInfo",
    "AIM_INFO",
    "Tradeoff",
    "TRADEOFFS",
    "ExplanationStyle",
    "CANONICAL_SENTENCES",
    "PresentationMode",
    "InteractionMode",
    "Explanation",
    "Explainer",
    "NoExplanationExplainer",
    "GenericExplainer",
    "ContentBasedExplainer",
    "CollaborativeExplainer",
    "NeighborHistogramExplainer",
    "PreferenceBasedExplainer",
    "InfluenceExplainer",
    "TradeoffExplainer",
    "FrankExplainer",
    "PersonalizedSimilarityLanguage",
    "SimilarityAwareCollaborativeExplainer",
    "topic_history",
    "ExplainedRecommendation",
    "SystemDemo",
    "demo",
    "demo_all",
    "ExplainedRecommender",
    "UNRANKED",
    "SurveyedSystem",
    "SurveyRegistry",
    "REGISTRY",
    "TABLE_2",
    "aims_for_citations",
    "render_table_1",
    "render_table_2",
    "render_table_3",
    "render_table_4",
]


def __getattr__(name):
    """Lazily expose the Table 3/4 demos.

    ``repro.core.demos`` pulls in every domain and interaction module;
    importing it eagerly would create an import cycle through
    ``repro.recsys.group`` -> ``repro.core.templates``.
    """
    if name in ("SystemDemo", "demo", "demo_all"):
        from repro.core import demos

        return getattr(demos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
