"""The survey registry: Tables 1–4 as queryable machine-readable records.

Tables 3 and 4 are reproduced cell-for-cell from the paper.  For Table 2
(aims of academic systems) the scanned source text preserves each row's
*number* of checkmarks but not their column positions; the assignments
here are reconstructed from each cited system's stated goals, preserving
the per-row counts — see the ``rationale`` field on each record and the
note in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.aims import Aim, table_1_rows
from repro.core.styles import ExplanationStyle
from repro.core.taxonomy import InteractionMode, PresentationMode
from repro.render import table

__all__ = [
    "SurveyedSystem",
    "TABLE_2",
    "aims_for_citations",
    "SurveyRegistry",
    "REGISTRY",
    "render_table_1",
    "render_table_2",
    "render_table_3",
    "render_table_4",
]


@dataclass(frozen=True)
class SurveyedSystem:
    """One surveyed recommender system with an explanation facility."""

    name: str
    citations: tuple[str, ...]
    kind: str  # "commercial" | "academic"
    item_type: str
    presentation: tuple[PresentationMode, ...]
    explanation_styles: tuple[ExplanationStyle, ...]
    interaction: tuple[InteractionMode, ...]
    aims: frozenset[Aim] = frozenset()
    rationale: str = ""
    presentation_note: str = ""

    def presentation_label(self) -> str:
        """The presentation cell as the paper prints it."""
        if self.presentation_note:
            return self.presentation_note
        return ", ".join(str(mode) for mode in self.presentation)

    def explanation_label(self) -> str:
        """The explanation cell as the paper prints it."""
        return ", ".join(str(style) for style in self.explanation_styles)

    def interaction_label(self) -> str:
        """The interaction cell as the paper prints it."""
        return ", ".join(str(mode) for mode in self.interaction)


_P = PresentationMode
_I = InteractionMode
_S = ExplanationStyle

TABLE_2: dict[str, frozenset[Aim]] = {
    "[2]": frozenset({Aim.EFFECTIVENESS, Aim.SATISFACTION}),
    "[5]": frozenset({Aim.EFFECTIVENESS}),
    "[6]": frozenset({Aim.TRANSPARENCY, Aim.EFFICIENCY}),
    "[7]": frozenset({Aim.TRANSPARENCY, Aim.TRUST}),
    "[10]": frozenset({Aim.TRUST, Aim.PERSUASIVENESS}),
    "[11]": frozenset({Aim.TRANSPARENCY, Aim.SCRUTABILITY}),
    "[18]": frozenset(
        {Aim.TRANSPARENCY, Aim.PERSUASIVENESS, Aim.SATISFACTION}
    ),
    "[20]": frozenset({Aim.EFFECTIVENESS, Aim.EFFICIENCY}),
    "[21]": frozenset({Aim.EFFICIENCY}),
    "[24]": frozenset({Aim.TRANSPARENCY, Aim.TRUST}),
    "[28]": frozenset({Aim.TRUST}),
    "[31]": frozenset({Aim.TRANSPARENCY}),
    "[35]": frozenset({Aim.EFFICIENCY, Aim.SATISFACTION}),
    "[37]": frozenset({Aim.EFFICIENCY, Aim.SATISFACTION}),
}
"""Table 2, keyed by citation.

The scanned source preserves each row's checkmark *count* but not the
column positions; positions here are reconstructed from each cited
paper's stated goals (counts match the paper exactly).
"""


def aims_for_citations(citations: Iterable[str]) -> frozenset[Aim]:
    """Union of Table 2 aims over a system's citations."""
    aims: set[Aim] = set()
    for citation in citations:
        aims.update(TABLE_2.get(citation, frozenset()))
    return frozenset(aims)


def _commercial() -> list[SurveyedSystem]:
    """Table 3 rows, cell-for-cell."""
    return [
        SurveyedSystem(
            name="Amazon",
            citations=(),
            kind="commercial",
            item_type="e.g. Books, Movies",
            presentation=(_P.SIMILAR_TO_TOP,),
            explanation_styles=(_S.CONTENT_BASED,),
            interaction=(_I.RATING, _I.OPINION),
            presentation_note="Similar to top item(s)",
        ),
        SurveyedSystem(
            name="Findory",
            citations=(),
            kind="commercial",
            item_type="News",
            presentation=(_P.SIMILAR_TO_TOP,),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.IMPLICIT_RATING,),
            presentation_note="Similar to top item(s)",
        ),
        SurveyedSystem(
            name="LibraryThing",
            citations=(),
            kind="commercial",
            item_type="Books",
            presentation=(_P.SIMILAR_TO_TOP,),
            explanation_styles=(_S.COLLABORATIVE_BASED,),
            interaction=(_I.RATING,),
            presentation_note="Similar to top item(s)",
        ),
        SurveyedSystem(
            name="LoveFilm",
            citations=(),
            kind="commercial",
            item_type="Movies",
            presentation=(_P.TOP_N, _P.PREDICTED_RATINGS),
            explanation_styles=(_S.CONTENT_BASED,),
            interaction=(_I.RATING,),
            presentation_note="Top-N, Predicted ratings",
        ),
        SurveyedSystem(
            name="OkCupid",
            citations=(),
            kind="commercial",
            item_type="People to date",
            presentation=(_P.TOP_N, _P.PREDICTED_RATINGS),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.SPECIFY_REQUIREMENTS,),
            presentation_note="Top-N, Predicted ratings",
        ),
        SurveyedSystem(
            name="Pandora",
            citations=(),
            kind="commercial",
            item_type="Music",
            presentation=(_P.TOP_ITEM,),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.OPINION,),
        ),
        SurveyedSystem(
            name="StumbleUpon",
            citations=(),
            kind="commercial",
            item_type="Web pages",
            presentation=(_P.TOP_ITEM,),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.OPINION,),
        ),
        SurveyedSystem(
            name="Qwikshop",
            citations=("[20]",),
            kind="commercial",
            item_type="Digital cameras",
            presentation=(_P.TOP_ITEM, _P.SIMILAR_TO_TOP),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.ALTERATION,),
            presentation_note="Top item, Similar to top item",
        ),
    ]


def _academic() -> list[SurveyedSystem]:
    """Table 4 rows (cell-for-cell) with Table 2 aims attached.

    The ``aims`` assignments preserve the per-row checkmark counts of the
    paper's Table 2; positions are reconstructed from the cited papers'
    stated goals (see ``rationale``).
    """
    return [
        SurveyedSystem(
            name="LIBRA",
            citations=("[5]",),
            kind="academic",
            item_type="Books",
            presentation=(_P.TOP_N, _P.PREDICTED_RATINGS),
            explanation_styles=(_S.CONTENT_BASED, _S.COLLABORATIVE_BASED),
            interaction=(_I.RATING,),
            aims=aims_for_citations(("[5]",)),
            rationale=(
                "Bilgic & Mooney explicitly target helping users make "
                "accurate decisions (satisfaction vs. promotion)"
            ),
            presentation_note="Top-N, Predicted ratings",
        ),
        SurveyedSystem(
            name="News Dude",
            citations=("[6]",),
            kind="academic",
            item_type="News",
            presentation=(_P.TOP_N,),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.OPINION,),
            aims=aims_for_citations(("[6]",)),
            rationale=(
                "a personal news agent that 'talks, learns and explains' "
                "its reasoning, within short spoken interactions"
            ),
            presentation_note="Top-N items",
        ),
        SurveyedSystem(
            name="MYCIN",
            citations=("[7]",),
            kind="academic",
            item_type="Prescriptions",
            presentation=(_P.TOP_ITEM,),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.SPECIFY_REQUIREMENTS,),
            aims=aims_for_citations(("[7]",)),
            rationale=(
                "expert-system explanations make medical reasoning visible "
                "so clinicians can trust the advice"
            ),
        ),
        SurveyedSystem(
            name="MovieLens",
            citations=("[10]", "[18]"),
            kind="academic",
            item_type="Movies",
            presentation=(_P.TOP_N, _P.PREDICTED_RATINGS),
            explanation_styles=(_S.COLLABORATIVE_BASED,),
            interaction=(_I.RATING,),
            aims=aims_for_citations(("[10]", "[18]")),
            rationale=(
                "Herlocker et al. explain CF to expose the model and win "
                "acceptance; Cosley et al. show interfaces shift opinions"
            ),
            presentation_note="Top-N, Predicted ratings",
        ),
        SurveyedSystem(
            name="SASY",
            citations=("[11]",),
            kind="academic",
            item_type="E.g. holiday",
            presentation=(_P.TOP_ITEM,),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.ALTERATION,),
            aims=aims_for_citations(("[11]",)),
            rationale=(
                "Czarkowski's scrutable adaptive hypertext couples "
                "transparency evaluation with scrutability"
            ),
        ),
        SurveyedSystem(
            name="Sim",
            citations=("[21]",),
            kind="academic",
            item_type="PCs",
            presentation=(_P.TOP_N,),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.VARIED,),
            aims=aims_for_citations(("[21]",)),
            rationale=(
                "comparison-based recommendation aims to shorten the path "
                "to a satisfactory item"
            ),
        ),
        SurveyedSystem(
            name="Top Case",
            citations=("[24]",),
            kind="academic",
            item_type="Holiday",
            presentation=(_P.TOP_ITEM, _P.SIMILAR_TO_TOP),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.SPECIFY_REQUIREMENTS,),
            aims=aims_for_citations(("[24]",)),
            rationale=(
                "McSherry's CBR explanations expose retrieval reasoning "
                "and the system's confidence in it"
            ),
            presentation_note="Top-item, Similar to top item",
        ),
        SurveyedSystem(
            name="Organizational Structure",
            citations=("[28]",),
            kind="academic",
            item_type="Digital camera, notebook computer",
            presentation=(_P.STRUCTURED_OVERVIEW,),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.NONE,),
            aims=aims_for_citations(("[28]",)),
            rationale="Pu & Chen: 'Trust building with explanation interfaces'",
            presentation_note="Structured overview",
        ),
        SurveyedSystem(
            name="ADAPTIVE PLACE ADVISOR",
            citations=("[35]",),
            kind="academic",
            item_type="Restaurants",
            presentation=(_P.TOP_ITEM,),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.SPECIFY_REQUIREMENTS,),
            aims=aims_for_citations(("[35]",)),
            rationale=(
                "Thompson et al. measure reduced time and interactions to "
                "a satisfactory restaurant in enjoyable conversations"
            ),
        ),
        SurveyedSystem(
            name="ACORN",
            citations=("[37]",),
            kind="academic",
            item_type="Movies",
            presentation=(_P.STRUCTURED_OVERVIEW, _P.TOP_N),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(_I.SPECIFY_REQUIREMENTS,),
            aims=aims_for_citations(("[37]",)),
            rationale=(
                "Wärnestål's conversational recommender is evaluated on "
                "dialogue efficiency and user satisfaction"
            ),
            presentation_note="Structured overview, Top-N",
        ),
        # Systems in Table 2 but not Table 4: their aims are stated even
        # though the paper gives no presentation/interaction breakdown.
        SurveyedSystem(
            name="INTRIGUE",
            citations=("[2]",),
            kind="academic (aims only)",
            item_type="Tourist attractions",
            presentation=(),
            explanation_styles=(_S.PREFERENCE_BASED,),
            interaction=(),
            aims=aims_for_citations(("[2]",)),
            rationale=(
                "group tourist recommendations explained so groups choose "
                "well and enjoy the planning"
            ),
        ),
        SurveyedSystem(
            name="Sinha & Swearingen study",
            citations=("[31]",),
            kind="academic (aims only)",
            item_type="Movies/music (study)",
            presentation=(),
            explanation_styles=(),
            interaction=(),
            aims=aims_for_citations(("[31]",)),
            rationale="'The role of transparency in recommender systems'",
        ),
    ]


class SurveyRegistry:
    """Query interface over the surveyed systems."""

    def __init__(self, systems: Iterable[SurveyedSystem]) -> None:
        self._systems = list(systems)

    @property
    def systems(self) -> list[SurveyedSystem]:
        """All registered systems."""
        return list(self._systems)

    def commercial(self) -> list[SurveyedSystem]:
        """Table 3's systems."""
        return [s for s in self._systems if s.kind == "commercial"]

    def academic(self, with_tables: bool = True) -> list[SurveyedSystem]:
        """Table 4's systems; ``with_tables=False`` adds aims-only entries."""
        if with_tables:
            return [s for s in self._systems if s.kind == "academic"]
        return [s for s in self._systems if s.kind.startswith("academic")]

    def with_aim(self, aim: Aim) -> list[SurveyedSystem]:
        """Systems striving for the given aim (Table 2 lookup)."""
        return [s for s in self._systems if aim in s.aims]

    def with_style(self, style: ExplanationStyle) -> list[SurveyedSystem]:
        """Systems using the given explanation style."""
        return [s for s in self._systems if style in s.explanation_styles]

    def with_presentation(self, mode: PresentationMode) -> list[SurveyedSystem]:
        """Systems using the given presentation mode."""
        return [s for s in self._systems if mode in s.presentation]

    def with_interaction(self, mode: InteractionMode) -> list[SurveyedSystem]:
        """Systems offering the given interaction mode."""
        return [s for s in self._systems if mode in s.interaction]

    def by_name(self, name: str) -> SurveyedSystem:
        """Exact-name lookup."""
        for system in self._systems:
            if system.name == name:
                return system
        raise KeyError(name)


REGISTRY = SurveyRegistry(_commercial() + _academic())
"""The default registry holding every system the paper tabulates."""

_TABLE2_ORDER = (
    "[2]", "[5]", "[6]", "[7]", "[10]", "[11]", "[18]", "[20]", "[21]",
    "[24]", "[28]", "[31]", "[35]", "[37]",
)

_TABLE2_AIM_ORDER = (
    Aim.TRANSPARENCY,
    Aim.SCRUTABILITY,
    Aim.TRUST,
    Aim.EFFECTIVENESS,
    Aim.PERSUASIVENESS,
    Aim.EFFICIENCY,
    Aim.SATISFACTION,
)


def render_table_1() -> str:
    """Table 1: aim, definition."""
    return table(("Aim", "Definition"), table_1_rows())


def render_table_2() -> str:
    """Table 2: citation x aim checkmark matrix (positions reconstructed)."""
    headers = ["System"] + [aim.info.abbreviation for aim in _TABLE2_AIM_ORDER]
    rows = []
    for citation in _TABLE2_ORDER:
        aims = TABLE_2[citation]
        row = [citation] + [
            "X" if aim in aims else "" for aim in _TABLE2_AIM_ORDER
        ]
        rows.append(row)
    return table(headers, rows)


def _system_table(systems: list[SurveyedSystem]) -> str:
    headers = (
        "System",
        "Item type",
        "Presentation (Section 4)",
        "Explanation",
        "Interaction (Section 5)",
    )
    rows = []
    for system in systems:
        name = system.name
        if system.citations:
            name = f"{name} {' '.join(system.citations)}"
        rows.append(
            (
                name,
                system.item_type,
                system.presentation_label(),
                system.explanation_label(),
                system.interaction_label(),
            )
        )
    return table(headers, rows)


def render_table_3() -> str:
    """Table 3: commercial recommender systems with explanation facilities."""
    return _system_table(REGISTRY.commercial())


def render_table_4() -> str:
    """Table 4: academic recommender systems with explanation facilities."""
    return _system_table(REGISTRY.academic())
