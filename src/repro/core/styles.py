"""Explanation styles: the "Explanation" column of Tables 3 and 4.

The paper classifies explanation content "regardless of the underlying
algorithm" (Section 6) into three styles, each with a canonical sentence
shape:

* content-based — "We have recommended X because you liked Y";
* collaborative-based — "People who liked X also liked Y";
* preference-based — "Your interests suggest that you would like X".

``NONE`` and ``VARIED`` exist because the survey tables need them (the
Organizational Structure entry has no separate explanation; Sim's is
"(varied)").
"""

from __future__ import annotations

import enum

__all__ = ["ExplanationStyle", "CANONICAL_SENTENCES"]


class ExplanationStyle(enum.Enum):
    """Content classification of an explanation (paper Section 6)."""

    CONTENT_BASED = "content-based"
    COLLABORATIVE_BASED = "collaborative-based"
    PREFERENCE_BASED = "preference-based"
    NONE = "none"
    VARIED = "varied"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


CANONICAL_SENTENCES: dict[ExplanationStyle, str] = {
    ExplanationStyle.CONTENT_BASED: (
        "We have recommended X because you liked Y"
    ),
    ExplanationStyle.COLLABORATIVE_BASED: "People who liked X also liked Y",
    ExplanationStyle.PREFERENCE_BASED: (
        "Your interests suggest that you would like X"
    ),
}
"""The paper's own one-line characterisation of each style (Section 6)."""
