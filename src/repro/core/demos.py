"""Live demonstrations of every system in Tables 3 and 4.

The survey classifies 18 systems by presentation, explanation style and
interaction mode.  :func:`demo` rebuilds any row from library
components: the same presenters, explainers and feedback channels the
rest of the package exposes, wired to an appropriate synthetic domain.
Running a demo yields the three artefacts the table's columns describe —
a presentation page, an explanation text, and an interaction transcript
— so the claim "every row of Tables 3–4 is implementable with this
library" is executable, not rhetorical.

Domain stand-ins (documented, deterministic): music/web-page rows run on
the news world, PC rows on the camera catalogue, prescriptions on the
restaurant catalogue — in each case the *mechanism* (latent-taste world
or typed catalogue) matches the original domain's structure.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.explainers import (
    CollaborativeExplainer,
    ContentBasedExplainer,
    InfluenceExplainer,
    NeighborHistogramExplainer,
    PreferenceBasedExplainer,
    TradeoffExplainer,
)
from repro.core.pipeline import ExplainedRecommender
from repro.core.survey import REGISTRY, SurveyedSystem
from repro.domains import (
    make_books,
    make_cameras,
    make_holidays,
    make_movies,
    make_news,
    make_people,
    make_restaurants,
)
from repro.interaction import (
    CritiqueSession,
    Opinion,
    OpinionFeedback,
    OpinionHandler,
    RatingChannel,
    RequirementElicitor,
    ScrutableProfile,
    UnitCritique,
    infer_topic_interests,
)
from repro.interaction.profile import ProfileRecommender
from repro.presentation import (
    PredictedRatingsBrowser,
    SimilarToTopPresenter,
    TopItemPresenter,
    TopNPresenter,
    build_overview,
)
from repro.recsys import (
    Constraint,
    ItemBasedCF,
    KnowledgeBasedRecommender,
    NaiveBayesRecommender,
    Preference,
    UserBasedCF,
    UserRequirements,
)

__all__ = ["SystemDemo", "demo", "demo_all"]


@dataclass(frozen=True)
class SystemDemo:
    """The three executable artefacts of one surveyed system's row."""

    system: SurveyedSystem
    presentation: str
    explanation: str
    interaction: str

    def render(self) -> str:
        """All three artefacts under the system's header."""
        return "\n".join(
            [
                f"### {self.system.name} "
                f"({self.system.item_type}) ###",
                "",
                "-- presentation --",
                self.presentation,
                "",
                "-- explanation --",
                self.explanation,
                "",
                "-- interaction --",
                self.interaction,
            ]
        )


def _similar_to_top_demo(world, explainer, social: bool):
    """Shared builder for the 'Similar to top item(s)' commercial rows."""
    dataset = world.dataset
    recommender = ItemBasedCF().fit(dataset)
    user_id = next(iter(dataset.users))
    rated = list(dataset.ratings_by(user_id))
    anchor = rated[0] if rated else next(iter(dataset.items))
    similar = recommender.similar_items(anchor, n=3)
    page = SimilarToTopPresenter(dataset, anchor, similar, social=social)
    recommendations = recommender.recommend(user_id, n=1)
    if recommendations:
        explanation = explainer.explain(
            user_id, recommendations[0], dataset
        ).text
    else:
        explanation = "(no personalised recommendation possible)"
    return dataset, user_id, page.render(), explanation


def _demo_amazon(seed: int) -> SystemDemo:
    world = make_books(n_users=30, n_items=60, seed=seed + 11)
    dataset, user_id, page, explanation = _similar_to_top_demo(
        world, ContentBasedExplainer(), social=False
    )
    channel = RatingChannel(dataset)
    item_id = dataset.unrated_items(user_id)[0]
    event = channel.rate(user_id, item_id, 5.0)
    handler = OpinionHandler(dataset, ScrutableProfile(user_id))
    opinion = handler.apply(
        OpinionFeedback(Opinion.MORE_LIKE_THIS, item_id=item_id)
    )
    interaction = (
        f"user rates {event.item_id} = {event.value:g}; opinion: {opinion}"
    )
    return SystemDemo(
        REGISTRY.by_name("Amazon"), page, explanation, interaction
    )


def _demo_findory(seed: int) -> SystemDemo:
    world = make_news(n_users=30, n_items=60, seed=seed + 3)
    dataset, user_id, page, explanation = _similar_to_top_demo(
        world, PreferenceBasedExplainer(), social=False
    )
    profile = ScrutableProfile(user_id)
    inferred = infer_topic_interests(profile, dataset, min_observations=2)
    interaction = (
        f"implicit rating: reading history silently inferred "
        f"{len(inferred)} interests, e.g. {inferred[0] if inferred else '-'}"
    )
    return SystemDemo(
        REGISTRY.by_name("Findory"), page, explanation, interaction
    )


def _demo_librarything(seed: int) -> SystemDemo:
    world = make_books(n_users=30, n_items=60, seed=seed + 12)
    dataset, user_id, page, explanation = _similar_to_top_demo(
        world, CollaborativeExplainer(), social=True
    )
    channel = RatingChannel(dataset)
    item_id = dataset.unrated_items(user_id)[0]
    event = channel.rate(user_id, item_id, 4.0)
    return SystemDemo(
        REGISTRY.by_name("LibraryThing"),
        page,
        explanation,
        f"user rates {event.item_id} = {event.value:g}",
    )


def _topn_predicted_demo(world, recommender, explainer):
    dataset = world.dataset
    pipeline = ExplainedRecommender(recommender, explainer).fit(dataset)
    user_id = next(iter(dataset.users))
    recommendations = pipeline.recommend(user_id, n=3)
    top_n = TopNPresenter(dataset, recommendations).render()
    browser = PredictedRatingsBrowser(pipeline, user_id, page_size=3)
    page = top_n + "\n\n" + browser.render()
    explanation = (
        recommendations[0].explanation.text if recommendations else "-"
    )
    return dataset, user_id, page, explanation


def _demo_lovefilm(seed: int) -> SystemDemo:
    world = make_movies(n_users=30, n_items=60, seed=seed + 7)
    dataset, user_id, page, explanation = _topn_predicted_demo(
        world, ItemBasedCF(), ContentBasedExplainer()
    )
    channel = RatingChannel(dataset)
    item_id = dataset.unrated_items(user_id)[0]
    event = channel.rate(user_id, item_id, 3.5)
    return SystemDemo(
        REGISTRY.by_name("LoveFilm"),
        page,
        explanation,
        f"user rates {event.item_id} = {event.value:g}",
    )


def _demo_okcupid(seed: int) -> SystemDemo:
    dataset, catalog = make_people(n_items=60, seed=seed + 51)
    recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
    elicitor = RequirementElicitor(catalog)
    elicitor.limit("age", minimum=25, maximum=40)
    elicitor.prefer("distance_km", weight=2.0)
    elicitor.prefer("interest", weight=1.0, target="hiking")
    requirements = elicitor.build()
    recommender.set_requirements("seeker", requirements)
    ranked = recommender.rank(requirements, n=3)
    lines = [
        f"{rank}. {person.title} (match {utility:.0%})"
        for rank, (person, utility, __) in enumerate(ranked, start=1)
    ]
    page = "Top matches:\n" + "\n".join(lines)
    explainer = PreferenceBasedExplainer()
    recommendations = recommender.recommend("seeker", n=1)
    explanation = (
        explainer.explain("seeker", recommendations[0], dataset).text
        if recommendations
        else "-"
    )
    interaction = "requirements: " + "; ".join(requirements.describe())
    return SystemDemo(
        REGISTRY.by_name("OkCupid"), page, explanation, interaction
    )


def _top_item_opinion_demo(system_name: str, world) -> SystemDemo:
    dataset = world.dataset
    pipeline = ExplainedRecommender(
        UserBasedCF(), PreferenceBasedExplainer()
    ).fit(dataset)
    user_id = next(iter(dataset.users))
    recommendations = pipeline.recommend(user_id, n=1)
    page = TopItemPresenter(dataset, recommendations[0]).render()
    explanation = recommendations[0].explanation.text
    handler = OpinionHandler(dataset, ScrutableProfile(user_id))
    opinion = handler.apply(
        OpinionFeedback(
            Opinion.NO_MORE_LIKE_THIS,
            item_id=recommendations[0].item_id,
        )
    )
    return SystemDemo(
        REGISTRY.by_name(system_name), page, explanation,
        f"opinion: {opinion}",
    )


def _demo_pandora(seed: int) -> SystemDemo:
    # Stand-in: the latent-taste world (tracks behave like movies).
    return _top_item_opinion_demo(
        "Pandora", make_movies(n_users=30, n_items=60, seed=seed + 9)
    )


def _demo_stumbleupon(seed: int) -> SystemDemo:
    return _top_item_opinion_demo(
        "StumbleUpon", make_news(n_users=30, n_items=60, seed=seed + 4)
    )


def _demo_qwikshop(seed: int) -> SystemDemo:
    dataset, catalog = make_cameras(n_items=60, seed=seed + 21)
    recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
    requirements = UserRequirements(
        preferences=[
            Preference("price", weight=1.0),
            Preference("resolution", weight=2.0),
        ]
    )
    session = CritiqueSession(recommender, requirements)
    reference = session.reference
    similar = [
        f"  - {critique.describe(catalog)}"
        for critique in session.compound_critiques[:3]
    ]
    page = (
        f"Top item: {reference.title}\nAlternatives:\n" + "\n".join(similar)
    )
    explainer = TradeoffExplainer(catalog, requirements)
    alternatives = session.candidates[1:2]
    explanation = (
        explainer.explain_versus(alternatives[0], reference).text
        if alternatives
        else "-"
    )
    session.critique(UnitCritique("price", "less"))
    interaction = (
        f'alteration: "Cheaper" -> now showing {session.reference.title}'
    )
    return SystemDemo(
        REGISTRY.by_name("Qwikshop"), page, explanation, interaction
    )


def _demo_libra(seed: int) -> SystemDemo:
    world = make_books(n_users=30, n_items=60, seed=seed + 13)
    dataset, user_id, page, __ = _topn_predicted_demo(
        world, NaiveBayesRecommender(), InfluenceExplainer()
    )
    pipeline = ExplainedRecommender(
        NaiveBayesRecommender(), InfluenceExplainer()
    ).fit(dataset)
    recommendations = pipeline.recommend(user_id, n=1)
    explanation = recommendations[0].explanation.render(
        include_details=True
    )
    channel = RatingChannel(dataset)
    item_id = dataset.unrated_items(user_id)[0]
    event = channel.rate(user_id, item_id, 4.5)
    return SystemDemo(
        REGISTRY.by_name("LIBRA"),
        page,
        explanation,
        f"user rates {event.item_id} = {event.value:g}",
    )


def _demo_news_dude(seed: int) -> SystemDemo:
    world = make_news(n_users=30, n_items=60, seed=seed + 5)
    dataset = world.dataset
    pipeline = ExplainedRecommender(
        UserBasedCF(), PreferenceBasedExplainer()
    ).fit(dataset)
    user_id = next(iter(dataset.users))
    recommendations = pipeline.recommend(user_id, n=3)
    page = TopNPresenter(dataset, recommendations).render()
    explanation = recommendations[0].explanation.text
    handler = OpinionHandler(dataset, ScrutableProfile(user_id))
    opinion = handler.apply(
        OpinionFeedback(
            Opinion.ALREADY_KNOW_THIS,
            item_id=recommendations[0].item_id,
            liked=True,
        )
    )
    return SystemDemo(
        REGISTRY.by_name("News Dude"), page, explanation,
        f"opinion: {opinion}",
    )


def _demo_mycin(seed: int) -> SystemDemo:
    # Stand-in: the typed-catalogue machinery; 'prescriptions' are
    # catalogue entries selected under hard constraints.
    dataset, catalog = make_restaurants(n_items=60, seed=seed + 31)
    recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
    elicitor = RequirementElicitor(catalog)
    elicitor.require("cuisine", "==", "italian")
    elicitor.limit("price_level", maximum=3)
    requirements = elicitor.build()
    ranked = recommender.rank(requirements, n=1)
    best = ranked[0][0] if ranked else None
    page = (
        f"Top prescription: {best.title}" if best else "(no match)"
    )
    explanation = (
        "Selected because it satisfies every stated requirement: "
        + "; ".join(requirements.describe())
    )
    interaction = "requirements specified: " + "; ".join(
        requirements.describe()
    )
    return SystemDemo(
        REGISTRY.by_name("MYCIN"), page, explanation, interaction
    )


def _demo_movielens(seed: int) -> SystemDemo:
    world = make_movies(n_users=40, n_items=80, seed=seed + 7,
                        density=0.3)
    dataset = world.dataset
    pipeline = ExplainedRecommender(
        UserBasedCF(), NeighborHistogramExplainer()
    ).fit(dataset)
    user_id = next(iter(dataset.users))
    recommendations = pipeline.recommend(user_id, n=3)
    page = TopNPresenter(dataset, recommendations).render()
    explanation = recommendations[0].explanation.render(
        include_details=True
    )
    channel = RatingChannel(dataset)
    event = channel.correct_prediction(
        user_id, recommendations[0].item_id, 2.0
    )
    interaction = (
        f"user corrects the prediction: rates {event.item_id} = "
        f"{event.value:g}"
    )
    return SystemDemo(
        REGISTRY.by_name("MovieLens"), page, explanation, interaction
    )


def _demo_sasy(seed: int) -> SystemDemo:
    world = make_holidays(n_items=40, seed=seed + 41)
    dataset, catalog = world
    profile = ScrutableProfile("traveller")
    profile.volunteer("preferred_climate", "hot")
    profile.infer(
        "travels_with_children", True, because="observed family searches"
    )
    page = profile.render_page()
    explanation = profile.why("travels_with_children")
    profile.correct("travels_with_children", False)
    interaction = (
        "alteration: user corrects travels_with_children -> False "
        f"(edit log: {profile.edits[-1]})"
    )
    return SystemDemo(
        REGISTRY.by_name("SASY"), page, explanation, interaction
    )


def _demo_sim(seed: int) -> SystemDemo:
    # Stand-in: PCs share the camera catalogue's typed mechanics.
    dataset, catalog = make_cameras(n_items=60, seed=seed + 22)
    recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
    requirements = UserRequirements(
        preferences=[Preference("resolution", weight=1.0)]
    )
    ranked = recommender.rank(requirements, n=3)
    page = "Top-N PCs:\n" + "\n".join(
        f"{rank}. {item.title}" for rank, (item, __, __) in
        enumerate(ranked, start=1)
    )
    explainer = TradeoffExplainer(catalog, requirements)
    explanation = explainer.explain_versus(ranked[1][0], ranked[0][0]).text
    session = CritiqueSession(recommender, requirements)
    session.critique(UnitCritique("memory", "more"))
    interaction = (
        f"(varied) critique 'More Memory' -> {session.reference.title}"
    )
    return SystemDemo(
        REGISTRY.by_name("Sim"), page, explanation, interaction
    )


def _demo_top_case(seed: int) -> SystemDemo:
    dataset, catalog = make_holidays(n_items=40, seed=seed + 42)
    recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
    elicitor = RequirementElicitor(catalog)
    elicitor.require("climate", "==", "hot")
    elicitor.prefer("price", weight=1.0)
    requirements = elicitor.build()
    ranked = recommender.rank(requirements, n=3)
    best = ranked[0][0]
    others = "\n".join(f"  similar: {item.title}" for item, __, __ in
                       ranked[1:])
    page = f"Top case: {best.title}\n{others}"
    explainer = PreferenceBasedExplainer()
    recommender.set_requirements("traveller", requirements)
    recommendations = recommender.recommend("traveller", n=1)
    explanation = explainer.explain(
        "traveller", recommendations[0], dataset
    ).text
    interaction = "requirements specified: " + "; ".join(
        requirements.describe()
    )
    return SystemDemo(
        REGISTRY.by_name("Top Case"), page, explanation, interaction
    )


def _demo_organizational_structure(seed: int) -> SystemDemo:
    dataset, catalog = make_cameras(n_items=60, seed=seed + 23)
    recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
    requirements = UserRequirements(
        preferences=[
            Preference("price", weight=1.5),
            Preference("resolution", weight=2.0),
        ]
    )
    overview = build_overview(recommender, requirements)
    page = overview.render()
    explanation = (
        overview.categories[0].title if overview.categories
        else "(no categories)"
    )
    return SystemDemo(
        REGISTRY.by_name("Organizational Structure"),
        page,
        explanation,
        "(none — the organizational structure itself is the explanation)",
    )


def _demo_place_advisor(seed: int) -> SystemDemo:
    dataset, catalog = make_restaurants(n_items=60, seed=seed + 32)
    recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
    elicitor = RequirementElicitor(catalog)
    elicitor.require("cuisine", "==", "thai")
    elicitor.limit("price_level", maximum=2)
    requirements = elicitor.build()
    ranked = recommender.rank(requirements, n=1)
    best = ranked[0][0] if ranked else None
    page = f"Recommended restaurant: {best.title}" if best else "(none)"
    explanation = (
        f"{best.title} serves thai at price level "
        f"{best.attributes['price_level']:.0f} — it satisfies everything "
        f"you asked for." if best else "-"
    )
    interaction = (
        "slot-filling dialog: cuisine=thai; price_level<=2 "
        "(see examples/restaurant_dialog.py for the full exchange)"
    )
    return SystemDemo(
        REGISTRY.by_name("ADAPTIVE PLACE ADVISOR"),
        page,
        explanation,
        interaction,
    )


def _demo_acorn(seed: int) -> SystemDemo:
    world = make_movies(n_users=30, n_items=80, seed=seed + 8)
    dataset = world.dataset
    recommender = UserBasedCF().fit(dataset)
    user_id = next(iter(dataset.users))
    recommendations = recommender.recommend(user_id, n=12)
    by_genre: dict[str, list[str]] = {}
    for recommendation in recommendations:
        item = dataset.item(recommendation.item_id)
        genre = item.topics[0] if item.topics else "other"
        by_genre.setdefault(genre, []).append(item.title)
    counts = Counter({genre: len(titles) for genre, titles in
                      by_genre.items()})
    lines = ["Structured overview of tonight's options:"]
    for genre, __ in counts.most_common():
        titles = by_genre[genre][:2]
        lines.append(f"  [{genre}] " + "; ".join(titles))
    page = "\n".join(lines)
    explainer = PreferenceBasedExplainer()
    explanation = explainer.explain(
        user_id, recommendations[0], dataset
    ).text
    interaction = (
        'dialog: "I feel like watching a thriller" -> system narrows the '
        "overview (see interaction.dialog.MovieDialog)"
    )
    return SystemDemo(
        REGISTRY.by_name("ACORN"), page, explanation, interaction
    )


_DEMOS = {
    "Amazon": _demo_amazon,
    "Findory": _demo_findory,
    "LibraryThing": _demo_librarything,
    "LoveFilm": _demo_lovefilm,
    "OkCupid": _demo_okcupid,
    "Pandora": _demo_pandora,
    "StumbleUpon": _demo_stumbleupon,
    "Qwikshop": _demo_qwikshop,
    "LIBRA": _demo_libra,
    "News Dude": _demo_news_dude,
    "MYCIN": _demo_mycin,
    "MovieLens": _demo_movielens,
    "SASY": _demo_sasy,
    "Sim": _demo_sim,
    "Top Case": _demo_top_case,
    "Organizational Structure": _demo_organizational_structure,
    "ADAPTIVE PLACE ADVISOR": _demo_place_advisor,
    "ACORN": _demo_acorn,
}


def demo(system_name: str, seed: int = 0) -> SystemDemo:
    """Build the live demo for one Table 3/4 system by name."""
    try:
        builder = _DEMOS[system_name]
    except KeyError:
        raise KeyError(
            f"no demo for {system_name!r}; available: "
            f"{', '.join(sorted(_DEMOS))}"
        ) from None
    return builder(seed)


def demo_all(seed: int = 0) -> list[SystemDemo]:
    """Build every Table 3/4 demo (commercial rows first)."""
    order = [s.name for s in REGISTRY.commercial()] + [
        s.name for s in REGISTRY.academic()
    ]
    return [demo(name, seed) for name in order]
