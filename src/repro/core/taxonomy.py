"""Presentation and interaction taxonomies (paper Sections 4 and 5).

Shared vocabulary: the survey registry classifies systems with these
enums, every presenter in :mod:`repro.presentation` declares its
:class:`PresentationMode`, and every feedback channel in
:mod:`repro.interaction` declares its :class:`InteractionMode`.
"""

from __future__ import annotations

import enum

__all__ = ["PresentationMode", "InteractionMode"]


class PresentationMode(enum.Enum):
    """Ways of presenting recommendations (paper Section 4)."""

    TOP_ITEM = "top item"
    TOP_N = "top-N"
    SIMILAR_TO_TOP = "similar to top item(s)"
    PREDICTED_RATINGS = "predicted ratings"
    STRUCTURED_OVERVIEW = "structured overview"

    @property
    def paper_section(self) -> str:
        """The paper section that introduces this mode."""
        return {
            PresentationMode.TOP_ITEM: "4.1",
            PresentationMode.TOP_N: "4.2",
            PresentationMode.SIMILAR_TO_TOP: "4.3",
            PresentationMode.PREDICTED_RATINGS: "4.4",
            PresentationMode.STRUCTURED_OVERVIEW: "4.5",
        }[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class InteractionMode(enum.Enum):
    """Ways users give feedback to the recommender (paper Section 5)."""

    SPECIFY_REQUIREMENTS = "specify requirements"
    ALTERATION = "alteration"
    RATING = "rating"
    IMPLICIT_RATING = "(implicit) rating"
    OPINION = "opinion"
    VARIED = "(varied)"
    NONE = "(none)"

    @property
    def paper_section(self) -> str:
        """The paper section that introduces this mode."""
        return {
            InteractionMode.SPECIFY_REQUIREMENTS: "5.1",
            InteractionMode.ALTERATION: "5.2",
            InteractionMode.RATING: "5.3",
            InteractionMode.IMPLICIT_RATING: "5.3",
            InteractionMode.OPINION: "5.4",
            InteractionMode.VARIED: "5",
            InteractionMode.NONE: "5",
        }[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
