"""The seven aims of explanation facilities (paper Table 1, Sections 2–3).

The paper's central framework is a taxonomy of seven goals an explanation
facility can pursue, each tied to established usability principles and to
concrete measures (Section 3).  This module makes the taxonomy first
class: every :class:`~repro.core.explanation.Explanation` declares which
aims it serves, every evaluator in :mod:`repro.evaluation.criteria`
measures exactly one aim, and the Section 3.8 trade-off observations are
encoded in :data:`TRADEOFFS`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Aim", "AimInfo", "AIM_INFO", "Tradeoff", "TRADEOFFS", "table_1_rows"]


class Aim(enum.Enum):
    """The seven possible aims of an explanation facility (Table 1)."""

    TRANSPARENCY = "transparency"
    SCRUTABILITY = "scrutability"
    TRUST = "trust"
    EFFECTIVENESS = "effectiveness"
    PERSUASIVENESS = "persuasiveness"
    EFFICIENCY = "efficiency"
    SATISFACTION = "satisfaction"

    @property
    def info(self) -> "AimInfo":
        """Definition, abbreviation and measurement notes for this aim."""
        return AIM_INFO[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AimInfo:
    """Metadata for one aim: Table 1 definition plus Section 3 measures."""

    aim: "Aim"
    abbreviation: str
    definition: str
    usability_principle: str
    measures: tuple[str, ...]
    paper_section: str


AIM_INFO: dict[Aim, AimInfo] = {
    Aim.TRANSPARENCY: AimInfo(
        aim=Aim.TRANSPARENCY,
        abbreviation="Tra.",
        definition="Explain how the system works",
        usability_principle="Visibility of System Status (Nielsen & Molich)",
        measures=(
            "user understanding of how personalization works "
            "(questionnaire)",
            "correctness and time on a 'teach the system a preference' task",
        ),
        paper_section="2.1 / 3.1",
    ),
    Aim.SCRUTABILITY: AimInfo(
        aim=Aim.SCRUTABILITY,
        abbreviation="Scr.",
        definition="Allow users to tell the system it is wrong",
        usability_principle="User Control (Nielsen & Molich)",
        measures=(
            "correctness and time on a scrutinization task "
            "(e.g. stop Disney recommendations)",
            "questionnaire on perceived control over the profile",
        ),
        paper_section="2.2 / 3.2",
    ),
    Aim.TRUST: AimInfo(
        aim=Aim.TRUST,
        abbreviation="Trust",
        definition="Increase users' confidence in the system",
        usability_principle="(credibility; design look is a confound)",
        measures=(
            "trust questionnaires (e.g. Ohanian five-dimension scale)",
            "loyalty: number of logins and interactions",
            "increase in sales",
        ),
        paper_section="2.3 / 3.3",
    ),
    Aim.EFFECTIVENESS: AimInfo(
        aim=Aim.EFFECTIVENESS,
        abbreviation="Efk.",
        definition="Help users make good decisions",
        usability_principle="(decision support)",
        measures=(
            "rating before vs. after consumption (Bilgic & Mooney)",
            "with/without-explanation comparison of post-choice happiness",
            "precision and recall for easily-consumed items",
        ),
        paper_section="2.5 / 3.5",
    ),
    Aim.PERSUASIVENESS: AimInfo(
        aim=Aim.PERSUASIVENESS,
        abbreviation="Pers.",
        definition="Convince users to try or buy",
        usability_principle="(system benefit, not user benefit)",
        measures=(
            "difference in likelihood of selecting an item",
            "rating shift after seeing an explanation (re-rating design)",
            "try/buy rate vs. a no-explanation baseline; average sales",
        ),
        paper_section="2.4 / 3.4",
    ),
    Aim.EFFICIENCY: AimInfo(
        aim=Aim.EFFICIENCY,
        abbreviation="Efc.",
        definition="Help users make decisions faster",
        usability_principle="Efficiency of use (Nielsen & Molich)",
        measures=(
            "completion time to locate a satisfactory item",
            "number of interaction cycles in conversational sessions",
            "number of inspected explanations / repair-action activations",
        ),
        paper_section="2.6 / 3.6",
    ),
    Aim.SATISFACTION: AimInfo(
        aim=Aim.SATISFACTION,
        abbreviation="Sat.",
        definition="Increase the ease of usability or enjoyment",
        usability_principle="(user appreciation; process vs. product)",
        measures=(
            "direct preference for the system with vs. without explanations",
            "loyalty (see trust)",
            "walk-through tallies: positive/negative comments, frustration "
            "and delight counts, workarounds",
        ),
        paper_section="2.7 / 3.7",
    ),
}
"""Table 1 with its Section 3 measurement notes attached."""


@dataclass(frozen=True)
class Tradeoff:
    """One Section 3.8 trade-off between two aims."""

    favoured: Aim
    impaired: Aim
    mechanism: str


TRADEOFFS: tuple[Tradeoff, ...] = (
    Tradeoff(
        favoured=Aim.TRANSPARENCY,
        impaired=Aim.EFFICIENCY,
        mechanism=(
            "detailed explanations take time to read, increasing overall "
            "search time"
        ),
    ),
    Tradeoff(
        favoured=Aim.PERSUASIVENESS,
        impaired=Aim.EFFECTIVENESS,
        mechanism=(
            "persuasive power can convince users to buy items they later "
            "do not like"
        ),
    ),
    Tradeoff(
        favoured=Aim.PERSUASIVENESS,
        impaired=Aim.TRUST,
        mechanism=(
            "too much persuasion backfires once users notice they bought "
            "items they do not want"
        ),
    ),
)
"""The trade-offs the paper calls out explicitly in Sections 2.4 and 3.8."""


def table_1_rows() -> list[tuple[str, str]]:
    """Table 1 as (aim with abbreviation, definition) rows, paper order."""
    order = (
        Aim.TRANSPARENCY,
        Aim.SCRUTABILITY,
        Aim.TRUST,
        Aim.EFFECTIVENESS,
        Aim.PERSUASIVENESS,
        Aim.EFFICIENCY,
        Aim.SATISFACTION,
    )
    rows = []
    for aim in order:
        info = AIM_INFO[aim]
        label = f"{aim.value.capitalize()} ({info.abbreviation})"
        rows.append((label, info.definition))
    return rows
