"""One explainer per explanation style the survey catalogues."""

from repro.core.explainers.base import (
    Explainer,
    GenericExplainer,
    NoExplanationExplainer,
)
from repro.core.explainers.collaborative import (
    CollaborativeExplainer,
    NeighborHistogramExplainer,
)
from repro.core.explainers.confidence import FrankExplainer
from repro.core.explainers.content import ContentBasedExplainer
from repro.core.explainers.influence import InfluenceExplainer
from repro.core.explainers.similarity_language import (
    PersonalizedSimilarityLanguage,
    SimilarityAwareCollaborativeExplainer,
)
from repro.core.explainers.preference import (
    PreferenceBasedExplainer,
    topic_history,
)
from repro.core.explainers.tradeoff import TradeoffExplainer

__all__ = [
    "Explainer",
    "NoExplanationExplainer",
    "GenericExplainer",
    "ContentBasedExplainer",
    "CollaborativeExplainer",
    "NeighborHistogramExplainer",
    "PreferenceBasedExplainer",
    "topic_history",
    "InfluenceExplainer",
    "TradeoffExplainer",
    "FrankExplainer",
    "PersonalizedSimilarityLanguage",
    "SimilarityAwareCollaborativeExplainer",
]
