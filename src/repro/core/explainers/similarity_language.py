"""User-adapted similarity language (paper Section 6, future work #1).

"One direction is to define similarity measures which are easily
understood by users, and investigate how these measures can be adapted
to each user.  A system that can explain to the user in their own terms
why items are recommended is likely to increase user trust, as well as
system transparency and scrutability."

Two pieces:

* :class:`PersonalizedSimilarityLanguage` — calibrates similarity
  phrases *per user*: "one of your closest taste matches" means the top
  decile of that user's own neighbourhood, not a global threshold; and
  grounds the phrase in countable evidence ("you rated 12 of the same
  movies, agreeing on 9").
* :class:`SimilarityAwareCollaborativeExplainer` — a collaborative
  explainer that embeds the personalised language for the strongest
  neighbour.
"""

from __future__ import annotations

import numpy as np

from repro.core.aims import Aim
from repro.core.explainers.collaborative import CollaborativeExplainer
from repro.core.explanation import Explanation
from repro.recsys.base import NeighborRatingsEvidence, Recommendation
from repro.recsys.data import Dataset

__all__ = [
    "PersonalizedSimilarityLanguage",
    "SimilarityAwareCollaborativeExplainer",
]


class PersonalizedSimilarityLanguage:
    """Similarity phrases calibrated to each user's own neighbourhood.

    Parameters
    ----------
    agreement_tolerance:
        Two ratings of the same item count as agreement when they differ
        by at most this much.
    """

    def __init__(self, dataset: Dataset, agreement_tolerance: float = 1.0) -> None:
        self.dataset = dataset
        self.agreement_tolerance = agreement_tolerance
        self._calibration: dict[str, tuple[float, float]] = {}

    def calibrate(self, user_id: str, similarities: list[float]) -> None:
        """Record the similarity distribution of one user's neighbourhood.

        Stores the 60th and 90th percentile so phrases rank neighbours
        relative to *this* user's pool.
        """
        if not similarities:
            self._calibration[user_id] = (0.3, 0.6)
            return
        values = np.asarray(similarities, dtype=float)
        self._calibration[user_id] = (
            float(np.quantile(values, 0.6)),
            float(np.quantile(values, 0.9)),
        )

    def describe(self, user_id: str, similarity: float) -> str:
        """A relative phrase for one neighbour's similarity.

        Falls back to sensible absolute thresholds when the user was
        never calibrated.
        """
        mid, high = self._calibration.get(user_id, (0.3, 0.6))
        if similarity >= high:
            return "one of your closest taste matches"
        if similarity >= mid:
            return "a better-than-average taste match for you"
        return "a mild taste match for you"

    def agreement_summary(self, user_id: str, neighbor_id: str) -> str:
        """Countable common ground: shared items, agreements, topics.

        This is "the user's own terms": numbers of co-rated items and
        the topics driving agreement, instead of a correlation
        coefficient.
        """
        mine = self.dataset.ratings_by(user_id)
        theirs = self.dataset.ratings_by(neighbor_id)
        common = [item_id for item_id in mine if item_id in theirs]
        if not common:
            return "You have not rated any of the same items yet."
        agreements = []
        disagreements = []
        for item_id in common:
            delta = abs(mine[item_id].value - theirs[item_id].value)
            if delta <= self.agreement_tolerance:
                agreements.append(item_id)
            else:
                disagreements.append(item_id)
        sentence = (
            f"You rated {len(common)} of the same items, agreeing on "
            f"{len(agreements)}"
        )
        agreeing_topic = self._dominant_topic(agreements)
        if agreeing_topic is not None:
            sentence += f" (mostly {agreeing_topic})"
        disagreeing_topic = self._dominant_topic(disagreements)
        if disagreeing_topic is not None and disagreements:
            sentence += f"; you mainly disagree about {disagreeing_topic}"
        return sentence + "."

    def _dominant_topic(self, item_ids: list[str]) -> str | None:
        counts: dict[str, int] = {}
        for item_id in item_ids:
            item = self.dataset.items.get(item_id)
            if item is None or not item.topics:
                continue
            topic = item.topics[0].split("/")[-1]
            counts[topic] = counts.get(topic, 0) + 1
        if not counts:
            return None
        topic, count = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        if count < 2:
            return None
        return topic


class SimilarityAwareCollaborativeExplainer(CollaborativeExplainer):
    """Collaborative explanation phrased in the user's own terms.

    Extends the plain collaborative explainer with (a) a per-user
    calibrated phrase for the strongest neighbour and (b) the countable
    agreement summary — the paper's future-work recipe for raising
    trust, transparency and scrutability at once.
    """

    default_aims = CollaborativeExplainer.default_aims | frozenset(
        {Aim.TRUST, Aim.SCRUTABILITY}
    )

    def __init__(self, language: PersonalizedSimilarityLanguage) -> None:
        self.language = language

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """Base collaborative text plus personalised similarity language."""
        explanation = super().explain(user_id, recommendation, dataset)
        evidence = recommendation.prediction.find_evidence("neighbor_ratings")
        if not isinstance(evidence, NeighborRatingsEvidence):
            return explanation
        neighbors = sorted(
            evidence.neighbors, key=lambda n: -n.similarity
        )
        if not neighbors:
            return explanation
        self.language.calibrate(
            user_id, [neighbor.similarity for neighbor in neighbors]
        )
        strongest = neighbors[0]
        phrase = self.language.describe(user_id, strongest.similarity)
        summary = self.language.agreement_summary(
            user_id, strongest.user_id
        )
        suffix = (
            f"The strongest voice here is {phrase} "
            f"({strongest.user_id}). {summary}"
        )
        extended = explanation.with_suffix(suffix)
        return Explanation(
            item_id=extended.item_id,
            style=extended.style,
            text=extended.text,
            evidence=extended.evidence,
            confidence=extended.confidence,
            aims=extended.aims | {Aim.TRUST, Aim.SCRUTABILITY},
            details=dict(extended.details),
        )
