"""Explainer protocol.

An explainer turns one :class:`~repro.recsys.base.Recommendation` (with
its evidence) into one :class:`~repro.core.explanation.Explanation`.
Explainers never invent reasons: they only verbalise the evidence the
recommender attached, keeping explanation and recommendation process
coupled as the paper requires (Section 4).
"""

from __future__ import annotations

import abc

from repro.core.aims import Aim
from repro.core.explanation import Explanation
from repro.core.styles import ExplanationStyle
from repro.recsys.base import EvidenceItem, NoEvidence, Recommendation
from repro.recsys.data import Dataset

__all__ = ["Explainer", "NoExplanationExplainer", "GenericExplainer"]


class Explainer(abc.ABC):
    """Base class for all explainers.

    Subclasses set :attr:`style` and :attr:`default_aims` and implement
    :meth:`explain`.
    """

    style: ExplanationStyle = ExplanationStyle.NONE
    default_aims: frozenset[Aim] = frozenset()

    @abc.abstractmethod
    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """Produce an explanation for one recommendation."""

    def evidence_items(
        self, explanation: Explanation
    ) -> tuple[EvidenceItem, ...]:
        """The support atoms this explainer actually *cites*.

        The structured counterpart of the rendered text: quality metrics
        ask the explainer (not the raw prediction) what was cited, so an
        explainer that verbalises only its top-k evidence is measured on
        those k items.  The default cites every structured atom the
        explanation carries; subclasses that narrow their citation
        override this to the same subset their template names.
        """
        return explanation.evidence_items()

    def _title(self, dataset: Dataset, item_id: str) -> str:
        """The display title for an item (falls back to the id)."""
        item = dataset.items.get(item_id)
        return item.title if item is not None else item_id


class NoExplanationExplainer(Explainer):
    """The control condition: an empty explanation.

    Every study in :mod:`repro.evaluation.studies` that compares
    "with explanation" against "without" uses this as the baseline arm
    (the paper notes such a baseline is required to control for
    intra-user differences, Section 3.4).
    """

    style = ExplanationStyle.NONE
    default_aims: frozenset[Aim] = frozenset()

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """An explanation with empty text and no evidence."""
        return Explanation(
            item_id=recommendation.item_id,
            style=self.style,
            text="",
            confidence=recommendation.confidence,
            aims=self.default_aims,
        )


class GenericExplainer(Explainer):
    """The graceful-degradation terminus: a generic template explanation.

    When a real explainer cannot justify a score (its evidence is
    missing, its substrate crashed, a chaos wrapper fired), the pipeline
    falls back to this template rather than aborting the batch — the
    explanation facility stays available even when the model cannot
    justify the score.  It consumes no evidence and never raises.
    """

    style = ExplanationStyle.NONE
    default_aims: frozenset[Aim] = frozenset()

    TEMPLATE = "{title} was recommended for you."

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """A generic, evidence-free explanation that always succeeds.

        The attached :class:`~repro.recsys.base.NoEvidence` marker makes
        the absence explicit: quality metrics *exclude* this explanation
        from fidelity/coverage instead of scoring it as a zero.
        """
        try:
            title = self._title(dataset, recommendation.item_id)
        except Exception:
            title = recommendation.item_id
        return Explanation(
            item_id=recommendation.item_id,
            style=self.style,
            text=self.TEMPLATE.format(title=title),
            evidence=(NoEvidence(reason="degraded"),),
            confidence=recommendation.confidence,
            aims=self.default_aims,
            details={"degraded": "generic template fallback"},
        )

    def evidence_items(
        self, explanation: Explanation
    ) -> tuple[EvidenceItem, ...]:
        """Nothing is cited: the degraded template invents no support."""
        return ()
