"""Content-based explanations: "We have recommended X because you liked Y".

Verbalises :class:`~repro.recsys.base.SimilarItemEvidence` (which liked
items are similar to the recommendation) and
:class:`~repro.recsys.base.KeywordEvidence` (which shared themes carried
the match) — the Amazon-style explanation of Table 3 and the
"Oliver Twist" example of Section 4.3.
"""

from __future__ import annotations

from repro.core.aims import Aim
from repro.core.explanation import Explanation
from repro.core.explainers.base import Explainer
from repro.core.styles import ExplanationStyle
from repro.core.templates import because_you_liked, join_phrases, might_also_like
from repro.recsys.base import (
    EvidenceItem,
    KeywordEvidence,
    Recommendation,
    SimilarItemEvidence,
)
from repro.recsys.data import Dataset

__all__ = ["ContentBasedExplainer"]


class ContentBasedExplainer(Explainer):
    """Explain via the user's own liked items and shared keywords.

    Parameters
    ----------
    max_liked_items:
        How many liked items to name in the sentence.
    max_keywords:
        How many shared themes to name; 0 omits the theme clause.
    """

    style = ExplanationStyle.CONTENT_BASED
    default_aims = frozenset(
        {Aim.TRANSPARENCY, Aim.EFFECTIVENESS, Aim.PERSUASIVENESS}
    )

    def __init__(self, max_liked_items: int = 2, max_keywords: int = 3) -> None:
        self.max_liked_items = max_liked_items
        self.max_keywords = max_keywords

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """Build "because you liked Y (shared themes: ...)" text."""
        title = self._title(dataset, recommendation.item_id)
        similar = [
            record
            for record in recommendation.prediction.evidence
            if isinstance(record, SimilarItemEvidence)
        ]
        similar.sort(key=lambda record: -record.similarity)
        cited = similar[: self.max_liked_items]

        if cited:
            liked_titles = [
                self._title(dataset, record.item_id) for record in cited
            ]
            text = because_you_liked(title, liked_titles)
        else:
            text = might_also_like(title)

        keyword_clause = self._keyword_clause(recommendation)
        if keyword_clause:
            text = f"{text} {keyword_clause}"

        return Explanation(
            item_id=recommendation.item_id,
            style=self.style,
            text=text,
            evidence=recommendation.prediction.evidence,
            confidence=recommendation.confidence,
            aims=self.default_aims,
        )

    def evidence_items(
        self, explanation: Explanation
    ) -> tuple[EvidenceItem, ...]:
        """Only what the sentence names: top liked items, top themes.

        Mirrors :meth:`explain`: the ``max_liked_items`` most similar
        liked items and the ``max_keywords`` strongest positive shared
        themes — not every record the prediction carried.
        """
        items = [
            entry
            for record in explanation.evidence
            if isinstance(record, SimilarItemEvidence)
            for entry in record.support_items()
        ]
        items.sort(key=lambda entry: (-entry.weight, entry.ref))
        cited = items[: self.max_liked_items]
        if self.max_keywords > 0:
            keywords = [
                entry
                for record in explanation.evidence
                if isinstance(record, KeywordEvidence)
                for entry in record.support_items()
                if entry.weight > 0.0
            ]
            keywords.sort(key=lambda entry: (-entry.weight, entry.ref))
            cited.extend(keywords[: self.max_keywords])
        return tuple(cited)

    def _keyword_clause(self, recommendation: Recommendation) -> str:
        if self.max_keywords <= 0:
            return ""
        keyword_evidence = recommendation.prediction.find_evidence("keywords")
        if not isinstance(keyword_evidence, KeywordEvidence):
            return ""
        top = [
            influence.keyword
            for influence in keyword_evidence.top(self.max_keywords)
            if influence.weight > 0.0
        ]
        if not top:
            return ""
        return f"(Shared themes: {join_phrases(top)}.)"
