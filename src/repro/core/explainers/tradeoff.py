"""Trade-off explanations: "Less Memory and Lower Resolution and Cheaper".

Qwikshop-style explanatory feedback (paper refs [20], Sections 2.6 and
5.2) describes a candidate relative to a reference item as a conjunction
of comparative phrases.  Positive deltas (those that *improve* the
candidate under the user's preferences) lead the sentence — McCarthy et
al.'s "Thinking positively" ordering.
"""

from __future__ import annotations

from repro.core.aims import Aim
from repro.core.explanation import Explanation
from repro.core.explainers.base import Explainer
from repro.core.styles import ExplanationStyle
from repro.core.templates import tradeoff_sentence
from repro.recsys.base import Recommendation
from repro.recsys.data import Dataset, Item
from repro.recsys.knowledge import (
    Catalog,
    TradeoffDelta,
    UserRequirements,
    compare_items,
)

__all__ = ["TradeoffExplainer"]


class TradeoffExplainer(Explainer):
    """Explain a candidate as trade-offs against a reference item.

    The reference is typically the current top recommendation; the
    structured-overview presenter calls :meth:`explain_versus` for each
    alternative category.  The standard :meth:`explain` entry point uses
    the reference registered via :attr:`reference_item_id`.
    """

    style = ExplanationStyle.PREFERENCE_BASED
    default_aims = frozenset(
        {Aim.EFFICIENCY, Aim.EFFECTIVENESS, Aim.TRANSPARENCY}
    )

    def __init__(
        self,
        catalog: Catalog,
        requirements: UserRequirements | None = None,
        reference_item_id: str | None = None,
    ) -> None:
        self.catalog = catalog
        self.requirements = requirements
        self.reference_item_id = reference_item_id

    def deltas(
        self, candidate: Item, reference: Item
    ) -> list[TradeoffDelta]:
        """Typed per-attribute deltas, positives (improvements) first."""
        deltas = compare_items(
            self.catalog, candidate, reference, self.requirements
        )
        deltas.sort(
            key=lambda delta: (
                0 if delta.improves else (1 if delta.improves is None else 2),
                delta.attribute,
            )
        )
        return deltas

    def explain_versus(
        self, candidate: Item, reference: Item
    ) -> Explanation:
        """Trade-off sentence for one candidate against one reference."""
        deltas = self.deltas(candidate, reference)
        pros = [delta.phrase for delta in deltas if delta.improves]
        cons = [delta.phrase for delta in deltas if delta.improves is False]
        neutral = [delta.phrase for delta in deltas if delta.improves is None]
        text = tradeoff_sentence(
            pros + neutral, cons, subject=f"Compared to {reference.title}, this is"
        )
        return Explanation(
            item_id=candidate.item_id,
            style=self.style,
            text=text,
            aims=self.default_aims,
        )

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """Explain against the registered reference item.

        Falls back to a bare preference sentence when no reference is
        registered or the candidate *is* the reference.
        """
        candidate = dataset.item(recommendation.item_id)
        if (
            self.reference_item_id is None
            or self.reference_item_id == candidate.item_id
            or self.reference_item_id not in dataset.items
        ):
            return Explanation(
                item_id=candidate.item_id,
                style=self.style,
                text=(
                    f"{candidate.title} is the best match for your "
                    f"requirements."
                ),
                evidence=recommendation.prediction.evidence,
                confidence=recommendation.confidence,
                aims=self.default_aims,
            )
        reference = dataset.item(self.reference_item_id)
        explanation = self.explain_versus(candidate, reference)
        return Explanation(
            item_id=explanation.item_id,
            style=explanation.style,
            text=explanation.text,
            evidence=recommendation.prediction.evidence,
            confidence=recommendation.confidence,
            aims=explanation.aims,
        )
