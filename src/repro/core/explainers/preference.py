"""Preference-based explanations: "Your interests suggest ...".

Three evidence sources, tried in order:

1. :class:`~repro.recsys.base.UtilityEvidence` (knowledge-based
   recommenders) — name the best-satisfied weighted preferences;
2. :class:`~repro.recsys.base.ProfileAttributeEvidence` (scrutable
   profiles) — name the driving profile attributes and their provenance;
3. the user's own rating history — summarise dominant topics, producing
   the paper's football/world-cup sentence (Section 4.1) or, for a *low*
   prediction on a disliked topic, the hockey sentence of Section 4.4.
"""

from __future__ import annotations

from collections import Counter

from repro.core.aims import Aim
from repro.core.explanation import Explanation
from repro.core.explainers.base import Explainer
from repro.core.styles import ExplanationStyle
from repro.core.templates import (
    interests_suggest,
    join_phrases,
    negative_topic_sentence,
    top_item_sentence,
    viewing_history_sentence,
)
from repro.recsys.base import (
    EvidenceItem,
    PopularityEvidence,
    ProfileAttributeEvidence,
    Recommendation,
    UtilityEvidence,
)
from repro.recsys.data import Dataset

__all__ = ["PreferenceBasedExplainer", "topic_history"]


def topic_history(
    dataset: Dataset, user_id: str
) -> tuple[Counter, Counter]:
    """(liked, disliked) topic counters from the user's rating history."""
    liked: Counter = Counter()
    disliked: Counter = Counter()
    scale = dataset.scale
    for item_id, rating in dataset.ratings_by(user_id).items():
        item = dataset.items.get(item_id)
        if item is None:
            continue
        target = liked if scale.is_positive(rating.value) else disliked
        for topic in item.topics:
            target[topic] += 1
    return liked, disliked


class PreferenceBasedExplainer(Explainer):
    """Explain from requirements, profile attributes or topic history."""

    style = ExplanationStyle.PREFERENCE_BASED
    default_aims = frozenset(
        {Aim.TRANSPARENCY, Aim.SCRUTABILITY, Aim.EFFECTIVENESS}
    )

    def __init__(self, max_attributes: int = 3) -> None:
        self.max_attributes = max_attributes

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """Choose the richest available preference evidence and verbalise it."""
        prediction = recommendation.prediction
        title = self._title(dataset, recommendation.item_id)

        utility = prediction.find_evidence("utility")
        if isinstance(utility, UtilityEvidence) and utility.scores:
            text = self._from_utility(title, utility)
        else:
            profile_records = [
                record
                for record in prediction.evidence
                if isinstance(record, ProfileAttributeEvidence)
            ]
            if profile_records:
                text = self._from_profile(title, profile_records)
            else:
                text = self._from_history(
                    user_id, recommendation, dataset, title
                )

        return Explanation(
            item_id=recommendation.item_id,
            style=self.style,
            text=text,
            evidence=prediction.evidence,
            confidence=recommendation.confidence,
            aims=self.default_aims,
        )

    def evidence_items(
        self, explanation: Explanation
    ) -> tuple[EvidenceItem, ...]:
        """The ``max_attributes`` strongest cited preference attributes."""
        cited = [
            entry
            for record in explanation.evidence
            if isinstance(
                record, (UtilityEvidence, ProfileAttributeEvidence)
            )
            for entry in record.support_items()
        ]
        if not cited:
            return explanation.evidence_items()
        cited.sort(key=lambda entry: (-entry.weight, entry.ref))
        return tuple(cited[: self.max_attributes])

    # -- evidence-specific renderings --------------------------------------

    def _from_utility(self, title: str, utility: UtilityEvidence) -> str:
        ranked = sorted(
            utility.scores, key=lambda score: -score.weighted_score
        )
        best = [
            f"{score.name} ({score.value})"
            for score in ranked[: self.max_attributes]
            if score.score > 0.0
        ]
        if not best:
            return interests_suggest(title)
        return (
            f"{interests_suggest(title)} It best satisfies your "
            f"most important criteria: {join_phrases(best)}."
        )

    def _from_profile(
        self, title: str, records: list[ProfileAttributeEvidence]
    ) -> str:
        ranked = sorted(records, key=lambda record: -record.weight)
        clauses = []
        for record in ranked[: self.max_attributes]:
            origin = (
                "you told us" if record.provenance == "volunteered"
                else "we inferred"
            )
            clauses.append(f"{record.attribute} = {record.value} ({origin})")
        return (
            f"{interests_suggest(title)} This matches your profile: "
            f"{join_phrases(clauses)}."
        )

    def _from_history(
        self,
        user_id: str,
        recommendation: Recommendation,
        dataset: Dataset,
        title: str,
    ) -> str:
        liked, disliked = topic_history(dataset, user_id)
        item = dataset.items.get(recommendation.item_id)
        item_topics = item.topics if item is not None else ()
        scale = dataset.scale

        # Low prediction on a topic the user dislikes: the hockey case.
        if not scale.is_positive(recommendation.score):
            for topic in item_topics:
                if disliked.get(topic, 0) > liked.get(topic, 0):
                    general = topic.split("/")[0]
                    specific = topic.split("/")[-1]
                    return negative_topic_sentence(general, specific)

        # Otherwise: the football/world-cup case.
        matching = [topic for topic in item_topics if liked.get(topic, 0) > 0]
        if matching:
            specific = matching[0].split("/")[-1]
            general = matching[0].split("/")[0]
            sentences = [viewing_history_sentence(general, specific)]
            popularity = recommendation.prediction.find_evidence("popularity")
            if isinstance(popularity, PopularityEvidence):
                sentences.append(top_item_sentence(f"the latest {specific}"))
            else:
                sentences.append(interests_suggest(title))
            return " ".join(sentences)
        return interests_suggest(title)
