"""Frank confidence disclosure (paper Sections 2.3 and 4.6).

"A user may also appreciate when a system is 'frank' and admits that it
is not confident about a particular recommendation."  This decorator
wraps any explainer and appends an honest confidence statement — the
opposite of the *bold* personality, which inflates strength and hides
confidence (see :mod:`repro.presentation.personality`).
"""

from __future__ import annotations

from repro.core.aims import Aim
from repro.core.explanation import Explanation
from repro.core.explainers.base import Explainer
from repro.core.templates import confidence_disclosure
from repro.recsys.base import Recommendation
from repro.recsys.data import Dataset

__all__ = ["FrankExplainer"]


class FrankExplainer(Explainer):
    """Decorator appending a confidence disclosure to another explainer.

    Parameters
    ----------
    inner:
        The explainer whose text gets the disclosure appended.
    always:
        When ``False`` (default) the disclosure only appears for
        low-confidence recommendations (below ``threshold``), which is
        when frankness matters; ``True`` discloses always.
    threshold:
        Confidence below which disclosure is added in ``always=False``
        mode.
    """

    def __init__(
        self,
        inner: Explainer,
        always: bool = False,
        threshold: float = 0.5,
    ) -> None:
        self.inner = inner
        self.always = always
        self.threshold = threshold
        self.style = inner.style
        self.default_aims = inner.default_aims | {Aim.TRUST, Aim.TRANSPARENCY}

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """Delegate to the inner explainer, then disclose confidence."""
        explanation = self.inner.explain(user_id, recommendation, dataset)
        explanation = Explanation(
            item_id=explanation.item_id,
            style=explanation.style,
            text=explanation.text,
            evidence=explanation.evidence,
            confidence=explanation.confidence,
            aims=explanation.aims | {Aim.TRUST, Aim.TRANSPARENCY},
            details=dict(explanation.details),
        )
        if self.always or explanation.confidence < self.threshold:
            return explanation.with_suffix(
                confidence_disclosure(explanation.confidence)
            )
        return explanation
