"""Influence explanations: the LIBRA influence table (paper Figure 3).

Bilgic & Mooney's LIBRA showed "the influence (in percentage) their
previous ratings had on a given recommendation" (Section 5.3).  This
explainer verbalises :class:`~repro.recsys.base.InfluenceEvidence` and
renders the full influence table as a detail block.
"""

from __future__ import annotations

from repro.core.aims import Aim
from repro.core.explanation import Explanation
from repro.core.explainers.base import Explainer
from repro.core.styles import ExplanationStyle
from repro.recsys.base import EvidenceItem, InfluenceEvidence, Recommendation
from repro.recsys.data import Dataset
from repro.render import table

__all__ = ["InfluenceExplainer"]


class InfluenceExplainer(Explainer):
    """Per-past-rating influence attribution explanation.

    Classified content-based in the paper's Table 4 (LIBRA row): the
    influences derive from content features of the user's own rated
    items.
    """

    style = ExplanationStyle.CONTENT_BASED
    default_aims = frozenset(
        {Aim.TRANSPARENCY, Aim.EFFECTIVENESS, Aim.SCRUTABILITY}
    )

    def __init__(self, max_rows: int = 8) -> None:
        self.max_rows = max_rows

    def evidence_items(
        self, explanation: Explanation
    ) -> tuple[EvidenceItem, ...]:
        """The rows the influence table shows: top ``max_rows`` ratings."""
        cited = [
            entry
            for record in explanation.evidence
            if isinstance(record, InfluenceEvidence)
            for entry in record.support_items()
        ]
        cited.sort(key=lambda entry: (-abs(entry.weight), entry.ref))
        return tuple(cited[: self.max_rows])

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """Name the most influential past rating; attach the full table."""
        title = self._title(dataset, recommendation.item_id)
        evidence = recommendation.prediction.find_evidence("rating_influence")
        if not isinstance(evidence, InfluenceEvidence) or not evidence.influences:
            text = (
                f"We recommended {title} based on your previous ratings."
            )
            return Explanation(
                item_id=recommendation.item_id,
                style=self.style,
                text=text,
                evidence=recommendation.prediction.evidence,
                confidence=recommendation.confidence,
                aims=self.default_aims,
            )

        percentages = evidence.percentages()
        strongest = evidence.top(1)[0]
        strongest_title = self._title(dataset, strongest.item_id)
        share = percentages[strongest.item_id]
        direction = "towards" if strongest.influence >= 0 else "against"
        text = (
            f"We recommended {title} based on your previous ratings; "
            f"your rating of {strongest_title} ({strongest.rating:g}) "
            f"influenced it most ({abs(share):.0f}%, {direction} the "
            f"recommendation)."
        )

        rows = []
        for influence in evidence.top(self.max_rows):
            rows.append(
                (
                    self._title(dataset, influence.item_id),
                    f"{influence.rating:g}",
                    f"{percentages[influence.item_id]:+.1f}%",
                )
            )
        details = {
            "influence_table": (
                "Influence of your ratings on this recommendation:\n"
                + table(("Your rated item", "Rating", "Influence"), rows)
            )
        }
        return Explanation(
            item_id=recommendation.item_id,
            style=self.style,
            text=text,
            evidence=recommendation.prediction.evidence,
            confidence=recommendation.confidence,
            aims=self.default_aims,
            details=details,
        )
