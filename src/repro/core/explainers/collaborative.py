"""Collaborative explanations: "People like you liked X".

Verbalises :class:`~repro.recsys.base.NeighborRatingsEvidence`.  Two
variants:

* :class:`CollaborativeExplainer` — the one-sentence summary;
* :class:`NeighborHistogramExplainer` — additionally renders the
  Herlocker et al. histogram of neighbour ratings with "good" and "bad"
  ratings clustered, the best-performing of the 21 interfaces in the
  study the paper describes in Section 3.4.
"""

from __future__ import annotations

from repro.core.aims import Aim
from repro.core.explanation import Explanation
from repro.core.explainers.base import Explainer
from repro.core.styles import ExplanationStyle
from repro.core.templates import people_like_you_liked
from repro.recsys.base import NeighborRatingsEvidence, Recommendation
from repro.recsys.data import Dataset
from repro.render import histogram_lines

__all__ = ["CollaborativeExplainer", "NeighborHistogramExplainer"]


class CollaborativeExplainer(Explainer):
    """One-sentence neighbour summary explanation."""

    style = ExplanationStyle.COLLABORATIVE_BASED
    default_aims = frozenset({Aim.PERSUASIVENESS, Aim.TRANSPARENCY})

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """Summarise how many similar users liked the item."""
        title = self._title(dataset, recommendation.item_id)
        evidence = recommendation.prediction.find_evidence("neighbor_ratings")
        if not isinstance(evidence, NeighborRatingsEvidence):
            text = people_like_you_liked(title)
            return Explanation(
                item_id=recommendation.item_id,
                style=self.style,
                text=text,
                evidence=recommendation.prediction.evidence,
                confidence=recommendation.confidence,
                aims=self.default_aims,
            )

        scale = dataset.scale
        total = len(evidence.neighbors)
        positive = sum(
            1
            for neighbor in evidence.neighbors
            if scale.is_positive(neighbor.rating)
        )
        text = (
            f"{people_like_you_liked(title)} {positive} of your {total} "
            f"most similar users rated it "
            f"{scale.like_threshold:g} or higher."
        )
        return Explanation(
            item_id=recommendation.item_id,
            style=self.style,
            text=text,
            evidence=recommendation.prediction.evidence,
            confidence=recommendation.confidence,
            aims=self.default_aims,
        )


class NeighborHistogramExplainer(CollaborativeExplainer):
    """Summary sentence plus the Herlocker rating histogram.

    The histogram clusters the "good" ratings together and the "bad"
    ratings together (the study's winning variant grouped 1–2 as bad,
    3 as neutral, 4–5 as good).
    """

    def __init__(self, clustered: bool = True) -> None:
        self.clustered = clustered

    def explain(
        self, user_id: str, recommendation: Recommendation, dataset: Dataset
    ) -> Explanation:
        """Attach a ``histogram`` detail block to the summary sentence."""
        explanation = super().explain(user_id, recommendation, dataset)
        evidence = recommendation.prediction.find_evidence("neighbor_ratings")
        if not isinstance(evidence, NeighborRatingsEvidence):
            return explanation
        scale = dataset.scale
        counts = evidence.histogram(
            scale_min=int(scale.minimum), scale_max=int(scale.maximum)
        )
        if self.clustered:
            rendered = self._clustered_histogram(counts, dataset)
        else:
            rendered = "\n".join(histogram_lines(counts))
        details = dict(explanation.details)
        details["histogram"] = (
            "Your neighbours' ratings of this item:\n" + rendered
        )
        return Explanation(
            item_id=explanation.item_id,
            style=explanation.style,
            text=explanation.text,
            evidence=explanation.evidence,
            confidence=explanation.confidence,
            aims=explanation.aims,
            details=details,
        )

    def _clustered_histogram(
        self, counts: dict[int, int], dataset: Dataset
    ) -> str:
        scale = dataset.scale
        clustered = {2: 0, 1: 0, 0: 0}  # good / neutral / bad
        for bucket, count in counts.items():
            if scale.is_positive(bucket):
                clustered[2] += count
            elif bucket <= scale.midpoint - 1:
                clustered[0] += count
            else:
                clustered[1] += count
        labels = {2: "good (4-5)", 1: "neutral (3)", 0: "bad (1-2)"}
        return "\n".join(histogram_lines(clustered, labels=labels))
