"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything the library raises with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DataError(ReproError):
    """Raised for malformed or inconsistent dataset contents."""


class UnknownUserError(DataError):
    """Raised when a user id is not present in the dataset."""

    def __init__(self, user_id: str) -> None:
        super().__init__(f"unknown user: {user_id!r}")
        self.user_id = user_id


class UnknownItemError(DataError):
    """Raised when an item id is not present in the dataset."""

    def __init__(self, item_id: str) -> None:
        super().__init__(f"unknown item: {item_id!r}")
        self.item_id = item_id


class NotFittedError(ReproError):
    """Raised when a recommender is used before :meth:`fit` was called."""


class PredictionImpossibleError(ReproError):
    """Raised when no prediction can be produced for a (user, item) pair.

    Collaborative recommenders raise this when a user has no usable
    neighbours; content-based recommenders when the user has no profile.
    Callers that want graceful degradation should catch this and fall back
    to a non-personalized baseline.
    """


class ConstraintError(ReproError):
    """Raised for contradictory or unsatisfiable user requirements."""


class DialogError(ReproError):
    """Raised for invalid conversational dialog transitions."""


class EvaluationError(ReproError):
    """Raised for misconfigured studies or evaluators."""


class ObservabilityError(ReproError):
    """Raised for misuse of the :mod:`repro.obs` instrumentation layer.

    Covers duplicate metric registration under a conflicting schema,
    writes to a closed event sink, and malformed metric names or label
    sets.  Instrumented application code never needs to catch this: a
    correctly wired registry/tracer raises only at configuration time,
    not per-event.
    """
