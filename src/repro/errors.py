"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything the library raises with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DataError(ReproError):
    """Raised for malformed or inconsistent dataset contents."""


class UnknownUserError(DataError):
    """Raised when a user id is not present in the dataset."""

    def __init__(self, user_id: str) -> None:
        super().__init__(f"unknown user: {user_id!r}")
        self.user_id = user_id


class UnknownItemError(DataError):
    """Raised when an item id is not present in the dataset."""

    def __init__(self, item_id: str) -> None:
        super().__init__(f"unknown item: {item_id!r}")
        self.item_id = item_id


class NotFittedError(ReproError):
    """Raised when a recommender is used before :meth:`fit` was called."""


class PredictionImpossibleError(ReproError):
    """Raised when no prediction can be produced for a (user, item) pair.

    Collaborative recommenders raise this when a user has no usable
    neighbours; content-based recommenders when the user has no profile.
    Callers that want graceful degradation should catch this and fall back
    to a non-personalized baseline.
    """


class ConstraintError(ReproError):
    """Raised for contradictory or unsatisfiable user requirements."""


class DialogError(ReproError):
    """Raised for invalid conversational dialog transitions."""


class EvaluationError(ReproError):
    """Raised for misconfigured studies or evaluators."""


class RetryExhaustedError(ReproError):
    """Raised when a :class:`~repro.resilience.Retry` policy gives up.

    Carries the operation name, the number of attempts made, and the
    final underlying error so callers (and fallback chains) can decide
    what to degrade to.
    """

    def __init__(
        self,
        operation: str,
        attempts: int,
        last_error: BaseException | None = None,
    ) -> None:
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"{operation} failed after {attempts} attempt(s){detail}"
        )
        self.operation = operation
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpenError(ReproError):
    """Raised when a circuit breaker rejects a call without trying it.

    ``open_until`` is the breaker's clock reading at which it will admit
    a half-open probe again; callers that cannot wait should fall back.
    """

    def __init__(self, breaker_name: str, open_until: float) -> None:
        super().__init__(
            f"circuit {breaker_name!r} is open "
            f"(half-open probe at t={open_until:.3f})"
        )
        self.breaker_name = breaker_name
        self.open_until = open_until


class DeadlineExceededError(ReproError):
    """Raised when an operation's wall-clock budget is spent.

    ``deadline_seconds`` is the configured budget, ``elapsed_seconds``
    how long the operation had actually been running when the deadline
    check fired.
    """

    def __init__(self, deadline_seconds: float, elapsed_seconds: float) -> None:
        super().__init__(
            f"deadline of {deadline_seconds:.3f}s exceeded "
            f"after {elapsed_seconds:.3f}s"
        )
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds


class InjectedFaultError(ReproError):
    """The default error raised by the chaos wrappers.

    Deliberately *not* a :class:`PredictionImpossibleError`: plain
    ``predict_or_default`` does not swallow it, so an injected fault is
    visible to every layer that has not opted into resilience.
    """


class ServingError(ReproError):
    """Base class for errors raised by the :mod:`repro.serving` layer."""


class RejectedError(ServingError):
    """Raised when the server refuses a request instead of queueing it.

    Explicit backpressure: the caller learns *immediately* that the
    system is saturated rather than waiting in an unbounded buffer.
    ``reason`` says which guard rejected the request (``"queue_full"``,
    ``"rate_limited"``, ``"draining"``, ...) and ``retry_after_seconds``,
    when not ``None``, is the server's hint for when capacity is likely
    to exist again.
    """

    def __init__(
        self, reason: str, retry_after_seconds: float | None = None
    ) -> None:
        hint = (
            f"; retry after {retry_after_seconds:.3f}s"
            if retry_after_seconds is not None
            else ""
        )
        super().__init__(f"request rejected ({reason}){hint}")
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds


class ServerClosedError(ServingError):
    """Raised when a closed :class:`~repro.serving.RecommendationServer`
    is asked to serve.

    Distinct from :class:`RejectedError`: a rejection is backpressure on
    a live server (retrying later can succeed), while a closed server
    never admits again — the caller holds a stale handle.
    """

    def __init__(self, server_name: str) -> None:
        super().__init__(f"server {server_name!r} is closed")
        self.server_name = server_name


class ShardError(ServingError):
    """Raised for shard-fleet failures in :mod:`repro.serving.sharding`.

    Covers a worker process dying (or being killed for a stale
    heartbeat) while requests were in flight to it, a control-pipe send
    to a dead worker, and fleet misconfiguration.  ``shard_id`` names
    the shard and ``reason`` the failure class (``"crash"``, ``"hang"``,
    ``"pipe"``, ...).  Routing-time refusals are *not* this type — a
    request to a down or recovering shard gets a
    :class:`RejectedError` with a retry hint, because the fleet heals
    itself and retrying later can succeed.
    """

    def __init__(self, shard_id: int, reason: str, detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(f"shard {shard_id} {reason}{suffix}")
        self.shard_id = shard_id
        self.reason = reason


class WireProtocolError(ServingError):
    """Raised for malformed messages on the shard-fleet pipes.

    Every message between the fleet parent and a shard worker is built
    by a :mod:`repro.serving.wire` constructor and validated by its
    parser on receipt; this error is the validator's verdict.  In a
    worker it is deliberately fatal (crash-only: the supervisor's
    restart-and-replay path handles it); in the parent's reader it
    marks the shard failed instead of silently mis-dispatching.
    ``direction`` is ``"command"`` (parent → worker) or ``"event"``
    (worker → parent).
    """

    def __init__(self, direction: str, detail: str) -> None:
        super().__init__(f"malformed {direction} message: {detail}")
        self.direction = direction
        self.detail = detail


class CacheError(ReproError):
    """Raised for misuse or failure of the :mod:`repro.cache` layer.

    Covers invalid cache configuration (non-positive capacity or shard
    counts, inverted TTLs) and a single-flight follower whose leader
    never completed within the flight timeout.  Cache *misses* are never
    errors — they are outcomes — and a loader's own exception propagates
    as itself, never wrapped in this type, so resilience classification
    (retry / breaker / fallback) still sees the original taxonomy error.
    """


class AnalysisError(ReproError):
    """Raised for misuse of the :mod:`repro.analysis` static analyzer.

    Covers nonexistent analysis targets, malformed suppression-baseline
    entries, and invalid rule configurations.  Findings in *analyzed*
    code are never raised as exceptions — they are reported as
    :class:`~repro.analysis.engine.Finding` records so a run always
    produces a complete report.
    """


class QualityError(ReproError):
    """Raised for misuse of the :mod:`repro.quality` metrics suite.

    Covers malformed or missing quality baselines, baselines whose
    world parameters do not match the run being checked, and invalid
    suite configurations.  Metric *values* are never raised as errors —
    a regression is an exit-code-1 report, not an exception — so a
    quality run always produces a complete report.
    """


class EventLogError(ReproError):
    """Raised for failures of the :mod:`repro.eventlog` durability layer.

    Covers unserialisable event payloads, failed or partial segment
    writes, fsync failures, and checksum/structure damage found while
    decoding a record.  An append that raises this has *not* been
    acknowledged: the interaction channels abort before mutating any
    in-memory state, so the event is neither visible live nor owed to
    replay.  During recovery scans this error is converted into
    corrupt-record counts (truncate-and-degrade), never propagated.
    """


class ReplayError(EventLogError):
    """Raised when :func:`repro.eventlog.replay` cannot rebuild state.

    Covers replay targets that reject the event stream structurally —
    a dataset whose rating scale excludes logged values, or profiles
    wired to re-journal during replay (which would double-write the
    log).  Individual events that no longer apply (e.g. correcting an
    attribute a previous replay step removed) are *skipped and counted*
    in the :class:`~repro.eventlog.replay.ReplayReport`, not raised, so
    recovery always completes on a degraded log.
    """


class ObservabilityError(ReproError):
    """Raised for misuse of the :mod:`repro.obs` instrumentation layer.

    Covers duplicate metric registration under a conflicting schema,
    writes to a closed event sink, and malformed metric names or label
    sets.  Instrumented application code never needs to catch this: a
    correctly wired registry/tracer raises only at configuration time,
    not per-event.
    """
