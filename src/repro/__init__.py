"""repro — an explanation framework for recommender systems.

A library-scale reproduction of Tintarev & Masthoff, *A Survey of
Explanations in Recommender Systems* (WPRSIUI @ ICDE 2007): the seven
explanation aims, every explanation style, presentation mode and
interaction channel the survey catalogues, the recommender substrates
they are generated from, and simulated-user reproductions of the studies
the survey's argument rests on.

Quick start::

    from repro.domains import make_movies
    from repro.recsys import UserBasedCF
    from repro.core import ExplainedRecommender, NeighborHistogramExplainer

    world = make_movies()
    pipeline = ExplainedRecommender(
        UserBasedCF(), NeighborHistogramExplainer()
    ).fit(world.dataset)
    for rec in pipeline.recommend("user_000", n=3):
        print(rec.explanation.render(include_details=True))

Subpackages
-----------
``repro.core``
    The explanation framework: aims, styles, explainers, pipeline and the
    survey registry (Tables 1-4).
``repro.recsys``
    Recommender substrates: collaborative (user/item kNN), content-based
    (TF-IDF), naive-Bayes (LIBRA-style), knowledge-based (MAUT) and
    popularity; metrics and diversification.
``repro.presentation``
    Section 4 presenters: top item, top-N, similar-to-top, predicted
    ratings, structured overview, treemaps, facets, personalities.
``repro.interaction``
    Section 5 channels: requirements, dialogs, critiquing, ratings,
    scrutable profiles, opinion feedback.
``repro.evaluation``
    Section 3 methodology: simulated users, questionnaires, statistics,
    per-aim evaluators and the E1-E9 study harnesses.
``repro.domains``
    Deterministic synthetic item worlds (movies, books, news, cameras,
    restaurants, holidays).
``repro.resilience``
    Fault tolerance for the serving path: retry/backoff, deadlines,
    circuit breakers, fallback chains and seeded chaos wrappers.
"""

from repro.errors import (
    CircuitOpenError,
    ConstraintError,
    DataError,
    DeadlineExceededError,
    DialogError,
    EvaluationError,
    InjectedFaultError,
    NotFittedError,
    PredictionImpossibleError,
    ReproError,
    RetryExhaustedError,
    UnknownItemError,
    UnknownUserError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "DataError",
    "UnknownUserError",
    "UnknownItemError",
    "NotFittedError",
    "PredictionImpossibleError",
    "ConstraintError",
    "DialogError",
    "EvaluationError",
    "RetryExhaustedError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "InjectedFaultError",
]
