"""Explanation modalities (paper Section 6, future work #2).

"A second direction is to extend existing research on modalities of
explanations, but rather than assuming that either text or images are
preferable, see how they can complement each other."

In a terminal library "image" means the structured detail blocks
(histograms, influence tables) and "text" the prose sentence.  The
modality layer renders any :class:`~repro.core.explanation.Explanation`
as text-only, chart-only or combined, and annotates each rendering with
a reading-cost estimate — the inputs the E10 modality study needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.explanation import Explanation

__all__ = ["Modality", "ModalRendering", "render_with_modality"]

_SECONDS_PER_TEXT_CHAR = 0.035  # ~290 chars/minute reading prose
_SECONDS_PER_CHART_LINE = 0.8  # charts are skimmed line-wise


class Modality(enum.Enum):
    """How an explanation is materialised for the user."""

    TEXT = "text"
    CHART = "chart"
    COMBINED = "combined"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ModalRendering:
    """One explanation rendered in one modality, with its reading cost."""

    modality: Modality
    content: str
    reading_seconds: float

    @property
    def is_empty(self) -> bool:
        """Whether the rendering carries no content at all."""
        return not self.content.strip()


def render_with_modality(
    explanation: Explanation, modality: Modality
) -> ModalRendering:
    """Render an explanation in the requested modality.

    TEXT drops detail blocks; CHART drops the prose (falling back to the
    prose when the explanation has no structured details — a chart-only
    interface cannot show nothing); COMBINED keeps both.
    """
    text = explanation.text
    charts = "\n\n".join(
        explanation.details[name] for name in sorted(explanation.details)
    )
    if modality is Modality.TEXT:
        content = text
        seconds = len(text) * _SECONDS_PER_TEXT_CHAR
    elif modality is Modality.CHART:
        content = charts if charts else text
        seconds = (
            content.count("\n") + 1
        ) * _SECONDS_PER_CHART_LINE if content else 0.0
    else:
        content = "\n\n".join(part for part in (text, charts) if part)
        seconds = (
            len(text) * _SECONDS_PER_TEXT_CHAR
            + (charts.count("\n") + 1) * _SECONDS_PER_CHART_LINE
            if charts
            else len(text) * _SECONDS_PER_TEXT_CHAR
        )
    return ModalRendering(
        modality=modality, content=content, reading_seconds=seconds
    )
