"""Squarified treemap layout and text rendering (paper Figure 2).

"The 'treemap' structure allows a different type of overview.  Here it is
possible to use different colors to represent topic areas, square and
font size to represent importance to the current user, and shades of each
topic color to represent recency." (Section 4.5)

:func:`squarify` implements the Bruls–Huizing–van-Wijk squarified layout
(the algorithm behind newsmap-style treemaps); :class:`Treemap` nests it
two levels deep (topics, then items) and renders to a character canvas
where the topic's letter is the "color" and upper/lower case is the
recency "shade".
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.taxonomy import PresentationMode
from repro.presentation.base import Presenter
from repro.recsys.data import Dataset

__all__ = ["Rect", "squarify", "TreemapCell", "Treemap", "build_news_treemap"]


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (origin top-left)."""

    x: float
    y: float
    width: float
    height: float

    @property
    def area(self) -> float:
        """Width times height."""
        return self.width * self.height

    @property
    def short_side(self) -> float:
        """The shorter of width and height."""
        return min(self.width, self.height)


def _worst_ratio(row: Sequence[float], side: float) -> float:
    """Worst aspect ratio if ``row`` areas are laid along ``side``."""
    total = sum(row)
    if total <= 0.0 or side <= 0.0:
        return float("inf")
    largest = max(row)
    smallest = min(row)
    return max(
        (side * side * largest) / (total * total),
        (total * total) / (side * side * smallest),
    )


def _layout_row(row: Sequence[float], rect: Rect) -> tuple[list[Rect], Rect]:
    """Place one row of areas along the rect's short side.

    Returns the placed rectangles plus the remaining free rectangle.
    """
    total = sum(row)
    placed: list[Rect] = []
    if rect.width >= rect.height:
        # Vertical strip on the left.
        strip_width = total / rect.height if rect.height > 0 else 0.0
        y = rect.y
        for area in row:
            cell_height = area / strip_width if strip_width > 0 else 0.0
            placed.append(Rect(rect.x, y, strip_width, cell_height))
            y += cell_height
        remaining = Rect(
            rect.x + strip_width, rect.y, rect.width - strip_width, rect.height
        )
    else:
        # Horizontal strip on the top.
        strip_height = total / rect.width if rect.width > 0 else 0.0
        x = rect.x
        for area in row:
            cell_width = area / strip_height if strip_height > 0 else 0.0
            placed.append(Rect(x, rect.y, cell_width, strip_height))
            x += cell_width
        remaining = Rect(
            rect.x, rect.y + strip_height, rect.width, rect.height - strip_height
        )
    return placed, remaining


def squarify(sizes: Sequence[float], rect: Rect) -> list[Rect]:
    """Squarified treemap layout (Bruls et al. 2000).

    ``sizes`` are laid out largest-first in ``rect``; returned rectangles
    correspond to the *input* order.  Sizes must be positive; total
    output area equals the input rectangle's area.
    """
    if any(size <= 0.0 for size in sizes):
        raise ValueError("treemap sizes must be positive")
    if not sizes:
        return []

    order = sorted(range(len(sizes)), key=lambda index: -sizes[index])
    total = sum(sizes)
    scale = rect.area / total
    scaled = [sizes[index] * scale for index in order]

    result: dict[int, Rect] = {}
    remaining_rect = rect
    row: list[float] = []
    row_indices: list[int] = []
    position = 0
    while position < len(scaled):
        area = scaled[position]
        side = remaining_rect.short_side
        if not row or _worst_ratio(row + [area], side) <= _worst_ratio(row, side):
            row.append(area)
            row_indices.append(order[position])
            position += 1
        else:
            placed, remaining_rect = _layout_row(row, remaining_rect)
            for index, cell in zip(row_indices, placed):
                result[index] = cell
            row, row_indices = [], []
    if row:
        placed, __ = _layout_row(row, remaining_rect)
        for index, cell in zip(row_indices, placed):
            result[index] = cell
    return [result[index] for index in range(len(sizes))]


@dataclass(frozen=True)
class TreemapCell:
    """One laid-out cell: an item with its topic, importance and recency."""

    item_id: str
    label: str
    topic: str
    importance: float
    recency: float  # in [0, 1]; 1 = newest
    rect: Rect


@dataclass(frozen=True)
class Treemap(Presenter):
    """A laid-out treemap over (topic, item) hierarchy."""

    cells: tuple[TreemapCell, ...]
    width: int
    height: int
    topic_letters: Mapping[str, str]

    mode = PresentationMode.STRUCTURED_OVERVIEW

    def render(self) -> str:
        """Character-canvas rendering.

        Topic letter = "color"; uppercase = recent ("shade"); cell area =
        importance.  A legend maps letters back to topics.
        """
        canvas = [[" "] * self.width for __ in range(self.height)]
        for cell in self.cells:
            letter = self.topic_letters[cell.topic]
            fill = letter.upper() if cell.recency >= 0.5 else letter.lower()
            x0 = int(round(cell.rect.x))
            y0 = int(round(cell.rect.y))
            x1 = int(round(cell.rect.x + cell.rect.width))
            y1 = int(round(cell.rect.y + cell.rect.height))
            for y in range(max(0, y0), min(self.height, y1)):
                for x in range(max(0, x0), min(self.width, x1)):
                    edge = (
                        y in (y0, y1 - 1) or x in (x0, x1 - 1)
                    )
                    canvas[y][x] = fill if not edge else "."
        lines = ["".join(row) for row in canvas]
        legend = ", ".join(
            f"{letter}={topic}"
            for topic, letter in sorted(
                self.topic_letters.items(), key=lambda kv: kv[1]
            )
        )
        lines.append("")
        lines.append(f"legend: {legend} (UPPERCASE = recent)")
        return "\n".join(lines)

    def cell_for(self, item_id: str) -> TreemapCell:
        """Lookup a cell by item id."""
        for cell in self.cells:
            if cell.item_id == item_id:
                return cell
        raise KeyError(item_id)


def build_news_treemap(
    dataset: Dataset,
    item_ids: Sequence[str] | None = None,
    width: int = 78,
    height: int = 22,
    importance_of=None,
) -> Treemap:
    """Lay out news items into a two-level (section, story) treemap.

    ``importance_of(item) -> float`` defaults to the item's
    ``importance`` attribute (falling back to 1.0); cell shade comes from
    the item's relative recency within the selection.
    """
    if item_ids is None:
        item_ids = list(dataset.items)
    if not item_ids:
        raise ValueError("cannot lay out an empty treemap")
    if importance_of is None:
        def importance_of(item):  # noqa: ANN001 - local default
            return float(item.attribute("importance", 1.0) or 1.0)

    items = [dataset.item(item_id) for item_id in item_ids]
    recencies = [item.recency for item in items]
    low, high = min(recencies), max(recencies)
    span = max(high - low, 1e-12)

    by_topic: dict[str, list] = {}
    for item in items:
        topic = item.topics[0].split("/")[0] if item.topics else "other"
        by_topic.setdefault(topic, []).append(item)

    topics = sorted(by_topic)
    topic_sizes = [
        sum(importance_of(item) for item in by_topic[topic]) for topic in topics
    ]
    topic_rects = squarify(topic_sizes, Rect(0, 0, float(width), float(height)))

    letters = "abcdefghijklmnopqrstuvwxyz"
    topic_letters = {
        topic: letters[index % len(letters)]
        for index, topic in enumerate(topics)
    }

    cells: list[TreemapCell] = []
    for topic, topic_rect in zip(topics, topic_rects):
        members = by_topic[topic]
        sizes = [importance_of(item) for item in members]
        rects = squarify(sizes, topic_rect)
        for item, rect in zip(members, rects):
            cells.append(
                TreemapCell(
                    item_id=item.item_id,
                    label=item.title,
                    topic=topic,
                    importance=importance_of(item),
                    recency=(item.recency - low) / span,
                    rect=rect,
                )
            )
    return Treemap(
        cells=tuple(cells),
        width=width,
        height=height,
        topic_letters=topic_letters,
    )
