"""Faceted metadata browsing (Yee et al., paper Section 4.5).

"This approach considers several aspects of each item, such as location,
date and material, each with a number of levels.  The user can see how
many items there are available at each level for each aspect."

:class:`FacetedBrowser` computes per-level counts over item attributes,
supports drill-down by selecting facet values, and always shows the
remaining counts — so the user "can see where they are in the search
space".
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.core.taxonomy import PresentationMode
from repro.presentation.base import Presenter
from repro.recsys.data import Dataset, Item

__all__ = ["FacetedBrowser"]


class FacetedBrowser(Presenter):
    """Multi-facet drill-down browser over item attributes.

    Parameters
    ----------
    facets:
        Attribute names to expose as facets.  Numeric attributes are
        bucketed with ``numeric_buckets`` equal-width bins.
    """

    mode = PresentationMode.STRUCTURED_OVERVIEW

    def __init__(
        self,
        dataset: Dataset,
        facets: Sequence[str],
        numeric_buckets: int = 4,
    ) -> None:
        if not facets:
            raise ValueError("at least one facet is required")
        self.dataset = dataset
        self.facets = list(facets)
        self.numeric_buckets = numeric_buckets
        self.selections: dict[str, object] = {}
        self._ranges: dict[str, tuple[float, float]] = {}
        for facet in self.facets:
            values = [
                item.attribute(facet)
                for item in dataset.items.values()
                if isinstance(item.attribute(facet), (int, float))
                and not isinstance(item.attribute(facet), bool)
            ]
            if values:
                numbers = [float(v) for v in values]  # type: ignore[arg-type]
                self._ranges[facet] = (min(numbers), max(numbers))

    # -- bucketing ----------------------------------------------------------

    def _bucket(self, facet: str, value: object) -> object:
        """Map a raw value to its facet level (numeric values get ranges)."""
        if facet in self._ranges and isinstance(value, (int, float)):
            low, high = self._ranges[facet]
            span = max(high - low, 1e-12)
            index = min(
                self.numeric_buckets - 1,
                int((float(value) - low) / span * self.numeric_buckets),
            )
            bucket_low = low + index * span / self.numeric_buckets
            bucket_high = low + (index + 1) * span / self.numeric_buckets
            return f"{bucket_low:g}..{bucket_high:g}"
        return value

    # -- selection ------------------------------------------------------------

    def select(self, facet: str, level: object) -> None:
        """Drill down: restrict one facet to one level."""
        if facet not in self.facets:
            raise KeyError(facet)
        self.selections[facet] = level

    def clear(self, facet: str | None = None) -> None:
        """Clear one facet selection, or all of them."""
        if facet is None:
            self.selections.clear()
        else:
            self.selections.pop(facet, None)

    def matching_items(self) -> list[Item]:
        """Items consistent with every current selection."""
        matches = []
        for item in self.dataset.items.values():
            consistent = True
            for facet, level in self.selections.items():
                if self._bucket(facet, item.attribute(facet)) != level:
                    consistent = False
                    break
            if consistent:
                matches.append(item)
        return matches

    def counts(self, facet: str) -> dict[object, int]:
        """Item counts per level of one facet, under current selections.

        The counted pool ignores this facet's own selection (standard
        faceted-browsing behaviour) so users see sibling levels.
        """
        saved = self.selections.pop(facet, None)
        try:
            pool = self.matching_items()
        finally:
            if saved is not None:
                self.selections[facet] = saved
        counter: Counter = Counter()
        for item in pool:
            value = item.attribute(facet)
            if value is None:
                continue
            counter[self._bucket(facet, value)] += 1
        return dict(counter)

    def render(self) -> str:
        """All facets with per-level counts, then the current matches."""
        lines = []
        for facet in self.facets:
            selected = self.selections.get(facet)
            header = f"{facet}:"
            if selected is not None:
                header += f"  [selected: {selected}]"
            lines.append(header)
            for level, count in sorted(
                self.counts(facet).items(), key=lambda kv: str(kv[0])
            ):
                marker = ">" if level == selected else " "
                lines.append(f"  {marker} {level} ({count})")
        matches = self.matching_items()
        lines.append("")
        lines.append(f"{len(matches)} matching items")
        for item in matches[:8]:
            lines.append(f"  - {item.title}")
        if len(matches) > 8:
            lines.append(f"  ... and {len(matches) - 8} more")
        return "\n".join(lines)
