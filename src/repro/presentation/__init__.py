"""Presentation styles (paper Section 4): one presenter per subsection."""

from repro.presentation.base import Presenter
from repro.presentation.facets import FacetedBrowser
from repro.presentation.lists import (
    SimilarToTopPresenter,
    TopItemPresenter,
    TopNPresenter,
)
from repro.presentation.overview import (
    OverviewCategory,
    StructuredOverview,
    build_overview,
)
from repro.presentation.personality import (
    AFFIRMING,
    BOLD,
    FRANK,
    SERENDIPITOUS,
    Personality,
    PersonalityRecommender,
)
from repro.presentation.modality import (
    ModalRendering,
    Modality,
    render_with_modality,
)
from repro.presentation.predicted import PredictedRatingsBrowser
from repro.presentation.treemap import (
    Rect,
    Treemap,
    TreemapCell,
    build_news_treemap,
    squarify,
)

__all__ = [
    "Presenter",
    "TopItemPresenter",
    "TopNPresenter",
    "SimilarToTopPresenter",
    "PredictedRatingsBrowser",
    "StructuredOverview",
    "OverviewCategory",
    "build_overview",
    "Treemap",
    "TreemapCell",
    "Rect",
    "squarify",
    "build_news_treemap",
    "FacetedBrowser",
    "Modality",
    "ModalRendering",
    "render_with_modality",
    "Personality",
    "PersonalityRecommender",
    "AFFIRMING",
    "BOLD",
    "FRANK",
    "SERENDIPITOUS",
]
