"""Recommender "personality" (paper Section 4.6).

"The choice of recommended items, or the predicted rating for an item can
be angled to reflect a 'personality' of the recommender system."  Two
orthogonal knobs:

* **strength shading** — a *bold* recommender inflates displayed
  predictions; a *frank* one shows true values and discloses confidence;
* **item choice** — an *affirming* recommender re-surfaces familiar
  items the user probably knows; a *serendipitous* one biases towards
  novel, surprising items.

Section 4.6 also requires that "if such factors are part of the
recommendation process ... they should be part of the explanations as
well": shaded recommendations get an honesty note appended when the
personality is transparent about itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import ExplainedRecommendation, ExplainedRecommender
from repro.core.templates import confidence_disclosure
from repro.recsys.base import Prediction, Recommendation
from repro.recsys.metrics import novelty

__all__ = ["Personality", "AFFIRMING", "BOLD", "FRANK", "SERENDIPITOUS",
           "PersonalityRecommender"]


@dataclass(frozen=True)
class Personality:
    """A recommender personality configuration.

    Attributes
    ----------
    boldness:
        Fraction of the remaining scale headroom added to displayed
        predictions (0 = honest, 0.5 = strongly inflated).
    frank:
        Whether to disclose true confidence in the explanation.
    serendipity:
        Weight in [0, 1] blending novelty into the ranking score.
    affirming:
        Whether to include items the user has already rated (familiar
        recommendations that "inspire a user's trust").
    disclose_shading:
        Whether shaded strength is itself explained (the Section 4.6
        transparency requirement).
    """

    name: str
    boldness: float = 0.0
    frank: bool = False
    serendipity: float = 0.0
    affirming: bool = False
    disclose_shading: bool = True


AFFIRMING = Personality(name="affirming", affirming=True, boldness=0.0)
BOLD = Personality(name="bold", boldness=0.35, disclose_shading=False)
FRANK = Personality(name="frank", frank=True)
SERENDIPITOUS = Personality(name="serendipitous", serendipity=0.5)


class PersonalityRecommender:
    """Wrap an explained recommender with a personality.

    The wrapper re-scores, re-ranks and re-phrases; the underlying
    recommender and explainer are untouched, so the same substrate can be
    presented with any personality (as the personality study E8 does).
    """

    def __init__(
        self, pipeline: ExplainedRecommender, personality: Personality
    ) -> None:
        self.pipeline = pipeline
        self.personality = personality

    def _shade(self, prediction: Prediction, scale) -> float:
        """Bold strength shading: inflate towards the scale maximum."""
        if self.personality.boldness <= 0.0:
            return prediction.value
        headroom = scale.maximum - prediction.value
        return scale.clip(
            prediction.value + self.personality.boldness * headroom
        )

    def recommend(self, user_id: str, n: int = 5) -> list[ExplainedRecommendation]:
        """Personality-adjusted recommendations with adjusted explanations."""
        dataset = self.pipeline.dataset
        scale = dataset.scale
        pool = self.pipeline.recommend(
            user_id,
            n=max(n * 3, 10),
            exclude_rated=not self.personality.affirming,
        )

        if self.personality.serendipity > 0.0:
            weight = self.personality.serendipity
            max_novelty = max(
                (novelty([er.item_id], dataset) for er in pool), default=1.0
            )
            max_novelty = max(max_novelty, 1e-12)

            def blended(er: ExplainedRecommendation) -> float:
                item_novelty = novelty([er.item_id], dataset) / max_novelty
                return (
                    (1.0 - weight) * scale.normalize(er.score)
                    + weight * item_novelty
                )

            pool.sort(key=lambda er: (-blended(er), er.item_id))
        elif self.personality.affirming:
            # Prefer familiar: items similar in topic to already-rated ones
            # rank first; already-rated items are naturally included.
            rated_topics = {
                topic
                for item_id in dataset.ratings_by(user_id)
                for topic in dataset.item(item_id).topics
            }

            def familiarity(er: ExplainedRecommendation) -> int:
                topics = dataset.item(er.item_id).topics
                return sum(1 for topic in topics if topic in rated_topics)

            pool.sort(key=lambda er: (-familiarity(er), -er.score, er.item_id))

        adjusted: list[ExplainedRecommendation] = []
        for rank, er in enumerate(pool[:n], start=1):
            displayed = self._shade(er.recommendation.prediction, scale)
            explanation = er.explanation
            if self.personality.frank:
                explanation = explanation.with_suffix(
                    confidence_disclosure(er.recommendation.confidence)
                )
            if (
                self.personality.boldness > 0.0
                and self.personality.disclose_shading
            ):
                explanation = explanation.with_suffix(
                    f"(Displayed rating boosted from "
                    f"{er.recommendation.score:.1f}.)"
                )
            adjusted.append(
                ExplainedRecommendation(
                    recommendation=Recommendation(
                        item_id=er.item_id,
                        score=displayed,
                        rank=rank,
                        prediction=er.recommendation.prediction,
                    ),
                    explanation=explanation,
                    degraded=er.degraded,
                )
            )
        return adjusted
