"""Predicted-ratings-for-all-items browsing (paper Section 4.4).

"Rather than forcing selections on the user, a system may allow its users
to browse all the available options" with a predicted rating per item.
The browser supports the paper's full scrutability cycle:

* :meth:`page` — browse predictions (sorted or filtered by topic);
* :meth:`why` — ask why an item is predicted high *or low* (the local
  hockey results question);
* counteracting a prediction is handled by the rating-feedback channel in
  :mod:`repro.interaction.ratings`, which this browser exposes hooks for.
"""

from __future__ import annotations

from repro.core.pipeline import ExplainedRecommendation, ExplainedRecommender
from repro.core.taxonomy import PresentationMode
from repro.presentation.base import Presenter
from repro.render import stars

__all__ = ["PredictedRatingsBrowser"]


class PredictedRatingsBrowser(Presenter):
    """Browse every item with its predicted rating."""

    mode = PresentationMode.PREDICTED_RATINGS

    def __init__(
        self,
        pipeline: ExplainedRecommender,
        user_id: str,
        topic: str | None = None,
        page_size: int = 10,
    ) -> None:
        self.pipeline = pipeline
        self.user_id = user_id
        self.topic = topic
        self.page_size = page_size

    def _candidate_ids(self) -> list[str]:
        dataset = self.pipeline.dataset
        item_ids = list(dataset.items)
        if self.topic is not None:
            item_ids = [
                item_id
                for item_id in item_ids
                if self.topic in dataset.item(item_id).topics
            ]
        return item_ids

    def page(
        self, offset: int = 0, include_rated: bool = True
    ) -> list[ExplainedRecommendation]:
        """One page of items with predictions, best-predicted first."""
        dataset = self.pipeline.dataset
        item_ids = self._candidate_ids()
        if not include_rated:
            rated = set(dataset.ratings_by(self.user_id))
            item_ids = [item_id for item_id in item_ids if item_id not in rated]
        explained = [
            self.pipeline.predict_and_explain(self.user_id, item_id)
            for item_id in item_ids
        ]
        explained.sort(key=lambda er: (-er.score, er.item_id))
        return explained[offset : offset + self.page_size]

    def why(self, item_id: str) -> str:
        """The explanation text for one item's prediction, high or low."""
        explained = self.pipeline.predict_and_explain(self.user_id, item_id)
        return explained.explanation.render(include_details=True)

    def render(self, offset: int = 0) -> str:
        """A text page of predicted ratings with stars."""
        dataset = self.pipeline.dataset
        lines = []
        header = "All items, with your predicted ratings"
        if self.topic is not None:
            header += f" (topic: {self.topic})"
        lines.append(header)
        lines.append("-" * len(header))
        for explained in self.page(offset=offset):
            item = dataset.item(explained.item_id)
            own = dataset.rating(self.user_id, explained.item_id)
            marker = f" [you rated {own.value:g}]" if own else ""
            lines.append(
                f"{stars(explained.score)} {explained.score:.1f}  "
                f"{item.title}{marker}"
            )
        lines.append("")
        lines.append(
            "Ask why(item) for any prediction, or rate items to correct us."
        )
        return "\n".join(lines)
