"""Presenter protocol.

A presenter renders explained recommendations into a user-facing page
(plain text here; the structured objects are UI-toolkit-agnostic).  Each
presenter declares the :class:`~repro.core.taxonomy.PresentationMode` it
implements so the survey registry, the examples and the benchmarks can
map paper Section 4 onto code one-to-one.
"""

from __future__ import annotations

import abc

from repro.core.taxonomy import PresentationMode

__all__ = ["Presenter"]


class Presenter(abc.ABC):
    """Base class for all presenters."""

    mode: PresentationMode

    @abc.abstractmethod
    def render(self) -> str:
        """Render the current page as plain text."""
