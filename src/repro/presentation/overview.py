"""Structured overview: Pu & Chen's organizational structure (Section 4.5).

"The best matching item is displayed at the top.  Below it several
categories of trade-off alternatives are listed.  Each category has a
title explaining the characteristics of the items in it, e.g. '[these
laptops] ... are cheaper and lighter, but have lower processor speed'.
The order of the titles depends on how well the category matches the
user's requirements."

The category structure is computed, not hand-written: alternatives are
grouped by their *trade-off signature* against the best item (which
preferred attributes improve, which worsen), each group gets a
McCarthy-style "thinking positively" title, and groups are ordered by
their best member's utility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxonomy import PresentationMode
from repro.core.templates import tradeoff_sentence
from repro.presentation.base import Presenter
from repro.recsys.data import Item
from repro.recsys.knowledge import (
    Catalog,
    KnowledgeBasedRecommender,
    UserRequirements,
    compare_items,
)

__all__ = ["OverviewCategory", "StructuredOverview", "build_overview"]


@dataclass(frozen=True)
class OverviewCategory:
    """One trade-off category: a title plus its member items."""

    title: str
    pros: tuple[str, ...]
    cons: tuple[str, ...]
    items: tuple[Item, ...]
    best_utility: float


@dataclass(frozen=True)
class StructuredOverview(Presenter):
    """The full page: best item on top, trade-off categories below."""

    best: Item
    best_utility: float
    categories: tuple[OverviewCategory, ...]

    mode = PresentationMode.STRUCTURED_OVERVIEW

    def render(self) -> str:
        """Best match, then each category title with its items."""
        lines = [
            "Best match for your requirements:",
            f"  ** {self.best.title} **",
            "",
        ]
        if not self.categories:
            lines.append("No trade-off alternatives within reach.")
        for category in self.categories:
            lines.append(category.title)
            for item in category.items:
                lines.append(f"    - {item.title}")
            lines.append("")
        return "\n".join(lines).rstrip()


def build_overview(
    recommender: KnowledgeBasedRecommender,
    requirements: UserRequirements,
    n_alternatives: int = 12,
    max_categories: int = 4,
    max_items_per_category: int = 3,
) -> StructuredOverview:
    """Compute a structured overview for the given requirements.

    Parameters
    ----------
    n_alternatives:
        How many runner-up items to organise into categories.
    max_categories:
        How many categories to show (ordered by best member utility).
    """
    ranked = recommender.rank(requirements, n=n_alternatives + 1)
    if not ranked:
        raise ValueError(
            "no items satisfy the requirements; consult "
            "KnowledgeBasedRecommender.relaxations() first"
        )
    best_item, best_utility, __ = ranked[0]
    catalog: Catalog = recommender.catalog

    groups: dict[tuple[tuple[str, ...], tuple[str, ...]], list[tuple[Item, float]]] = {}
    for item, utility, __ in ranked[1:]:
        deltas = compare_items(catalog, item, best_item, requirements)
        pros = tuple(
            sorted(delta.phrase for delta in deltas if delta.improves)
        )
        cons = tuple(
            sorted(delta.phrase for delta in deltas if delta.improves is False)
        )
        if not pros and not cons:
            continue
        groups.setdefault((pros, cons), []).append((item, utility))

    categories = []
    for (pros, cons), members in groups.items():
        members.sort(key=lambda entry: (-entry[1], entry[0].item_id))
        title = tradeoff_sentence(list(pros), list(cons), subject="These items")
        categories.append(
            OverviewCategory(
                title=title,
                pros=pros,
                cons=cons,
                items=tuple(
                    item for item, __ in members[:max_items_per_category]
                ),
                best_utility=members[0][1],
            )
        )
    categories.sort(key=lambda category: -category.best_utility)
    return StructuredOverview(
        best=best_item,
        best_utility=best_utility,
        categories=tuple(categories[:max_categories]),
    )
