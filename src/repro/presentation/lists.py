"""List presentations: top item, top-N, similar to top item(s).

Paper Sections 4.1–4.3.  Relevance "can be represented by the order in
which recommendations are given"; these presenters render ranked lists
with star ratings and per-item explanations, and the top-N presenter
additionally synthesises the *joint* explanation relating the chosen
items ("You have watched a lot of football and technology items...").
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.core.pipeline import ExplainedRecommendation
from repro.core.taxonomy import PresentationMode
from repro.core.templates import (
    join_phrases,
    might_also_like,
    people_like_you_liked,
)
from repro.presentation.base import Presenter
from repro.recsys.data import Dataset
from repro.render import boxed, stars

__all__ = ["TopItemPresenter", "TopNPresenter", "SimilarToTopPresenter"]


class TopItemPresenter(Presenter):
    """"Perhaps the simplest way": offer the single best item (4.1)."""

    mode = PresentationMode.TOP_ITEM

    def __init__(
        self, dataset: Dataset, recommendation: ExplainedRecommendation
    ) -> None:
        self.dataset = dataset
        self.recommendation = recommendation

    def render(self) -> str:
        """One boxed item with stars and its explanation."""
        item = self.dataset.item(self.recommendation.item_id)
        lines = [
            item.title,
            f"{stars(self.recommendation.score)} "
            f"({self.recommendation.score:.1f})",
        ]
        text = self.recommendation.explanation.render(include_details=True)
        if text:
            lines.append("")
            lines.append(text)
        return boxed("\n".join(lines), title="Recommended for you")


class TopNPresenter(Presenter):
    """A ranked list of several items at once (4.2).

    "While this system should be able to explain the relation between
    chosen items, it should still be able to explain the rationale behind
    each single item" — :meth:`joint_explanation` covers the former,
    per-item explanations the latter.
    """

    mode = PresentationMode.TOP_N

    def __init__(
        self,
        dataset: Dataset,
        recommendations: Sequence[ExplainedRecommendation],
        show_item_explanations: bool = True,
    ) -> None:
        self.dataset = dataset
        self.recommendations = list(recommendations)
        self.show_item_explanations = show_item_explanations

    def joint_explanation(self) -> str:
        """Relate the list's items through their dominant topics."""
        if not self.recommendations:
            return "We have nothing to recommend yet."
        topics: Counter = Counter()
        for recommendation in self.recommendations:
            item = self.dataset.items.get(recommendation.item_id)
            if item is not None and item.topics:
                topics[item.topics[0].split("/")[-1]] += 1
        if not topics:
            return "Here are today's recommendations."
        dominant = [topic for topic, __ in topics.most_common(2)]
        titles = [
            self.dataset.item(r.item_id).title
            for r in self.recommendations[:2]
        ]
        return (
            f"You have watched a lot of {join_phrases(dominant)} items. "
            f"You might like to see {join_phrases(titles)}."
        )

    def render(self) -> str:
        """Joint explanation, then the ranked list."""
        lines = [self.joint_explanation(), ""]
        for recommendation in self.recommendations:
            item = self.dataset.item(recommendation.item_id)
            lines.append(
                f"{recommendation.recommendation.rank:>2}. "
                f"{stars(recommendation.score)} {item.title}"
            )
            if self.show_item_explanations:
                text = recommendation.explanation.text
                if text:
                    lines.append(f"      {text}")
        return "\n".join(lines)


class SimilarToTopPresenter(Presenter):
    """"Once a user shows a preference ... offer similar items" (4.3).

    ``social`` switches the phrasing from the item-similarity form
    ("You might also like...") to the social form ("People like you
    liked...").
    """

    mode = PresentationMode.SIMILAR_TO_TOP

    def __init__(
        self,
        dataset: Dataset,
        anchor_item_id: str,
        similar: Sequence[tuple[str, float]],
        social: bool = False,
    ) -> None:
        self.dataset = dataset
        self.anchor_item_id = anchor_item_id
        self.similar = list(similar)
        self.social = social

    def render(self) -> str:
        """Anchor item header plus a phrased list of similar items."""
        anchor = self.dataset.item(self.anchor_item_id)
        lines = [f"Because you liked {anchor.title}:"]
        for item_id, similarity in self.similar:
            title = self.dataset.item(item_id).title
            phrase = (
                people_like_you_liked(title)
                if self.social
                else might_also_like(title)
            )
            lines.append(f"  {phrase} (match {similarity:.0%})")
        if len(lines) == 1:
            lines.append("  (no sufficiently similar items found)")
        return "\n".join(lines)
