"""RR012: resources acquired in eventlog/serving must be released on
every CFG path.

The event log hands out real file descriptors (``SegmentHandle`` wraps
``os.open``; ``FileStorage.open_append`` returns one per segment) and
the serving stack takes explicit ``.acquire()``/``.release()`` lock
pairs in a couple of hot paths.  A handle that leaks only on the
*error* path is exactly the bug class the disk-fault and kill -9 chaos
suites hit probabilistically — this rule proves the absence of the
pattern instead of sampling for it.

The analysis is a forward may-leak dataflow over the per-function CFG
(:mod:`repro.analysis.cfg`):

* **acquire** — binding a plain local name to an acquiring call
  (``open(...)``, ``os.open(...)``, ``*.open_append(...)``) adds an
  open-resource fact; a manual ``<lock>.acquire()`` on a lock-named
  receiver adds a receiver-keyed fact.
* **release** — ``name.close()`` / ``name.release()`` /
  ``os.close(name)`` (or ``<lock>.release()``) kills the fact.
* **escape** — ownership transfer ends local responsibility: returning
  or yielding the name, passing it as a call argument, storing it on an
  attribute/subscript/container, or aliasing it to another name.
* ``with``-managed resources are never tracked: ``__exit__`` is
  guaranteed by construction.

At the CFG exit, any surviving fact means *some* path reaches the end
of the function with the resource still open; the finding points at
the acquisition site.  Facts merge by union at joins, so a release on
only one branch still reports the leaking branch.
"""

from __future__ import annotations

import ast

from repro.analysis.cfg import Block, DataflowProblem, build_cfg, solve_forward
from repro.analysis.engine import ModuleInfo, Rule, dotted_name

__all__ = ["ResourceLifecycleRule"]

#: Terminal call names that hand the caller an open resource.
_ACQUIRING_CALLS = frozenset({"open", "open_append", "open_segment"})

#: Receiver-name fragments that mark a manual ``.acquire()`` as a lock.
_LOCKY_FRAGMENTS = ("lock", "mutex", "semaphore")

#: Packages whose resource discipline this rule enforces.
_SCOPED_PACKAGES = ("repro.eventlog", "repro.serving")


def _is_acquiring_call(node: ast.expr) -> str | None:
    """The acquisition kind when ``node`` is an acquiring call."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    terminal = name.rsplit(".", 1)[-1]
    if terminal in _ACQUIRING_CALLS:
        return terminal
    return None


def _lock_receiver(node: ast.Call) -> str | None:
    """Dotted receiver of a ``<lock>.acquire()`` call, else ``None``."""
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "acquire":
        return None
    receiver = dotted_name(func.value)
    if receiver is None:
        return None
    terminal = receiver.rsplit(".", 1)[-1].lower()
    if any(fragment in terminal for fragment in _LOCKY_FRAGMENTS):
        return receiver
    return None


class _ResourceProblem(DataflowProblem):
    """Facts are ``(key, kind, line)`` triples of still-open resources.

    ``key`` is ``name:<local>`` for handle-valued locals and
    ``attr:<dotted>`` for manual lock receivers.
    """

    def transfer(self, block: Block, entering: frozenset) -> frozenset:
        facts = set(entering)
        for statement in block.statements:
            self._transfer_statement(statement, facts)
        return frozenset(facts)

    # -- per-statement semantics ------------------------------------------

    def _transfer_statement(self, node: ast.AST, facts: set) -> None:
        if isinstance(node, ast.withitem):
            return  # with-managed: __exit__ is guaranteed
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions get their own CFG
        if isinstance(node, ast.Assign):
            self._transfer_assign(node, facts)
            return
        if isinstance(node, ast.Return) or isinstance(node, ast.expr) and isinstance(node, (ast.Yield, ast.YieldFrom)):
            self._escape_names_in(getattr(node, "value", None), facts)
            return
        for call in ast.walk(node):
            if isinstance(call, ast.Call):
                self._transfer_call(call, facts)
            elif isinstance(call, (ast.Yield, ast.YieldFrom)):
                self._escape_names_in(call.value, facts)

    def _transfer_assign(self, node: ast.Assign, facts: set) -> None:
        # Releases/acquires buried in the RHS still count.
        for call in ast.walk(node.value):
            if isinstance(call, ast.Call):
                self._transfer_call(call, facts)
        plain_targets = [
            t for t in node.targets if isinstance(t, ast.Name)
        ]
        kind = _is_acquiring_call(node.value)
        if kind is not None and len(plain_targets) == len(node.targets) == 1:
            facts.add(
                (f"name:{plain_targets[0].id}", kind, node.lineno)
            )
            return
        if not plain_targets or len(plain_targets) != len(node.targets):
            # Attribute/subscript/tuple target: the value escapes into
            # longer-lived storage; so does any tracked name inside it.
            self._escape_names_in(node.value, facts)
            return
        # Plain-name (re)binding: only a *direct* alias (`g = fh`, or a
        # tuple/list of names) transfers ownership — `data = fh.read()`
        # leaves `fh` owned here.
        for name in self._alias_names(node.value):
            self._kill(f"name:{name}", facts)

    def _transfer_call(self, node: ast.Call, facts: set) -> None:
        func = node.func
        # name.close() / name.release()
        if isinstance(func, ast.Attribute) and func.attr in (
            "close",
            "release",
        ):
            receiver = dotted_name(func.value)
            if receiver is not None:
                self._kill(f"name:{receiver}", facts)
                self._kill(f"attr:{receiver}", facts)
        # os.close(fd)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "close"
            and dotted_name(func.value) == "os"
        ) or dotted_name(func) == "os.close":
            for argument in node.args:
                if isinstance(argument, ast.Name):
                    self._kill(f"name:{argument.id}", facts)
        # <lock>.acquire()
        receiver = _lock_receiver(node)
        if receiver is not None:
            facts.add((f"attr:{receiver}", "acquire", node.lineno))
            return
        # A tracked handle passed as an argument escapes: the callee
        # (a registry, a constructor) now owns its lifecycle.
        for argument in list(node.args) + [kw.value for kw in node.keywords]:
            self._escape_names_in(argument, facts)

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _alias_names(node: ast.expr) -> list[str]:
        """Names the value directly aliases (bare names, containers of)."""
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, (ast.Tuple, ast.List)):
            names: list[str] = []
            for element in node.elts:
                if isinstance(element, ast.Starred):
                    element = element.value
                if isinstance(element, ast.Name):
                    names.append(element.id)
            return names
        return []

    @staticmethod
    def _kill(key: str, facts: set) -> None:
        for fact in [f for f in facts if f[0] == key]:
            facts.discard(fact)

    def _escape_names_in(self, node: ast.AST | None, facts: set) -> None:
        if node is None:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                self._kill(f"name:{child.id}", facts)


class ResourceLifecycleRule(Rule):
    """RR012: file/segment handles and locks released on every path."""

    rule_id = "RR012"
    name = "resource-lifecycle"
    severity = "error"
    rationale = (
        "A handle or lock that leaks on even one control-flow path "
        "holds a descriptor (or blocks every other thread) until the "
        "GC gets around to it; under the event log's crash-recovery "
        "and the shard fleet's restart churn that is a resource "
        "exhaustion bug the chaos suites only hit probabilistically."
    )
    fix_hint = (
        "manage the resource with a `with` statement, release it in a "
        "`try/finally`, or hand ownership somewhere explicit (return "
        "it / store it on self)"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package.startswith(_SCOPED_PACKAGES)

    def handle_function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        cfg = build_cfg(node)
        solution = solve_forward(cfg, _ResourceProblem())
        exit_in, _ = solution[cfg.exit]
        scope = (
            f"{self.scope}.{node.name}"
            if self.scope != "<module>"
            else node.name
        )
        for key, kind, line in sorted(exit_in, key=lambda f: (f[2], f[0])):
            label = key.split(":", 1)[1]
            verb = "released" if kind == "acquire" else "closed"
            self.report(
                node,
                f"`{label}` acquired via {kind}() at line {line} is not "
                f"{verb} on every path to function exit",
                slug=f"unreleased-{label.replace('.', '-')}",
                scope=scope,
            )
