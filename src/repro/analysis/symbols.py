"""The project-wide symbol table: every function the analyzer can see.

This is the first layer of the dataflow pipeline (symbol table → call
graph → CFG → solver → rules).  A :class:`SymbolCollector` walks one
module and records a :class:`FunctionSymbol` per function or method —
its qualified name, the class it belongs to, and the *terminal callee
names* its body mentions.  A :class:`SymbolTable` accumulates those
per-module records project-wide; :mod:`repro.analysis.callgraph`
resolves the callee names into edges.

Callee collection reuses the conservative name-matching contract that
:mod:`repro.analysis.lockgraph` established: calls to ultra-generic
method names (``close``, ``get``, ``put``, …) on receivers other than
``self`` are *not* recorded, because stdlib objects collide with
analyzed classes on exactly those names and would fabricate edges.

Every structure serialises to plain JSON (``as_dict`` /
``from_dict``), because the incremental engine caches per-module
symbols by content hash and re-merges them without re-parsing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import ModuleInfo, dotted_name

__all__ = [
    "FunctionSymbol",
    "SymbolCollector",
    "SymbolTable",
    "callee_name",
    "GENERIC_CALLEES",
]

#: Method names too generic to follow on a non-``self`` receiver:
#: streams, queues, threads and events all collide here.
GENERIC_CALLEES = frozenset(
    {
        "close", "get", "put", "run", "join", "wait", "flush", "write",
        "read", "open", "acquire", "release", "start", "stop", "next",
        "send", "set", "pop", "append", "add", "update", "clear", "copy",
        "items", "keys", "values", "sort",
    }
)


def callee_name(node: ast.Call) -> str | None:
    """The call's terminal name when it is safe to name-match, else None."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        owner = dotted_name(func.value)
        if owner is None:
            return None
        if owner != "self" and func.attr in GENERIC_CALLEES:
            return None
        return func.attr
    return None


@dataclass
class FunctionSymbol:
    """One analyzed function or method."""

    qualname: str  # package.Class.method or package.function
    name: str  # terminal name (the token calls match on)
    path: str  # rel_path of the defining module
    line: int
    class_name: str | None
    callees: set[str] = field(default_factory=set)

    def as_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "class_name": self.class_name,
            "callees": sorted(self.callees),
        }

    @classmethod
    def from_dict(cls, data: dict) -> FunctionSymbol:
        return cls(
            qualname=data["qualname"],
            name=data["name"],
            path=data["path"],
            line=data["line"],
            class_name=data["class_name"],
            callees=set(data["callees"]),
        )


class SymbolCollector(ast.NodeVisitor):
    """Collect :class:`FunctionSymbol` records from one module."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.functions: dict[str, FunctionSymbol] = {}
        self._class_stack: list[str] = []
        self._scope_stack: list[str] = []
        self._function_stack: list[FunctionSymbol] = []

    def collect(self) -> dict[str, FunctionSymbol]:
        """Walk the module tree; returns qualname → symbol."""
        self.visit(self.module.tree)
        return self.functions

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self._scope_stack.append(node.name)
        self.generic_visit(node)
        self._scope_stack.pop()
        self._class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._scope_stack.append(node.name)
        qualname = f"{self.module.package}." + ".".join(self._scope_stack)
        symbol = FunctionSymbol(
            qualname=qualname,
            name=node.name,
            path=self.module.rel_path,
            line=node.lineno,
            class_name=(
                self._class_stack[-1] if self._class_stack else None
            ),
        )
        self.functions[qualname] = symbol
        self._function_stack.append(symbol)
        self.generic_visit(node)
        self._function_stack.pop()
        self._scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._function_stack:
            callee = callee_name(node)
            if callee is not None:
                self._function_stack[-1].callees.add(callee)
        self.generic_visit(node)


class SymbolTable:
    """Project-wide accumulation of per-module function symbols."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionSymbol] = {}
        #: terminal name → qualnames of functions carrying that name.
        self.by_name: dict[str, set[str]] = {}

    def add_module(self, module: ModuleInfo) -> dict[str, FunctionSymbol]:
        """Collect and merge one module's symbols; returns them."""
        collected = SymbolCollector(module).collect()
        self.merge(collected)
        return collected

    def merge(self, functions: dict[str, FunctionSymbol]) -> None:
        """Merge symbols (fresh or cache-restored) into the table."""
        for qualname, symbol in functions.items():
            self.functions[qualname] = symbol
            self.by_name.setdefault(symbol.name, set()).add(qualname)

    def named(self, name: str) -> set[str]:
        """Qualnames of every function with the given terminal name."""
        return self.by_name.get(name, set())
