"""Reporters and the high-level orchestrator for :mod:`repro.analysis`.

:func:`run_analysis` is the one call site the CLI (and the self-check
test) needs: analyze paths, apply the suppression baseline, and return
an :class:`AnalysisResult` that knows how to render itself as text (for
humans) or JSON (for CI and tooling).

The JSON schema is versioned and stable::

    {
      "version": 1,
      "paths": [...],
      "counts": {"total": n, "new": n, "baselined": n, "stale": n},
      "new": [finding...],        # each finding as Finding.as_dict()
      "baselined": [finding...],
      "stale": [{"fingerprint": ..., "justification": ...}, ...],
      "rules": [rule meta...]
    }

``ok`` is true exactly when there are no *new* findings — stale
baseline entries are reported (so the baseline gets pruned) but do not
fail the gate.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineEntry, partition_findings
from repro.analysis.engine import Analyzer, Finding

__all__ = ["AnalysisResult", "run_analysis", "render_text", "render_json"]

#: Bump when the JSON report schema changes shape.
JSON_SCHEMA_VERSION = 1


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    paths: list[str]
    findings: list[Finding]
    new: list[Finding]
    baselined: list[Finding]
    stale: list[BaselineEntry]
    rules: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the gate passes: no findings outside the baseline."""
        return not self.new

    def as_dict(self) -> dict:
        return {
            "version": JSON_SCHEMA_VERSION,
            "paths": list(self.paths),
            "ok": self.ok,
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "stale": len(self.stale),
            },
            "new": [finding.as_dict() for finding in self.new],
            "baselined": [finding.as_dict() for finding in self.baselined],
            "stale": [
                {
                    "fingerprint": entry.fingerprint,
                    "justification": entry.justification,
                }
                for entry in self.stale
            ],
            "rules": list(self.rules),
        }


def render_json(result: AnalysisResult) -> str:
    """The machine-readable report (one JSON document)."""
    return json.dumps(result.as_dict(), indent=2, sort_keys=True)


def _format_finding(finding: Finding) -> str:
    line = (
        f"{finding.path}:{finding.line}:{finding.col}: "
        f"{finding.rule_id} [{finding.severity}] {finding.message}"
    )
    if finding.fix_hint:
        line += f"\n    hint: {finding.fix_hint}"
    line += f"\n    fingerprint: {finding.fingerprint}"
    return line


def render_text(result: AnalysisResult) -> str:
    """The human-readable report."""
    sections: list[str] = []
    if result.new:
        sections.append(
            f"{len(result.new)} new finding(s):\n\n"
            + "\n".join(_format_finding(f) for f in result.new)
        )
    if result.baselined:
        sections.append(
            f"{len(result.baselined)} baselined finding(s) suppressed."
        )
    if result.stale:
        stale_lines = "\n".join(
            f"    {entry.fingerprint}  # {entry.justification}"
            if entry.justification
            else f"    {entry.fingerprint}"
            for entry in result.stale
        )
        sections.append(
            f"{len(result.stale)} stale baseline entr"
            f"{'y' if len(result.stale) == 1 else 'ies'} "
            f"(finding no longer occurs — remove from the baseline):\n"
            + stale_lines
        )
    verdict = (
        "analysis clean."
        if result.ok
        else "analysis FAILED: new findings above are not in the baseline."
    )
    sections.append(verdict)
    return "\n\n".join(sections) + "\n"


def run_analysis(
    paths: Sequence[str | Path],
    *,
    baseline: Baseline | None = None,
    baseline_path: str | Path | None = None,
    baseline_required: bool = True,
    analyzer: Analyzer | None = None,
    only_files: set[Path] | None = None,
) -> AnalysisResult:
    """Analyze ``paths`` and partition findings against the baseline.

    Exactly one of ``baseline`` / ``baseline_path`` may be given; with
    neither, everything found is *new*.  ``baseline_required=False``
    treats a missing ``baseline_path`` as an empty baseline (the CLI
    uses this for its default path, which need not exist).

    ``only_files`` (absolute paths) implements ``--changed``/``--diff``:
    the whole tree is still analyzed — cross-module rules need every
    module's facts, and the cache makes the full pass cheap — but only
    *new* findings located in one of the given files can fail the gate;
    out-of-scope new findings are reported among the baselined ones.
    Stale detection still sees the full tree, so it stays accurate.
    """
    if analyzer is None:
        analyzer = Analyzer()
    if baseline is None:
        if baseline_path is not None:
            baseline = Baseline.load(
                baseline_path, required=baseline_required
            )
        else:
            baseline = Baseline()
    findings = analyzer.run(paths)
    new, baselined = partition_findings(findings, baseline)
    if only_files is not None:
        in_scope = []
        for finding in new:
            absolute = analyzer.file_map.get(finding.path)
            if absolute is not None and absolute in only_files:
                in_scope.append(finding)
            else:
                baselined.append(finding)
        new = in_scope
    return AnalysisResult(
        paths=[str(path) for path in paths],
        findings=findings,
        new=new,
        baselined=baselined,
        stale=baseline.stale_entries(findings),
        rules=[rule.meta() for rule in analyzer.rules],
    )
