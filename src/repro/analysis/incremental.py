"""The incremental analysis engine: per-file caching and changed-file modes.

The blocking CI ``analyze`` job re-reads the whole tree on every run;
as the repo grows, parse + visit cost grows linearly with it.  This
module keys each file's analysis on the sha256 of its *content*:

* **local rules** (everything except the cross-module analyzers) cache
  their findings per file — a cache hit skips the parse and every
  visitor;
* **project rules** (RR006 lock ordering, RR010 hot-path reachability)
  cache their per-module *facts* — symbols, candidate sites, lock
  edges — and re-run only the cheap global solve over the merged
  facts, so a one-file edit never forces a whole-project re-visit and
  cross-module findings stay exact.

The cache is one JSON document under ``.analysis-cache/`` guarded by
:data:`CACHE_GENERATION`; bump the generation whenever rule logic
changes so stale findings can never be replayed.  A corrupt or
mismatched cache file degrades to a cold run, never to an error.

:func:`changed_files` backs the CLI's ``--changed`` / ``--diff BASE``
modes: the full tree is still analyzed (cache-accelerated, so cheap —
project rules need every module's facts), but only findings in files
the diff touches can fail the gate.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path

from repro.analysis.engine import Finding
from repro.errors import AnalysisError

__all__ = [
    "AnalysisCache",
    "CACHE_GENERATION",
    "DEFAULT_CACHE_DIR",
    "changed_files",
    "finding_to_dict",
    "finding_from_dict",
]

#: Bump whenever any rule's logic changes: cached findings/facts from
#: an older generation must never be replayed against new rules.
CACHE_GENERATION = "2026.08.1"

#: Where the cache lives relative to the invocation directory.
DEFAULT_CACHE_DIR = ".analysis-cache"

_CACHE_FILE = "cache.json"


def finding_to_dict(finding: Finding) -> dict:
    """Every field of a finding (the cache's unit, unlike the report's)."""
    return {
        "rule_id": finding.rule_id,
        "severity": finding.severity,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "scope": finding.scope,
        "slug": finding.slug,
        "message": finding.message,
        "fix_hint": finding.fix_hint,
    }


def finding_from_dict(data: dict) -> Finding:
    return Finding(**data)


def source_digest(source: bytes) -> str:
    """The cache key of one file's content."""
    return hashlib.sha256(source).hexdigest()


class AnalysisCache:
    """Content-hash-keyed per-file findings and facts.

    Layout of the persisted document::

        {
          "schema": 1,
          "generation": CACHE_GENERATION,
          "files": {
            "<rel_path>": {
              "digest": "<sha256>",
              "rules": {
                "RR001": {"findings": [...]},      # local rule
                "RR006": {"facts": {...}},         # project rule
                "RR000": {"findings": [...]}        # parse failure
              }
            }
          }
        }
    """

    def __init__(self, directory: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.path = self.directory / _CACHE_FILE
        self.hits = 0
        self.misses = 0
        self._files: dict[str, dict] = self._load()
        self._dirty = False

    def _load(self) -> dict[str, dict]:
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if (
            not isinstance(document, dict)
            or document.get("schema") != 1
            or document.get("generation") != CACHE_GENERATION
        ):
            return {}
        files = document.get("files")
        return files if isinstance(files, dict) else {}

    # -- lookups ----------------------------------------------------------

    def entry(self, rel_path: str, digest: str) -> dict | None:
        """The per-rule cache entry for an unchanged file, else ``None``."""
        cached = self._files.get(rel_path)
        if cached is None or cached.get("digest") != digest:
            return None
        rules = cached.get("rules")
        return rules if isinstance(rules, dict) else None

    def findings(self, entry: dict, rule_id: str) -> list[Finding] | None:
        """Cached local-rule findings from an entry, else ``None``."""
        record = entry.get(rule_id)
        if not isinstance(record, dict) or "findings" not in record:
            return None
        return [finding_from_dict(item) for item in record["findings"]]

    def facts(self, entry: dict, rule_id: str) -> dict | None:
        """Cached project-rule facts from an entry, else ``None``."""
        record = entry.get(rule_id)
        if not isinstance(record, dict) or "facts" not in record:
            return None
        return record["facts"]

    # -- stores -----------------------------------------------------------

    def store_findings(
        self,
        rel_path: str,
        digest: str,
        rule_id: str,
        findings: list[Finding],
    ) -> None:
        rules = self._rules_bucket(rel_path, digest)
        rules[rule_id] = {
            "findings": [finding_to_dict(finding) for finding in findings]
        }
        self._dirty = True

    def store_facts(
        self, rel_path: str, digest: str, rule_id: str, facts: dict | None
    ) -> None:
        rules = self._rules_bucket(rel_path, digest)
        rules[rule_id] = {"facts": facts if facts is not None else {}}
        self._dirty = True

    def _rules_bucket(self, rel_path: str, digest: str) -> dict:
        cached = self._files.get(rel_path)
        if cached is None or cached.get("digest") != digest:
            cached = {"digest": digest, "rules": {}}
            self._files[rel_path] = cached
        return cached["rules"]

    def flush(self) -> None:
        """Persist the cache (atomically: write-then-rename)."""
        if not self._dirty:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": 1,
            "generation": CACHE_GENERATION,
            "files": self._files,
        }
        scratch = self.path.with_suffix(".tmp")
        scratch.write_text(
            json.dumps(document, sort_keys=True), encoding="utf-8"
        )
        scratch.replace(self.path)
        self._dirty = False


def _git_lines(arguments: list[str], repo_root: Path) -> list[str]:
    try:
        completed = subprocess.run(
            ["git", *arguments],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        )
    except FileNotFoundError as error:
        raise AnalysisError("git is not available for --changed/--diff") from error
    except subprocess.SubprocessError as error:
        detail = getattr(error, "stderr", "") or str(error)
        raise AnalysisError(f"git diff failed: {detail.strip()}") from error
    return [line for line in completed.stdout.splitlines() if line.strip()]


def changed_files(
    repo_root: str | Path = ".", base: str | None = None
) -> set[Path]:
    """Absolute paths of files changed vs HEAD (or vs merge-base of
    ``base``), plus uncommitted and untracked changes.

    ``base=None`` is the ``--changed`` mode: the working tree against
    HEAD.  ``base="origin/main"`` is the ``--diff BASE`` mode: the
    triple-dot diff (merge base) plus anything uncommitted, which is
    what a PR check wants.
    """
    root = Path(repo_root).resolve()
    names: set[str] = set()
    if base is not None:
        names.update(_git_lines(["diff", "--name-only", f"{base}...HEAD"], root))
    names.update(_git_lines(["diff", "--name-only", "HEAD"], root))
    names.update(
        _git_lines(["ls-files", "--others", "--exclude-standard"], root)
    )
    return {(root / name).resolve() for name in names}
