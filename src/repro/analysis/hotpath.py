"""RR010: Python-level per-entity work on the substrate hot path.

ROADMAP item 1 — the vectorized substrate engine — needs a worklist:
*which* loops, dict-indexed scores and per-call numpy allocations
actually sit under ``Recommender.fit/predict/recommend/recommend_many``?
This rule computes exactly that.  It is a **project rule**: during the
per-module pass it records, for every function in ``repro.recsys``,
its name-matched callees (:mod:`repro.analysis.symbols`) plus three
families of *candidate* findings; :meth:`finish` then builds the
project call graph (:mod:`repro.analysis.callgraph`), walks
reachability from the hot roots, and emits only the candidates that
can run under a hot entry point.

Candidate families (heuristic by design — this is a ratchet, not a
gate, so every finding is either fixed or carries a justified baseline
entry):

* ``loop-<name>`` — a ``for`` loop or comprehension iterating an
  expression whose terminal name smells per-entity (``users``,
  ``items``, ``ratings_by(...)``, ``candidates``, ``neighbors``…);
* ``subscript-<name>`` — dict-indexed scoring: subscripting a mapping
  with a name bound by an enclosing loop target (``ratings[iid]``
  inside ``for iid in …``);
* ``np-alloc-<ctor>`` — a fresh numpy array materialised per call
  (``np.array``/``asarray``/``zeros``/``ones``/``fromiter``) anywhere
  in a hot-reachable function: per-pair allocation is the allocation
  the batch refactor exists to hoist.

Findings are warnings: the committed baseline *is* the vectorization
worklist, and shrinking it is the ratchet.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Finding, ModuleInfo, Rule, dotted_name
from repro.analysis.symbols import FunctionSymbol, SymbolTable, callee_name

__all__ = ["HotPathVectorizationRule"]

#: Entry points whose transitive callees form the substrate hot path.
_HOT_ROOTS = frozenset({"fit", "predict", "recommend", "recommend_many"})

#: Terminal-name fragments that mark an iterable as per-entity.
_ENTITY_FRAGMENTS = (
    "user", "item", "rating", "candidate", "neighbor", "shopper",
)

#: numpy constructors whose per-call cost the batch refactor hoists.
_NP_ALLOCATORS = frozenset({"array", "asarray", "zeros", "ones", "fromiter"})

_LOOP_NODES = (ast.For, ast.comprehension)


def _entity_terminal(node: ast.expr) -> str | None:
    """The per-entity terminal name of an iterable expression, if any."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
    else:
        name = dotted_name(node)
    if name is None:
        return None
    terminal = name.rsplit(".", 1)[-1]
    lowered = terminal.lower()
    if any(fragment in lowered for fragment in _ENTITY_FRAGMENTS):
        return terminal
    return None


class HotPathVectorizationRule(Rule):
    """RR010: per-entity Python work reachable from the hot entry points."""

    rule_id = "RR010"
    name = "hot-path-vectorization"
    severity = "warning"
    rationale = (
        "A Python-level per-user/per-item loop, per-element dict "
        "lookup, or per-call numpy allocation under "
        "fit/predict/recommend multiplies interpreter overhead by the "
        "world size; the vectorized substrate engine (ROADMAP item 1) "
        "replaces these with batched matrix passes."
    )
    fix_hint = (
        "batch the computation: precompute a contiguous matrix once, "
        "score all entities in one vectorized pass, and hoist "
        "allocations out of the per-call path (see "
        "repro.recsys.similarity pearson_batch/cosine_batch)"
    )
    project_rule = True

    def __init__(self) -> None:
        super().__init__()
        self._table = SymbolTable()
        #: qualname → candidate finding dicts, project-wide.
        self._candidates: dict[str, list[dict]] = {}
        #: per-module facts captured by the last check_module call.
        self._module_facts: dict | None = None
        self._loop_targets: list[set[str]] = []
        self._function_stack: list[str] = []

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package.startswith("repro.recsys")

    # -- per-module collection --------------------------------------------

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        self._module_facts = None
        if not self.applies_to(module):
            return []
        self._loop_targets = []
        self._function_stack = []
        self._module_candidates: dict[str, list[dict]] = {}
        super().check_module(module)
        symbols = self._table.add_module(module)
        self._module_facts = {
            "symbols": {
                qualname: symbol.as_dict()
                for qualname, symbol in symbols.items()
            },
            "candidates": self._module_candidates,
        }
        for qualname, candidates in self._module_candidates.items():
            self._candidates.setdefault(qualname, []).extend(candidates)
        return []

    def export_facts(self) -> dict | None:
        return self._module_facts

    def import_facts(self, facts: dict) -> None:
        self._table.merge(
            {
                qualname: FunctionSymbol.from_dict(data)
                for qualname, data in facts["symbols"].items()
            }
        )
        for qualname, candidates in facts["candidates"].items():
            self._candidates.setdefault(qualname, []).extend(candidates)

    # -- candidate detection ----------------------------------------------

    @property
    def _qualname(self) -> str:
        return f"{self.module.package}.{self.scope}"

    def _candidate(self, node: ast.AST, slug: str, message: str) -> None:
        if not self.in_function:
            return
        self._module_candidates.setdefault(self._qualname, []).append(
            {
                "path": self.module.rel_path,
                "line": getattr(node, "lineno", 0),
                "col": getattr(node, "col_offset", 0),
                "scope": self.scope,
                "slug": slug,
                "message": message,
            }
        )

    def enter_function(self, node: ast.AST) -> None:
        self._loop_targets.append(set())

    def exit_function(self, node: ast.AST) -> None:
        self._loop_targets.pop()

    def _note_loop(self, target: ast.expr, iterable: ast.expr) -> None:
        terminal = _entity_terminal(iterable)
        if terminal is not None:
            self._candidate(
                iterable,
                f"loop-{terminal}",
                f"Python-level loop over `{terminal}` on the hot path",
            )
        if self._loop_targets:
            for child in ast.walk(target):
                if isinstance(child, ast.Name):
                    self._loop_targets[-1].add(child.id)

    def visit_For(self, node: ast.For) -> None:
        self._note_loop(node.target, node.iter)
        self.generic_visit(node)

    def _visit_comprehension_holder(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", ()):
            self._note_loop(comp.target, comp.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_holder(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension_holder(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension_holder(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_holder(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if (
            self._loop_targets
            and self._loop_targets[-1]
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.slice, ast.Name)
            and node.slice.id in self._loop_targets[-1]
        ):
            receiver = dotted_name(node.value)
            if receiver is not None:
                terminal = receiver.rsplit(".", 1)[-1]
                self._candidate(
                    node,
                    f"subscript-{terminal}",
                    f"dict-indexed scoring: `{receiver}[{node.slice.id}]` "
                    "inside a per-entity loop",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and "." in name:
            owner, terminal = name.rsplit(".", 1)
            if owner in ("np", "numpy") and terminal in _NP_ALLOCATORS:
                self._candidate(
                    node,
                    f"np-alloc-{terminal}",
                    f"per-call numpy allocation `{name}(...)` on the "
                    "hot path",
                )
        self.generic_visit(node)

    # -- project resolution -----------------------------------------------

    def finish(self) -> list[Finding]:
        graph = CallGraph(self._table)
        roots = graph.roots(lambda symbol: symbol.name in _HOT_ROOTS)
        hot = graph.reachable_from(roots)
        findings: list[Finding] = []
        for qualname in sorted(self._candidates):
            if qualname not in hot:
                continue
            for candidate in self._candidates[qualname]:
                findings.append(
                    Finding(
                        rule_id=self.rule_id,
                        severity=self.severity,
                        path=candidate["path"],
                        line=candidate["line"],
                        col=candidate["col"],
                        scope=candidate["scope"],
                        slug=candidate["slug"],
                        message=candidate["message"],
                        fix_hint=self.fix_hint,
                    )
                )
        # Project rules are single-use per run.
        self._table = SymbolTable()
        self._candidates = {}
        self._module_facts = None
        return findings
