"""Suppression baselines for :mod:`repro.analysis`.

A baseline is the committed list of *accepted* findings: intentional
exceptions to the rules, each with a human justification.  The analyzer
then fails only on findings **not** in the baseline, which is what makes
a strict rule set adoptable on an existing codebase — you freeze the
known debt and gate every new violation.

File format, one entry per line::

    RR001 repro/obs/sinks.py JsonlSink.emit stream-write-under-lock  # the lock exists to serialise the stream

* the first four whitespace-separated tokens are the finding
  fingerprint (rule id, path, scope, slug — no line numbers, so the
  baseline survives reformatting);
* everything after ``#`` is the justification (required: an exception
  nobody can explain is not an exception, it is a bug);
* blank lines and full-line comments are ignored.

Malformed entries raise :class:`~repro.errors.AnalysisError` — a
baseline that silently drops entries would un-suppress or over-suppress
without anyone noticing.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.engine import Finding
from repro.errors import AnalysisError

__all__ = ["BaselineEntry", "Baseline", "partition_findings"]

#: Number of whitespace-separated tokens in a fingerprint.
_FINGERPRINT_TOKENS = 4


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: its fingerprint plus the justification."""

    fingerprint: str
    justification: str

    def format(self) -> str:
        """The entry's canonical on-disk line."""
        return f"{self.fingerprint}  # {self.justification}"


class Baseline:
    """The set of accepted finding fingerprints."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: list[BaselineEntry] = list(entries)
        self._by_fingerprint = {
            entry.fingerprint: entry for entry in self.entries
        }

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._by_fingerprint

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def parse(cls, text: str, *, origin: str = "<baseline>") -> Baseline:
        """Parse baseline text; malformed lines raise AnalysisError."""
        entries: list[BaselineEntry] = []
        seen: set[str] = set()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            body, _, justification = line.partition("#")
            tokens = body.split()
            if len(tokens) != _FINGERPRINT_TOKENS:
                raise AnalysisError(
                    f"{origin}:{lineno}: malformed baseline entry "
                    f"(expected 'RULE PATH SCOPE SLUG  # why', got "
                    f"{line!r})"
                )
            justification = justification.strip()
            if not justification:
                raise AnalysisError(
                    f"{origin}:{lineno}: baseline entry has no "
                    f"justification comment — every accepted finding "
                    f"must say why it is acceptable"
                )
            fingerprint = " ".join(tokens)
            if fingerprint in seen:
                raise AnalysisError(
                    f"{origin}:{lineno}: duplicate baseline entry "
                    f"{fingerprint!r}"
                )
            seen.add(fingerprint)
            entries.append(BaselineEntry(fingerprint, justification))
        return cls(entries)

    @classmethod
    def load(cls, path: str | Path, *, required: bool = True) -> Baseline:
        """Load a baseline file.

        With ``required=False`` a missing file yields an empty baseline
        (the default path simply may not exist yet); with
        ``required=True`` it raises, because an explicitly named
        baseline that is absent is an operator error, not an empty set.
        """
        path = Path(path)
        if not path.exists():
            if required:
                raise AnalysisError(f"baseline file not found: {path}")
            return cls()
        return cls.parse(
            path.read_text(encoding="utf-8"), origin=str(path)
        )

    def stale_entries(
        self, findings: Sequence[Finding]
    ) -> list[BaselineEntry]:
        """Entries whose finding no longer occurs (candidates to delete)."""
        live = {finding.fingerprint for finding in findings}
        return [
            entry
            for entry in self.entries
            if entry.fingerprint not in live
        ]

    def format(self, header: str | None = None) -> str:
        """Render the baseline back to its on-disk text."""
        lines: list[str] = []
        if header:
            lines.extend(f"# {line}".rstrip() for line in header.splitlines())
            lines.append("")
        lines.extend(entry.format() for entry in self.entries)
        return "\n".join(lines) + "\n"


def partition_findings(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, baselined)`` against a baseline."""
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        if finding.fingerprint in baseline:
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
