"""repro.analysis — the stack's self-hosted static analyzer.

The rest of the repro stack is built around invariants that Python will
not enforce for you: locks are held briefly and never across blocking
calls, randomness under the resilience/serving/evaluation layers is
seeded (determinism is what makes chaos tests and studies replayable),
metric internals mutate only behind their locked helpers, the
serving/resilience layers raise the :mod:`repro.errors` taxonomy rather
than bare builtins, every :class:`ExplainedRecommendation` says
whether it is degraded, and every spawned worker thread or process has
a join/terminate path.  This package checks those invariants as AST
lints — rules RR001–RR009, including the RR006 cross-module
lock-ordering analyzer — and gates them in CI via
``python -m repro analyze``.

Findings are matched against a committed suppression baseline
(``analysis-baseline.txt``) so intentional exceptions are explicit and
justified while every *new* violation fails the build.

>>> from repro.analysis import run_analysis
>>> result = run_analysis(["src/repro"], baseline_path="analysis-baseline.txt")
>>> result.ok
True
"""

from repro.analysis.baseline import Baseline, BaselineEntry, partition_findings
from repro.analysis.engine import (
    Analyzer,
    Finding,
    ModuleInfo,
    Rule,
    analyze_source,
)
from repro.analysis.lockgraph import LockOrderingRule
from repro.analysis.report import (
    AnalysisResult,
    render_json,
    render_text,
    run_analysis,
)
from repro.analysis.rules import (
    BlockingCallUnderLockRule,
    ExceptionDisciplineRule,
    MetricInternalsRule,
    OrphanedWorkerRule,
    TypedApiRule,
    UnseededRandomnessRule,
    default_rules,
)

__all__ = [
    "Analyzer",
    "AnalysisResult",
    "Baseline",
    "BaselineEntry",
    "BlockingCallUnderLockRule",
    "ExceptionDisciplineRule",
    "Finding",
    "LockOrderingRule",
    "MetricInternalsRule",
    "ModuleInfo",
    "OrphanedWorkerRule",
    "Rule",
    "TypedApiRule",
    "UnseededRandomnessRule",
    "analyze_source",
    "default_rules",
    "partition_findings",
    "render_json",
    "render_text",
    "run_analysis",
]
