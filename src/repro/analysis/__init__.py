"""repro.analysis — the stack's self-hosted static analyzer.

The rest of the repro stack is built around invariants that Python will
not enforce for you: locks are held briefly and never across blocking
calls, randomness under the resilience/serving/evaluation layers is
seeded (determinism is what makes chaos tests and studies replayable),
metric internals mutate only behind their locked helpers, the
serving/resilience layers raise the :mod:`repro.errors` taxonomy rather
than bare builtins, every :class:`ExplainedRecommendation` says
whether it is degraded, and every spawned worker thread or process has
a join/terminate path.  This package checks those invariants as AST
lints — rules RR001–RR012, including three dataflow-backed analyses —
and gates them in CI via ``python -m repro analyze``.

The analysis pipeline, bottom to top:

* :mod:`~repro.analysis.symbols` — per-module symbol table with
  name-matched callee extraction;
* :mod:`~repro.analysis.callgraph` — the project call graph and
  reachability queries over it (RR010's hot-path set);
* :mod:`~repro.analysis.cfg` — per-function control-flow graphs and a
  forward worklist dataflow solver (RR012's release-on-all-paths
  proof);
* :mod:`~repro.analysis.incremental` — content-hash cache under
  ``.analysis-cache/`` plus the ``--changed`` / ``--diff BASE`` file
  filters;
* the rules themselves (:mod:`~repro.analysis.rules`,
  :mod:`~repro.analysis.lockgraph`, :mod:`~repro.analysis.hotpath`,
  :mod:`~repro.analysis.payloads`, :mod:`~repro.analysis.resources`).

Findings are matched against a committed suppression baseline
(``analysis-baseline.txt``) so intentional exceptions are explicit and
justified while every *new* violation fails the build.

>>> from repro.analysis import run_analysis
>>> result = run_analysis(["src/repro"], baseline_path="analysis-baseline.txt")
>>> result.ok
True
"""

from repro.analysis.baseline import Baseline, BaselineEntry, partition_findings
from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import (
    ControlFlowGraph,
    DataflowProblem,
    build_cfg,
    reaching_definitions,
    solve_forward,
)
from repro.analysis.engine import (
    Analyzer,
    Finding,
    ModuleInfo,
    Rule,
    analyze_source,
)
from repro.analysis.hotpath import HotPathVectorizationRule
from repro.analysis.incremental import AnalysisCache, changed_files
from repro.analysis.lockgraph import LockOrderingRule
from repro.analysis.payloads import WirePayloadRule
from repro.analysis.report import (
    AnalysisResult,
    render_json,
    render_text,
    run_analysis,
)
from repro.analysis.resources import ResourceLifecycleRule
from repro.analysis.rules import (
    RULE_REGISTRY,
    BlockingCallUnderLockRule,
    ExceptionDisciplineRule,
    MetricInternalsRule,
    OrphanedWorkerRule,
    TypedApiRule,
    UnseededRandomnessRule,
    default_rules,
)
from repro.analysis.symbols import SymbolTable

__all__ = [
    "AnalysisCache",
    "AnalysisResult",
    "Analyzer",
    "Baseline",
    "BaselineEntry",
    "BlockingCallUnderLockRule",
    "CallGraph",
    "ControlFlowGraph",
    "DataflowProblem",
    "ExceptionDisciplineRule",
    "Finding",
    "HotPathVectorizationRule",
    "LockOrderingRule",
    "MetricInternalsRule",
    "ModuleInfo",
    "OrphanedWorkerRule",
    "RULE_REGISTRY",
    "ResourceLifecycleRule",
    "Rule",
    "SymbolTable",
    "TypedApiRule",
    "UnseededRandomnessRule",
    "WirePayloadRule",
    "analyze_source",
    "build_cfg",
    "changed_files",
    "default_rules",
    "partition_findings",
    "reaching_definitions",
    "render_json",
    "render_text",
    "run_analysis",
    "solve_forward",
]
