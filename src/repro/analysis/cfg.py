"""Per-function control-flow graphs and the iterative dataflow solver.

Third layer of the dataflow pipeline (symbol table → call graph →
**CFG → solver** → rules).  :func:`build_cfg` lowers one function body
into basic blocks connected by explicit control-flow edges:

* ``if``/``else`` branch and re-join;
* ``while``/``for`` loop back-edges, with ``break``/``continue``
  resolved against the innermost loop;
* ``return``/``raise`` edges to the exit block — routed *through* the
  innermost enclosing ``finally`` body when there is one, which is what
  lets a must-release analysis credit ``finally: handle.close()`` on
  every early exit;
* coarse exceptional edges out of every ``try`` body block into each
  handler and into the ``finally`` body (any statement may raise; the
  lint does not model *which* exception).

The graph is an approximation, not an interpreter: ``finally`` bodies
are shared rather than duplicated per exit kind, and implicit
exceptions outside ``try`` are not modelled.  That is the standard
lint trade — every pattern the rules promise to catch (leak on an
early return, release only on one branch, release in ``finally``) maps
onto real paths in this graph, and the fixture tests pin those shapes.

:func:`solve_forward` is a classic iterative worklist solver over a
:class:`DataflowProblem` (join + transfer to a fixpoint).
:class:`ReachingDefinitions` instantiates it for the canonical
textbook fact; :mod:`repro.analysis.resources` instantiates it for the
path-sensitive "released on all exits" facts RR012 enforces.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "Block",
    "ControlFlowGraph",
    "build_cfg",
    "DataflowProblem",
    "solve_forward",
    "ReachingDefinitions",
    "reaching_definitions",
    "assigned_names",
]


@dataclass
class Block:
    """One basic block: straight-line statements plus successor edges."""

    block_id: int
    kind: str = "body"
    statements: list[ast.AST] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)


class ControlFlowGraph:
    """Blocks, the entry/exit pair, and derived predecessor edges."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self._next_id = 0
        self.entry = self.new_block("entry").block_id
        self.exit = self.new_block("exit").block_id

    def new_block(self, kind: str = "body") -> Block:
        block = Block(block_id=self._next_id, kind=kind)
        self._next_id += 1
        self.blocks[block.block_id] = block
        return block

    def add_edge(self, source: int, target: int) -> None:
        self.blocks[source].successors.add(target)

    def predecessors(self) -> dict[int, set[int]]:
        """Predecessor sets derived from the successor edges."""
        preds: dict[int, set[int]] = {bid: set() for bid in self.blocks}
        for block in self.blocks.values():
            for target in block.successors:
                preds[target].add(block.block_id)
        return preds


class _Builder:
    """Lower a statement list into blocks, tracking loop/finally context."""

    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        self.current = self.cfg.blocks[self.cfg.entry]
        #: (loop-head block id, after-loop block id) innermost last.
        self._loops: list[tuple[int, int]] = []
        #: Entry block ids of active ``finally`` bodies, innermost last.
        self._finallies: list[int] = []

    # -- plumbing ---------------------------------------------------------

    def _start_block(self, kind: str = "body") -> Block:
        block = self.cfg.new_block(kind)
        return block

    def _terminate_into(self, target: int) -> None:
        """Edge from the current block to ``target``; detach current."""
        self.cfg.add_edge(self.current.block_id, target)
        # Anything after an unconditional jump is unreachable; give it a
        # fresh, unconnected block so lowering can continue.
        self.current = self._start_block("unreachable")

    def _exit_target(self) -> int:
        """Where an early function exit goes: innermost finally, or exit."""
        if self._finallies:
            return self._finallies[-1]
        return self.cfg.exit

    # -- statement lowering -----------------------------------------------

    def lower(self, body: list[ast.stmt]) -> ControlFlowGraph:
        self._lower_body(body)
        self.cfg.add_edge(self.current.block_id, self.cfg.exit)
        return self.cfg

    def _lower_body(self, body: list[ast.stmt]) -> None:
        for statement in body:
            self._lower_statement(statement)

    def _lower_statement(self, node: ast.stmt) -> None:
        if isinstance(node, ast.If):
            self._lower_if(node)
        elif isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            self._lower_loop(node)
        elif isinstance(node, ast.Try) or node.__class__.__name__ == "TryStar":
            self._lower_try(node)  # type: ignore[arg-type]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._lower_with(node)
        elif isinstance(node, ast.Return):
            self.current.statements.append(node)
            self._terminate_into(self._exit_target())
        elif isinstance(node, ast.Raise):
            self.current.statements.append(node)
            self._terminate_into(self._exit_target())
        elif isinstance(node, ast.Break):
            if self._loops:
                self._terminate_into(self._loops[-1][1])
        elif isinstance(node, ast.Continue):
            if self._loops:
                self._terminate_into(self._loops[-1][0])
        elif node.__class__.__name__ == "Match":
            self._lower_match(node)
        else:
            # Simple statements — including nested def/class, whose
            # bodies belong to their *own* CFGs.
            self.current.statements.append(node)

    def _lower_if(self, node: ast.If) -> None:
        self.current.statements.append(node.test)
        condition = self.current
        after = self._start_block("join")
        then_entry = self._start_block("then")
        self.cfg.add_edge(condition.block_id, then_entry.block_id)
        self.current = then_entry
        self._lower_body(node.body)
        self.cfg.add_edge(self.current.block_id, after.block_id)
        if node.orelse:
            else_entry = self._start_block("else")
            self.cfg.add_edge(condition.block_id, else_entry.block_id)
            self.current = else_entry
            self._lower_body(node.orelse)
            self.cfg.add_edge(self.current.block_id, after.block_id)
        else:
            self.cfg.add_edge(condition.block_id, after.block_id)
        self.current = after

    def _lower_loop(self, node: ast.While | ast.For | ast.AsyncFor) -> None:
        head = self._start_block("loop-head")
        if isinstance(node, ast.While):
            head.statements.append(node.test)
        else:
            head.statements.append(node.iter)
            head.statements.append(node.target)
        self.cfg.add_edge(self.current.block_id, head.block_id)
        after = self._start_block("loop-after")
        body_entry = self._start_block("loop-body")
        self.cfg.add_edge(head.block_id, body_entry.block_id)
        self.cfg.add_edge(head.block_id, after.block_id)
        self._loops.append((head.block_id, after.block_id))
        self.current = body_entry
        self._lower_body(node.body)
        self.cfg.add_edge(self.current.block_id, head.block_id)
        self._loops.pop()
        if node.orelse:
            else_entry = self._start_block("loop-else")
            self.cfg.add_edge(head.block_id, else_entry.block_id)
            self.current = else_entry
            self._lower_body(node.orelse)
            self.cfg.add_edge(self.current.block_id, after.block_id)
        self.current = after

    def _lower_with(self, node: ast.With | ast.AsyncWith) -> None:
        # The context expressions evaluate in order in the current
        # block; the body runs inline.  ``with`` guarantees __exit__, so
        # resources it manages never need path tracking — the resources
        # rule recognises withitem-bound names and skips them.
        for item in node.items:
            self.current.statements.append(item)
        self._lower_body(node.body)

    def _lower_try(self, node: ast.Try) -> None:
        after = self._start_block("join")
        finally_entry: Block | None = None
        if node.finalbody:
            finally_entry = self._start_block("finally")
        handler_entries: list[Block] = [
            self._start_block("handler") for _ in node.handlers
        ]

        body_entry = self._start_block("try")
        self.cfg.add_edge(self.current.block_id, body_entry.block_id)
        self.current = body_entry
        if finally_entry is not None:
            self._finallies.append(finally_entry.block_id)
        before = set(self.cfg.blocks)
        self._lower_body(node.body)
        try_blocks = [
            bid
            for bid in self.cfg.blocks
            if bid not in before or bid == body_entry.block_id
        ]
        # Coarse exceptional edges: any statement in the try body may
        # raise, transferring control to each handler (and to finally).
        for bid in try_blocks:
            if self.cfg.blocks[bid].kind == "unreachable":
                continue
            for handler_entry in handler_entries:
                self.cfg.add_edge(bid, handler_entry.block_id)
            if finally_entry is not None:
                # An exception no handler matches still runs finally.
                self.cfg.add_edge(bid, finally_entry.block_id)
        try_end = self.current

        if node.orelse:
            else_entry = self._start_block("try-else")
            self.cfg.add_edge(try_end.block_id, else_entry.block_id)
            self.current = else_entry
            self._lower_body(node.orelse)
            try_end = self.current

        normal_out = (
            finally_entry.block_id if finally_entry is not None else after.block_id
        )
        self.cfg.add_edge(try_end.block_id, normal_out)

        for handler, handler_entry in zip(node.handlers, handler_entries):
            self.current = handler_entry
            if handler.type is not None:
                handler_entry.statements.append(handler.type)
            self._lower_body(handler.body)
            self.cfg.add_edge(self.current.block_id, normal_out)
            if finally_entry is not None:
                # An exception raised *inside* the handler still runs
                # the finally body.
                self.cfg.add_edge(handler_entry.block_id, finally_entry.block_id)

        if finally_entry is not None:
            self._finallies.pop()
            self.current = finally_entry
            self._lower_body(node.finalbody)
            self.cfg.add_edge(self.current.block_id, after.block_id)
            # The finally body also sits on every abrupt-exit path
            # (return/raise routed here above): it flows on to exit.
            self.cfg.add_edge(self.current.block_id, self.cfg.exit)
        self.current = after

    def _lower_match(self, node: ast.AST) -> None:
        subject = self.current
        subject.statements.append(node.subject)  # type: ignore[attr-defined]
        after = self._start_block("join")
        for case in node.cases:  # type: ignore[attr-defined]
            case_entry = self._start_block("case")
            self.cfg.add_edge(subject.block_id, case_entry.block_id)
            self.current = case_entry
            self._lower_body(case.body)
            self.cfg.add_edge(self.current.block_id, after.block_id)
        # No case may match at all.
        self.cfg.add_edge(subject.block_id, after.block_id)
        self.current = after


def build_cfg(node: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """The control-flow graph of one function's body."""
    return _Builder().lower(node.body)


class DataflowProblem:
    """A forward dataflow problem: lattice join + block transfer.

    Facts are frozensets (the solver only needs ``|`` semantics via
    :meth:`join` and equality).  Subclasses define what enters the
    entry block, how facts merge at joins, and how one block transforms
    the incoming fact set.
    """

    def initial(self) -> frozenset:
        """The fact set entering the CFG's entry block."""
        return frozenset()

    def join(self, facts: list[frozenset]) -> frozenset:
        """Merge facts at a control-flow join (default: may-union)."""
        merged: frozenset = frozenset()
        for fact in facts:
            merged = merged | fact
        return merged

    def transfer(self, block: Block, entering: frozenset) -> frozenset:
        """The fact set leaving ``block`` given the set entering it."""
        return entering


def solve_forward(
    cfg: ControlFlowGraph, problem: DataflowProblem
) -> dict[int, tuple[frozenset, frozenset]]:
    """Iterate ``problem`` over ``cfg`` to a fixpoint.

    Returns block id → ``(in_facts, out_facts)``.  The worklist is
    seeded in block-id order and processed deterministically, so two
    runs over the same function always converge identically.
    """
    preds = cfg.predecessors()
    in_facts: dict[int, frozenset] = {bid: frozenset() for bid in cfg.blocks}
    out_facts: dict[int, frozenset] = {bid: frozenset() for bid in cfg.blocks}
    in_facts[cfg.entry] = problem.initial()
    out_facts[cfg.entry] = problem.transfer(
        cfg.blocks[cfg.entry], in_facts[cfg.entry]
    )
    worklist: deque[int] = deque(sorted(cfg.blocks))
    queued = set(worklist)
    while worklist:
        bid = worklist.popleft()
        queued.discard(bid)
        block = cfg.blocks[bid]
        incoming = [out_facts[p] for p in sorted(preds[bid])]
        if bid == cfg.entry:
            entering = problem.initial()
        else:
            entering = problem.join(incoming) if incoming else frozenset()
        leaving = problem.transfer(block, entering)
        in_facts[bid] = entering
        if leaving != out_facts[bid]:
            out_facts[bid] = leaving
            for successor in sorted(block.successors):
                if successor not in queued:
                    worklist.append(successor)
                    queued.add(successor)
    return {
        bid: (in_facts[bid], out_facts[bid]) for bid in sorted(cfg.blocks)
    }


def assigned_names(node: ast.AST) -> list[str]:
    """Plain names bound by an assignment-like AST node."""
    names: list[str] = []

    def collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect_target(element)
        elif isinstance(target, ast.Starred):
            collect_target(target.value)

    if isinstance(node, ast.Assign):
        for target in node.targets:
            collect_target(target)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        collect_target(node.target)
    elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
        names.append(node.id)
    elif isinstance(node, ast.withitem) and node.optional_vars is not None:
        collect_target(node.optional_vars)
    return names


class ReachingDefinitions(DataflowProblem):
    """The textbook fact: which ``(name, block, index)`` definitions
    reach each block.

    A definition is any name binding the block contains (assignments,
    loop targets, withitem ``as`` names).  Later definitions of the
    same name kill earlier ones within a block; at joins the sets
    union (a definition reaching on *any* path reaches the join).
    """

    def transfer(self, block: Block, entering: frozenset) -> frozenset:
        facts = set(entering)
        for index, statement in enumerate(block.statements):
            bound = assigned_names(statement)
            for name in bound:
                facts = {f for f in facts if f[0] != name}
                facts.add((name, block.block_id, index))
        return frozenset(facts)


def reaching_definitions(
    cfg: ControlFlowGraph,
) -> dict[int, tuple[frozenset, frozenset]]:
    """Solve :class:`ReachingDefinitions` over ``cfg``."""
    return solve_forward(cfg, ReachingDefinitions())
