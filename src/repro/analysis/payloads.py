"""RR011: shard-pipe messages go through typed wire constructors.

The shard fleet's parent and workers talk over multiprocessing pipes.
When each send site invents its own bare tuple (``handle.send(("stop",))``,
``_send(evt, ("hb", payload))``), the protocol exists only as an
implicit agreement scattered across three modules — adding a field,
reordering one, or mistyping a tag is invisible until a worker
mis-dispatches in production.  :mod:`repro.serving.wire` is the single
versioned source of truth: constructors validate and build every
message, parsers validate every receive.  This rule keeps it that way
by flagging any *tuple literal* passed to a pipe-send call
(``send`` / ``dispatch`` / ``_send``) inside the fleet modules.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleInfo, Rule, dotted_name

__all__ = ["WirePayloadRule"]

#: Call terminal names that put a payload on a shard pipe.
_SEND_CALLS = frozenset({"send", "dispatch", "_send"})

#: The fleet modules whose pipe traffic the rule polices.
_SCOPED_MODULES = (
    "repro.serving.sharding",
    "repro.serving.worker",
    "repro.serving.router",
)


class WirePayloadRule(Rule):
    """RR011: no bare tuple literals at shard-pipe send sites."""

    rule_id = "RR011"
    name = "wire-payload-discipline"
    severity = "error"
    rationale = (
        "A bare tuple invented at the send site is an untyped, "
        "unversioned wire message: nothing checks its shape matches "
        "what the other end unpacks, so protocol drift surfaces as a "
        "mis-dispatch in a worker process instead of a test failure."
    )
    fix_hint = (
        "construct the message with the matching repro.serving.wire "
        "constructor (req_message, hb_message, ...) so it is validated "
        "and versioned in one place"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package in _SCOPED_MODULES

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        terminal = name.rsplit(".", 1)[-1] if name else None
        if terminal in _SEND_CALLS:
            for argument in node.args:
                if isinstance(argument, ast.Tuple):
                    kind = self._message_kind(argument)
                    slug = (
                        f"bare-{kind}" if kind is not None else "bare-tuple"
                    )
                    label = f'("{kind}", ...)' if kind else "a tuple literal"
                    self.report(
                        argument,
                        f"bare wire payload {label} built at the "
                        f"`{terminal}` site instead of a typed "
                        "repro.serving.wire constructor",
                        slug=slug,
                    )
        self.generic_visit(node)

    @staticmethod
    def _message_kind(node: ast.Tuple) -> str | None:
        """The message tag when the tuple leads with a string literal."""
        if node.elts and isinstance(node.elts[0], ast.Constant):
            value = node.elts[0].value
            if isinstance(value, str):
                return value
        return None
