"""Project-specific rules RR001–RR005.

Each rule encodes one invariant PRs 1–3 left as tribal knowledge:

* **RR001** — no blocking calls while holding a lock (the serving and
  observability layers run under heavy thread contention; a sleep or
  unbounded queue operation inside a lock scope serialises the stack);
* **RR002** — no unseeded randomness under ``repro.resilience`` /
  ``repro.serving`` / ``repro.evaluation`` (seeded determinism is what
  makes chaos studies and simulated user studies reproducible);
* **RR003** — metric/tracer internals are mutated only through the
  locked helpers inside :mod:`repro.obs` (direct pokes bypass the locks
  PR 3 added and corrupt expositions under concurrency);
* **RR004** — exception discipline: no bare ``except`` anywhere; no
  swallow-everything ``except Exception/BaseException`` and no builtin
  exception raises outside the :mod:`repro.errors` taxonomy in the
  resilience/serving paths (retry/fallback classification only works on
  the taxonomy);
* **RR005** — the typed-API gate: public functions in the concurrency
  stack carry full type annotations, and every
  ``ExplainedRecommendation`` construction states its ``degraded`` flag
  explicitly (the paper's seven aims are only evaluable when degraded
  output is labelled as such);
* **RR007** — scrutability invalidation: a method under
  ``repro.interaction`` that writes user preference state (profile
  edits, ratings, critique requirements) must notify a change channel
  (``on_change`` subscribers / ``invalidate_user``), directly or via a
  sibling method, so the cache layer can drop answers computed from
  the old preferences;
* **RR008** — durability write-through: the same watched preference
  writes must also reach the event log (``self._journal`` /
  ``self.event_log.append``) **before** the in-memory mutation, so a
  crash between journal and mutation replays the event instead of
  losing an acknowledged interaction;
* **RR009** — no orphaned workers: every thread/process created under
  ``repro.serving`` must have a join/terminate path reachable from the
  class's close/stop/drain route (or the creating scope itself), so a
  drain can actually account for every worker it claims to stop.

The cross-module lock-ordering analyzer (RR006) lives in
:mod:`repro.analysis.lockgraph`; the dataflow-backed rules live in
their own modules — RR010 in :mod:`repro.analysis.hotpath`, RR011 in
:mod:`repro.analysis.payloads`, RR012 in
:mod:`repro.analysis.resources` — and are registered here.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Rule,
    dotted_name,
    lock_label,
)
from repro.analysis.hotpath import HotPathVectorizationRule
from repro.analysis.lockgraph import LockOrderingRule
from repro.analysis.payloads import WirePayloadRule
from repro.analysis.resources import ResourceLifecycleRule
from repro.errors import AnalysisError

__all__ = [
    "BlockingCallUnderLockRule",
    "UnseededRandomnessRule",
    "MetricInternalsRule",
    "ExceptionDisciplineRule",
    "TypedApiRule",
    "MissingInvalidationRule",
    "MissingWriteThroughRule",
    "OrphanedWorkerRule",
    "LockOrderingRule",
    "HotPathVectorizationRule",
    "WirePayloadRule",
    "ResourceLifecycleRule",
    "RULE_REGISTRY",
    "default_rules",
]


def _has_keyword(node: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in node.keywords)


def _keyword_is_false(node: ast.Call, name: str) -> bool:
    for kw in node.keywords:
        if kw.arg == name:
            return (
                isinstance(kw.value, ast.Constant) and kw.value.value is False
            )
    return False


class BlockingCallUnderLockRule(Rule):
    """RR001: blocking calls while holding a lock.

    Tracks ``with <lock>:`` scopes (anything whose context expression
    names a lock/mutex/semaphore) and flags calls inside them that can
    block indefinitely or for a scheduler-visible time: ``sleep``,
    ``open``, unbounded ``queue.get``/``queue.put``, event waits with no
    timeout, thread joins, and stream I/O.  The lock-hold stack resets
    at nested function definitions — a closure defined under a lock does
    not run under it.
    """

    rule_id = "RR001"
    name = "blocking-call-under-lock"
    severity = "error"
    rationale = (
        "A blocking call inside a lock scope serialises every thread "
        "that touches the lock; under the serving layer's contention "
        "this turns one slow request into a stack-wide stall."
    )
    fix_hint = (
        "move the blocking call outside the lock scope, or make it "
        "non-blocking (put_nowait / get_nowait / a timeout)"
    )

    #: Stream/file-like owner-name fragments for the I/O checks.
    _IO_OWNERS = ("stream", "file", "sock", "fh")
    _THREAD_OWNERS = ("thread", "worker", "proc")

    def __init__(self) -> None:
        super().__init__()
        self._held: list[str] = []
        self._saved: list[list[str]] = []

    def enter_function(self, node: ast.AST) -> None:
        self._saved.append(self._held)
        self._held = []

    def exit_function(self, node: ast.AST) -> None:
        self._held = self._saved.pop()

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        labels = []
        for item in node.items:
            label = lock_label(item.context_expr, self.current_class)
            if label is not None:
                labels.append(label)
        self._held.extend(labels)
        self.generic_visit(node)
        if labels:
            del self._held[-len(labels):]

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _blocking(self, node: ast.Call) -> tuple[str, str] | None:
        """``(slug, description)`` when the call can block, else ``None``."""
        func = node.func
        name = dotted_name(func)
        if name is not None:
            terminal = name.rsplit(".", 1)[-1]
            if terminal in ("sleep", "_sleep"):
                return name, f"sleep ({name})"
            if name == "open":
                return "open", "file I/O (open)"
        if not isinstance(func, ast.Attribute):
            return None
        owner = (dotted_name(func.value) or "").lower()
        attr = func.attr
        slug = f"{dotted_name(func.value) or '?'}.{attr}"
        if attr in ("get", "put") and "queue" in owner:
            if not _has_keyword(node, "timeout") and not _keyword_is_false(
                node, "block"
            ):
                return slug, f"unbounded queue {attr} ({slug})"
        if attr == "join" and any(t in owner for t in self._THREAD_OWNERS):
            return slug, f"thread join ({slug})"
        if attr == "wait" and not node.args and not _has_keyword(
            node, "timeout"
        ):
            return slug, f"wait with no timeout ({slug})"
        if attr in ("write", "flush", "read", "readline", "readlines") and any(
            t in owner for t in self._IO_OWNERS
        ):
            return slug, f"stream I/O ({slug})"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if self._held:
            hit = self._blocking(node)
            if hit is not None:
                slug, description = hit
                self.report(
                    node,
                    f"{description} while holding {self._held[-1]}",
                    slug,
                )
        self.generic_visit(node)


class UnseededRandomnessRule(Rule):
    """RR002: unseeded randomness in the determinism-critical packages.

    Under ``repro.resilience`` / ``repro.serving`` / ``repro.evaluation``
    every random stream must be seeded: chaos fault plans, retry jitter,
    traffic drivers and simulated user cohorts all promise that the same
    seed replays the same run.  Flags calls on the module-global
    :mod:`random` RNG, ``random.Random()`` with no seed, unseeded
    ``default_rng()``, and the legacy ``np.random.*`` global functions.
    """

    rule_id = "RR002"
    name = "unseeded-randomness"
    severity = "error"
    rationale = (
        "Chaos studies, retry jitter and simulated cohorts are only "
        "reproducible when every random stream is derived from an "
        "explicit seed; the module-global RNG is seeded by the OS."
    )
    fix_hint = (
        "construct random.Random(seed) / np.random.default_rng(seed) "
        "from an explicit seed parameter and thread it through"
    )

    _SCOPES = ("repro.resilience", "repro.serving", "repro.evaluation")
    _GLOBAL_FUNCS = frozenset(
        {
            "random", "randint", "randrange", "choice", "choices",
            "shuffle", "uniform", "sample", "gauss", "normalvariate",
            "expovariate", "betavariate", "triangular", "randbytes",
            "getrandbits",
        }
    )
    _NP_LEGACY = frozenset(
        {"rand", "randn", "randint", "random", "choice", "shuffle",
         "permutation", "uniform", "normal"}
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package.startswith(self._SCOPES)

    def _is_seeded(self, node: ast.Call) -> bool:
        return bool(node.args) or bool(node.keywords)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            terminal = parts[-1]
            prefix = ".".join(parts[:-1])
            if prefix == "random" and terminal in self._GLOBAL_FUNCS:
                self.report(
                    node,
                    f"call to the module-global RNG ({name}) is never "
                    f"seeded per run",
                    name,
                )
            elif name in ("random.Random", "Random") and not self._is_seeded(
                node
            ):
                self.report(
                    node,
                    "random.Random() constructed without a seed",
                    "Random",
                )
            elif terminal == "default_rng" and prefix.endswith(
                "random"
            ) and not self._is_seeded(node):
                self.report(
                    node,
                    f"{name}() constructed without a seed",
                    name,
                )
            elif prefix in ("np.random", "numpy.random") and (
                terminal in self._NP_LEGACY
            ):
                self.report(
                    node,
                    f"legacy numpy global RNG call ({name}) is never "
                    f"seeded per run",
                    name,
                )
        self.generic_visit(node)


class MetricInternalsRule(Rule):
    """RR003: metric/tracer internals mutated outside :mod:`repro.obs`.

    The PR-3 thread-hardening put every mutation of instrument state
    behind per-metric locks inside ``repro.obs``; code anywhere else
    writing ``_value`` / ``_bucket_counts`` / ``_series`` / ``_metrics``
    / ``_sink`` bypasses those locks and can corrupt a concurrent
    exposition.
    """

    rule_id = "RR003"
    name = "metric-internals-mutation"
    severity = "error"
    rationale = (
        "Instrument state is guarded by per-metric locks inside "
        "repro.obs; a direct write from outside skips the lock and can "
        "tear a concurrent exposition or lose updates."
    )
    fix_hint = (
        "use the instrument API (inc/set/observe) or the registry/"
        "tracer helpers instead of poking private state"
    )

    _PROTECTED = frozenset(
        {"_value", "_sum", "_count", "_bucket_counts", "_series",
         "_metrics", "_sink"}
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return not module.package.startswith("repro.obs")

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)
            return
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and target.attr in self._PROTECTED
        ):
            owner = dotted_name(target.value) or "?"
            self.report(
                target,
                f"direct mutation of instrument internal "
                f"{owner}.{target.attr} outside repro.obs",
                f"{owner}.{target.attr}",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)


class ExceptionDisciplineRule(Rule):
    """RR004: exception discipline in the resilience/serving paths.

    Three checks:

    * bare ``except:`` — flagged **everywhere** (it swallows
      ``KeyboardInterrupt`` and ``SystemExit``);
    * ``except Exception`` / ``except BaseException`` inside
      ``repro.resilience`` / ``repro.serving`` whose handler does not
      re-raise — the retry/fallback machinery classifies errors by the
      :mod:`repro.errors` taxonomy, so swallowing everything defeats it;
    * ``raise <builtin error>`` in those packages for builtins outside
      the small allowed set (``ValueError``/``TypeError``/
      ``NotImplementedError`` for programming-contract violations) —
      operational failures must come from the taxonomy so fallback
      chains can classify them.
    """

    rule_id = "RR004"
    name = "exception-discipline"
    severity = "error"
    rationale = (
        "Retry, breaker and fallback decisions classify exceptions by "
        "the repro.errors taxonomy; bare/overbroad handlers and stray "
        "builtin raises make failures invisible to that classification."
    )
    fix_hint = (
        "catch ReproError (or a precise subclass), re-raise what you "
        "cannot handle, and raise taxonomy errors for operational "
        "failures"
    )

    _SCOPES = ("repro.resilience", "repro.serving")
    _ALLOWED_RAISES = frozenset(
        {"ValueError", "TypeError", "NotImplementedError",
         "AssertionError", "StopIteration", "KeyboardInterrupt",
         "SystemExit", "SystemError"}
    )
    _BUILTIN_ERRORS = frozenset(
        {"Exception", "BaseException", "RuntimeError", "KeyError",
         "IndexError", "LookupError", "OSError", "IOError",
         "AttributeError", "ArithmeticError", "ZeroDivisionError",
         "FileNotFoundError", "PermissionError", "TimeoutError",
         "ConnectionError", "MemoryError", "RecursionError",
         "UnicodeError", "EOFError", "BufferError"}
    )

    def _in_scope(self) -> bool:
        return self.module.package.startswith(self._SCOPES)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for child in ast.walk(handler):
            if isinstance(child, ast.Raise) and child.exc is None:
                return True
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except swallows KeyboardInterrupt/SystemExit",
                "bare-except",
            )
        elif self._in_scope():
            names = []
            types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in types:
                name = dotted_name(expr)
                if name is not None:
                    names.append(name.rsplit(".", 1)[-1])
            broad = {"Exception", "BaseException"} & set(names)
            if broad and not self._reraises(node):
                caught = sorted(broad)[0]
                self.report(
                    node,
                    f"except {caught} without re-raise swallows errors "
                    f"the resilience taxonomy needs to see",
                    f"except-{caught}",
                )
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        if self._in_scope() and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name is not None:
                terminal = name.rsplit(".", 1)[-1]
                if (
                    terminal in self._BUILTIN_ERRORS
                    and terminal not in self._ALLOWED_RAISES
                ):
                    self.report(
                        node,
                        f"raise of builtin {terminal} outside the "
                        f"repro.errors taxonomy",
                        f"raise-{terminal}",
                    )
        self.generic_visit(node)


class TypedApiRule(Rule):
    """RR005: the typed-API gate.

    Two contracts:

    * every *public* function or method (plus ``__init__``) defined at
      module or class level under the concurrency stack
      (``repro.obs`` / ``repro.resilience`` / ``repro.serving`` /
      ``repro.analysis`` / ``repro.quality``) annotates all of its
      parameters and its return type;
    * every construction of ``ExplainedRecommendation`` — anywhere —
      states ``degraded=`` explicitly, so re-wrapping code cannot
      silently drop the degradation label the evaluation harness keys
      on.
    """

    rule_id = "RR005"
    name = "typed-api-gate"
    severity = "error"
    rationale = (
        "The concurrency stack's contracts (budgets, outcomes, the "
        "degraded flag) live in its signatures; an unannotated public "
        "API or an implicit degraded flag lets contract drift land "
        "silently."
    )
    fix_hint = (
        "annotate every parameter and the return type; pass degraded= "
        "explicitly when building ExplainedRecommendation"
    )

    _SCOPES = (
        "repro.obs",
        "repro.resilience",
        "repro.serving",
        "repro.analysis",
        "repro.quality",
        "repro.eventlog",
    )

    def _annotation_scope(self) -> bool:
        return self.module.package.startswith(self._SCOPES)

    def handle_function(self, node: ast.AST) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if not self._annotation_scope() or self.in_function:
            return
        if node.name.startswith("_") and node.name != "__init__":
            return
        args = node.args
        ordered = list(args.posonlyargs) + list(args.args)
        if self._class_stack and ordered and ordered[0].arg in (
            "self", "cls"
        ):
            ordered = ordered[1:]
        ordered += list(args.kwonlyargs)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                ordered.append(extra)
        missing = [arg.arg for arg in ordered if arg.annotation is None]
        # handle_function fires before the function's scope is pushed,
        # so self.scope is the *enclosing* scope here.
        enclosing = self.scope
        qualname = (
            node.name
            if enclosing == "<module>"
            else f"{enclosing}.{node.name}"
        )
        if missing:
            self.report(
                node,
                f"public function {qualname} has unannotated "
                f"parameter(s): {', '.join(missing)}",
                f"{node.name}-params",
            )
        if node.returns is None:
            self.report(
                node,
                f"public function {qualname} has no return annotation",
                f"{node.name}-return",
            )

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and name.rsplit(".", 1)[-1] == (
            "ExplainedRecommendation"
        ):
            explicit = any(
                kw.arg == "degraded" or kw.arg is None
                for kw in node.keywords
            )
            if not explicit and len(node.args) < 3:
                self.report(
                    node,
                    "ExplainedRecommendation built without an explicit "
                    "degraded= flag (defaults to False and silently "
                    "drops degradation labels when re-wrapping)",
                    "degraded-flag",
                )
        self.generic_visit(node)


class MissingInvalidationRule(Rule):
    """RR007: preference writes without a cache-invalidation path.

    The cache layer's scrutability contract (``docs/caching.md``) only
    holds if every mutation of user preference state reaches
    ``ShardedTTLCache.invalidate_user`` — otherwise a user re-rates or
    critiques and keeps being served answers computed from the old
    preferences for a full TTL.  Under ``repro.interaction`` this rule
    flags methods that perform a *watched write* —

    * ``self.edits.append(...)`` (profile edit logs),
    * ``self.dataset.add_rating(...)`` (rating writes),
    * ``self.requirements.add_constraint/remove_constraint(...)`` or an
      assignment to ``self.requirements`` (critique state)

    — without a *notification path*: a call to ``invalidate_user`` /
    ``invalidate_all`` / ``_notify``-style helpers, or a loop over an
    ``on_change`` subscriber list, reachable from the writing method
    through same-class ``self.<method>()`` calls (fixed-point closure).
    ``__init__`` is exempt — constructing initial state is not a
    preference *change*.
    """

    rule_id = "RR007"
    name = "missing-cache-invalidation"
    severity = "error"
    rationale = (
        "A preference write that never reaches a change channel leaves "
        "stale cached recommendations servable for a full TTL, breaking "
        "the scrutability loop the interaction layer exists to close."
    )
    fix_hint = (
        "notify on_change subscribers (or call invalidate_user) after "
        "the write, or route the write through a method that does"
    )

    _SCOPES = ("repro.interaction",)
    _WATCHED_CALLS = frozenset(
        {
            "self.edits.append",
            "self.dataset.add_rating",
            "self.requirements.add_constraint",
            "self.requirements.remove_constraint",
        }
    )
    _NOTIFIER_TERMINALS = frozenset(
        {
            "invalidate_user",
            "invalidate_all",
            "_notify",
            "_notify_change",
            "notify_change",
        }
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package.startswith(self._SCOPES)

    def _scan_method(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> tuple[list[tuple[ast.AST, str]], bool, set[str]]:
        """``(watched_writes, notifies, sibling_calls)`` for one method."""
        writes: list[tuple[ast.AST, str]] = []
        notifies = False
        siblings: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name in self._WATCHED_CALLS:
                    writes.append((node, name))
                terminal = name.rsplit(".", 1)[-1]
                if terminal in self._NOTIFIER_TERMINALS:
                    notifies = True
                if name.startswith("self.") and name.count(".") == 1:
                    siblings.add(terminal)
            elif isinstance(node, ast.For):
                iterated = dotted_name(node.iter)
                if iterated is not None and iterated.rsplit(".", 1)[
                    -1
                ] == "on_change":
                    notifies = True
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if dotted_name(target) == "self.requirements":
                        writes.append((node, "self.requirements"))
        return writes, notifies, siblings

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            child.name: child
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        writes: dict[str, list[tuple[ast.AST, str]]] = {}
        notifying: set[str] = set()
        calls: dict[str, set[str]] = {}
        for name, method in methods.items():
            if name == "__init__":
                continue
            method_writes, notifies, siblings = self._scan_method(method)
            writes[name] = method_writes
            calls[name] = siblings
            if notifies:
                notifying.add(name)
        # Fixed point: a method notifies if any sibling it calls does.
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name in notifying:
                    continue
                if calls.get(name, set()) & notifying:
                    notifying.add(name)
                    changed = True
        for name, method_writes in writes.items():
            if name in notifying:
                continue
            for write_node, slug in method_writes:
                self.report(
                    write_node,
                    f"preference write {slug} in {node.name}.{name} has "
                    f"no cache-invalidation path (no on_change "
                    f"notification or invalidate_user call reachable)",
                    slug,
                    scope=f"{node.name}.{name}",
                )
        super().visit_ClassDef(node)


class MissingWriteThroughRule(Rule):
    """RR008: preference writes that never reach the event log first.

    The durability contract (``docs/event_log.md``) is write-ahead: an
    interaction channel journals the :class:`InteractionEvent` *before*
    mutating in-memory state, so a crash between the two replays the
    event instead of silently dropping an acknowledged interaction.
    Under ``repro.interaction`` this rule watches the same writes as
    RR007 —

    * ``self.edits.append(...)`` (profile edit logs),
    * ``self.dataset.add_rating(...)`` (rating writes),
    * ``self.requirements.add_constraint/remove_constraint(...)`` or an
      assignment to ``self.requirements`` (critique state)

    — and requires a *journal path* to precede each one: a call to
    ``self._journal(...)`` or ``self.event_log.append(...)`` earlier in
    the same method, or (earlier in the method) a call to a sibling
    method that journals, closed under the same fixed-point reachability
    RR007 uses.  A journal call that only *follows* the mutation is
    flagged too — write-behind loses the event on a crash in between.
    ``__init__`` is exempt: constructing initial state replays from the
    log, it does not originate events.
    """

    rule_id = "RR008"
    name = "missing-write-through"
    severity = "error"
    rationale = (
        "A preference write that is not journalled first is lost on a "
        "crash after the channel acknowledged it; replay then rebuilds "
        "a state the user never saw, breaking the zero-acknowledged-"
        "loss recovery invariant."
    )
    fix_hint = (
        "journal the InteractionEvent (self._journal(...) or "
        "self.event_log.append(...)) before the in-memory mutation, or "
        "route the write through a method that does"
    )

    _SCOPES = ("repro.interaction",)
    _WATCHED_CALLS = MissingInvalidationRule._WATCHED_CALLS
    _JOURNAL_CALLS = frozenset(
        {"self._journal", "self.event_log.append"}
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package.startswith(self._SCOPES)

    def _scan_method(
        self, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> tuple[list[tuple[ast.AST, str]], int | None, dict[str, int]]:
        """``(watched_writes, first_journal_line, sibling_call_lines)``.

        ``first_journal_line`` is the earliest direct journal call (or
        ``None``); ``sibling_call_lines`` maps each ``self.<method>()``
        terminal to the earliest line it is called on.
        """
        writes: list[tuple[ast.AST, str]] = []
        journal_line: int | None = None
        siblings: dict[str, int] = {}
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name in self._WATCHED_CALLS:
                    writes.append((node, name))
                if name in self._JOURNAL_CALLS:
                    if journal_line is None or node.lineno < journal_line:
                        journal_line = node.lineno
                if name.startswith("self.") and name.count(".") == 1:
                    terminal = name.rsplit(".", 1)[-1]
                    line = siblings.get(terminal)
                    if line is None or node.lineno < line:
                        siblings[terminal] = node.lineno
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if dotted_name(target) == "self.requirements":
                        writes.append((node, "self.requirements"))
        return writes, journal_line, siblings

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            child.name: child
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        writes: dict[str, list[tuple[ast.AST, str]]] = {}
        journal_lines: dict[str, int | None] = {}
        calls: dict[str, dict[str, int]] = {}
        for name, method in methods.items():
            if name == "__init__":
                continue
            method_writes, journal_line, siblings = self._scan_method(
                method
            )
            writes[name] = method_writes
            journal_lines[name] = journal_line
            calls[name] = siblings
        journaling = {
            name for name, line in journal_lines.items() if line is not None
        }
        # Fixed point: a method journals if any sibling it calls does.
        changed = True
        while changed:
            changed = False
            for name in methods:
                if name == "__init__" or name in journaling:
                    continue
                if set(calls.get(name, {})) & journaling:
                    journaling.add(name)
                    changed = True
        for name, method_writes in writes.items():
            if not method_writes:
                continue
            direct = journal_lines.get(name)
            sibling_journal = min(
                (
                    line
                    for terminal, line in calls.get(name, {}).items()
                    if terminal in journaling
                ),
                default=None,
            )
            candidates = [
                line for line in (direct, sibling_journal) if line is not None
            ]
            earliest = min(candidates) if candidates else None
            for write_node, slug in method_writes:
                if earliest is None:
                    self.report(
                        write_node,
                        f"preference write {slug} in {node.name}.{name} "
                        f"never reaches the event log (no self._journal "
                        f"or event_log.append path)",
                        slug,
                        scope=f"{node.name}.{name}",
                    )
                elif earliest > write_node.lineno:
                    self.report(
                        write_node,
                        f"preference write {slug} in {node.name}.{name} "
                        f"precedes the journal call (write-behind loses "
                        f"the event on a crash in between)",
                        slug,
                        scope=f"{node.name}.{name}",
                    )
        super().visit_ClassDef(node)


class OrphanedWorkerRule(Rule):
    """RR009: thread/process creation without a reclaim path.

    The sharded serving layer's drain contract (``docs/sharding.md``)
    is only auditable if every worker the fleet creates is *reclaimed*
    somewhere: a ``Thread``/``Process``/``Timer`` that nothing ever
    ``join``s, ``terminate``s or ``kill``s keeps running (or zombies)
    after ``close()`` reported a clean drain.  Under ``repro.serving``
    this rule tracks each factory call to its binding —

    * ``self._thread = threading.Thread(...)`` / any dotted target
      (``handle.process = ctx.Process(...)``),
    * collection fills: ``self._workers = [Thread(...) ...]`` or
      ``self._workers.append(Thread(...))``,
    * bare locals (``threads = [...]``)

    — and requires a matching reclaim call (``<binding>.join(...)`` /
    ``.terminate()`` / ``.kill()``, including via a loop variable:
    ``for t in self._workers: t.join()`` credits ``self._workers``):

    * **dotted bindings** must be reclaimed in the creating method or
      anywhere on the class's *close route* — the fixed-point closure
      of ``close``/``stop``/``shutdown``/``drain``/``terminate``/
      ``join``/``__exit__``/``__del__`` over same-class
      ``self.<method>()`` calls;
    * **bare local bindings** must be reclaimed in the creating scope
      itself (the thread never escapes it);
    * **anonymous workers** (``threading.Thread(...).start()``, or
      passed straight into a call) are always flagged — nothing can
      ever reclaim them.
    """

    rule_id = "RR009"
    name = "orphaned-worker"
    severity = "error"
    rationale = (
        "A thread or process with no join/terminate path outlives the "
        "drain that claimed to stop it: shutdown reports clean while "
        "work is still running, and tests/CLI runs leak workers that "
        "keep the interpreter (or its children) alive."
    )
    fix_hint = (
        "bind the worker to an attribute or local and join/terminate "
        "it on the close/stop/drain route (or in the creating scope "
        "for locals)"
    )

    _SCOPES = ("repro.serving",)
    _FACTORY_TERMINALS = frozenset({"Thread", "Process", "Timer"})
    _RECLAIM_TERMINALS = frozenset({"join", "terminate", "kill"})
    _CLOSE_ROUTE = frozenset(
        {
            "close",
            "stop",
            "shutdown",
            "drain",
            "terminate",
            "join",
            "__exit__",
            "__del__",
        }
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.package.startswith(self._SCOPES)

    def _is_factory(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = dotted_name(node.func)
        if name is None:
            return False
        return name.rsplit(".", 1)[-1] in self._FACTORY_TERMINALS

    def _scan(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> tuple[list[tuple[ast.Call, str | None]], set[str], set[str]]:
        """``(creations, reclaims, sibling_calls)`` for one function.

        A creation's key is the dotted binding it lands in (``None``
        for anonymous).  Reclaims are the dotted owners of
        join/terminate/kill calls, with bare loop variables resolved to
        the collection they iterate (``for t in self._workers:
        t.join()`` reclaims ``self._workers``).
        """
        loop_map: dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.For) and isinstance(
                node.target, ast.Name
            ):
                iterated = dotted_name(node.iter)
                if iterated is not None:
                    loop_map[node.target.id] = iterated
        consumed: dict[int, str] = {}
        reclaims: set[str] = set()
        siblings: set[str] = set()
        factory_calls: list[ast.Call] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                key = dotted_name(node.targets[0])
                if key is None:
                    continue
                for sub in ast.walk(node.value):
                    if self._is_factory(sub):
                        consumed[id(sub)] = key
            elif isinstance(node, ast.Call):
                if self._is_factory(node):
                    factory_calls.append(node)
                name = dotted_name(node.func)
                if name is None or "." not in name:
                    continue
                owner, terminal = name.rsplit(".", 1)
                if terminal == "append":
                    for arg in node.args:
                        for sub in ast.walk(arg):
                            if self._is_factory(sub):
                                consumed[id(sub)] = owner
                elif terminal in self._RECLAIM_TERMINALS:
                    # A bare owner bound by an enclosing loop reclaims
                    # the collection it iterates.
                    reclaims.add(loop_map.get(owner, owner))
                elif name.startswith("self.") and name.count(".") == 1:
                    siblings.add(terminal)
        creations = [
            (call, consumed.get(id(call))) for call in factory_calls
        ]
        return creations, reclaims, siblings

    def _check_scope(
        self,
        scope: str,
        creations: list[tuple[ast.Call, str | None]],
        local_reclaims: set[str],
        route_reclaims: set[str],
    ) -> None:
        for call, key in creations:
            if key is None:
                self.report(
                    call,
                    f"anonymous worker created in {scope} — nothing "
                    f"can ever join or terminate it",
                    "anonymous-worker",
                    scope=scope,
                )
            elif "." in key:
                if key not in local_reclaims and key not in route_reclaims:
                    self.report(
                        call,
                        f"worker bound to {key} in {scope} has no "
                        f"join/terminate path on the close/stop/drain "
                        f"route",
                        key,
                        scope=scope,
                    )
            elif key not in local_reclaims:
                self.report(
                    call,
                    f"worker bound to local {key!r} in {scope} is "
                    f"never joined or terminated in that scope",
                    key,
                    scope=scope,
                )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            child.name: child
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        creations: dict[str, list[tuple[ast.Call, str | None]]] = {}
        reclaims: dict[str, set[str]] = {}
        calls: dict[str, set[str]] = {}
        for name, method in methods.items():
            creations[name], reclaims[name], calls[name] = self._scan(
                method
            )
        # Fixed point: the close route is every close-named method plus
        # everything they (transitively) call on self.
        route = {name for name in methods if name in self._CLOSE_ROUTE}
        changed = True
        while changed:
            changed = False
            for name in route.copy():
                for callee in calls.get(name, set()):
                    if callee in methods and callee not in route:
                        route.add(callee)
                        changed = True
        route_reclaims: set[str] = set()
        for name in route:
            route_reclaims |= reclaims.get(name, set())
        for name, method_creations in creations.items():
            self._check_scope(
                f"{node.name}.{name}",
                method_creations,
                reclaims.get(name, set()),
                route_reclaims,
            )
        super().visit_ClassDef(node)

    def handle_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        # Module-level functions only: methods are handled class-wide
        # above, and nested defs belong to their enclosing scan.
        if self.current_class is not None or self.in_function:
            return
        creations, reclaims, __ = self._scan(node)
        self._check_scope(node.name, creations, reclaims, set())


#: Every registered rule class, keyed by rule id.  ``RR000`` (syntax
#: failure) is synthesized by the engine and is not selectable.
RULE_REGISTRY: dict[str, type[Rule]] = {
    cls.rule_id: cls
    for cls in (
        BlockingCallUnderLockRule,
        UnseededRandomnessRule,
        MetricInternalsRule,
        ExceptionDisciplineRule,
        TypedApiRule,
        LockOrderingRule,
        MissingInvalidationRule,
        MissingWriteThroughRule,
        OrphanedWorkerRule,
        HotPathVectorizationRule,
        WirePayloadRule,
        ResourceLifecycleRule,
    )
}


def _validate_ids(ids: Iterable[str] | None, flag: str) -> set[str]:
    if ids is None:
        return set()
    wanted = {rule_id.strip() for rule_id in ids if rule_id.strip()}
    unknown = sorted(wanted - set(RULE_REGISTRY))
    if unknown:
        known = ", ".join(sorted(RULE_REGISTRY))
        raise AnalysisError(
            f"unknown rule id(s) for {flag}: {', '.join(unknown)} "
            f"(known: {known})"
        )
    return wanted


def default_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Fresh instances of the project rule set (RR001–RR012).

    ``select`` restricts the run to the given rule ids; ``ignore``
    drops the given ids from whatever ``select`` produced.  Unknown ids
    raise :class:`~repro.errors.AnalysisError` — a typo must fail the
    run, not silently lint with the wrong rule set.
    """
    selected = _validate_ids(select, "--select")
    ignored = _validate_ids(ignore, "--ignore")
    rules: list[Rule] = []
    for rule_id, cls in sorted(RULE_REGISTRY.items()):
        if selected and rule_id not in selected:
            continue
        if rule_id in ignored:
            continue
        rules.append(cls())
    return rules
