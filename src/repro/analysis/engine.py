"""The rule-engine core of :mod:`repro.analysis`.

An :class:`Analyzer` parses Python sources into ASTs and runs a set of
:class:`Rule` visitors over them.  Rules are :class:`ast.NodeVisitor`
subclasses with per-rule metadata (id, severity, rationale, fix hint);
the base class maintains the scope stack (enclosing class / function
qualname) every rule needs to report stable findings, plus hooks for
rules that track state across function boundaries.

Findings are plain data (:class:`Finding`) with a *fingerprint* —
``rule_id path scope slug`` — deliberately excluding line numbers, so a
committed suppression baseline survives unrelated edits to the same
file (see :mod:`repro.analysis.baseline`).

A file that fails to parse yields an ``RR000`` finding rather than
aborting the run: a syntax error in one module must not hide the
findings in every other.
"""

from __future__ import annotations

import ast
import hashlib
import time
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.errors import AnalysisError

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "Analyzer",
    "analyze_source",
    "dotted_name",
    "lock_label",
    "iter_python_files",
    "SEVERITIES",
]

#: Recognised severities, least severe first.
SEVERITIES: tuple[str, ...] = ("warning", "error")

#: Name fragments that mark a ``with`` context expression as a lock
#: acquisition (``self._lock``, ``registry._lock``, ``self._semaphore``).
_LOCKY_FRAGMENTS: tuple[str, ...] = ("lock", "mutex", "semaphore")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``scope`` is the enclosing qualname (``Class.method``, a function
    name, or ``<module>``); ``slug`` is a short, whitespace-free token
    identifying *what* was flagged inside that scope.  Together with the
    rule id and path they form the :attr:`fingerprint` the suppression
    baseline matches on — line and column are display-only, so baselines
    survive reformatting.
    """

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    scope: str
    slug: str
    message: str
    fix_hint: str = ""

    @property
    def fingerprint(self) -> str:
        """The baseline-matching identity of this finding."""
        return f"{self.rule_id} {self.path} {self.scope} {self.slug}"

    def as_dict(self) -> dict:
        """JSON-friendly representation (the JSON reporter's unit)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "scope": self.scope,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module handed to every rule."""

    path: Path
    rel_path: str
    package: str
    source: str
    tree: ast.Module


def dotted_name(node: ast.expr | None) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def lock_label(expr: ast.expr, class_name: str | None = None) -> str | None:
    """A canonical label when ``expr`` looks like a lock acquisition.

    ``with self._lock:`` inside class ``C`` labels as ``C._lock`` so the
    same lock object gets the same node in the cross-module acquisition
    graph regardless of which method touched it.  Non-lock expressions
    return ``None``.
    """
    name = dotted_name(expr)
    if name is None:
        return None
    terminal = name.rsplit(".", 1)[-1].lower()
    if not any(fragment in terminal for fragment in _LOCKY_FRAGMENTS):
        return None
    if name.startswith("self.") and class_name:
        return f"{class_name}.{name[len('self.'):]}"
    return name


class Rule(ast.NodeVisitor):
    """Base class for all analysis rules.

    Subclasses set the metadata class attributes and implement the
    ``visit_*`` methods they need; the base class keeps the class /
    function scope stacks current and exposes :meth:`report` for
    emitting findings.  Cross-module rules accumulate state during
    :meth:`check_module` calls and emit from :meth:`finish`.
    """

    rule_id: str = "RR000"
    name: str = "unnamed-rule"
    severity: str = "error"
    rationale: str = ""
    fix_hint: str = ""
    #: Project rules need every module's *facts* before they can emit
    #: (from :meth:`finish`); the incremental cache stores their
    #: :meth:`export_facts` output per file instead of findings, and
    #: replays it through :meth:`import_facts` on a cache hit.
    project_rule: bool = False

    def __init__(self) -> None:
        self._findings: list[Finding] = []
        self._module: ModuleInfo | None = None
        self._class_stack: list[str] = []
        self._scope_stack: list[str] = []
        self._function_depth = 0

    @classmethod
    def meta(cls) -> dict:
        """The rule's catalog entry (id, severity, rationale, hint)."""
        return {
            "id": cls.rule_id,
            "name": cls.name,
            "severity": cls.severity,
            "rationale": cls.rationale,
            "fix_hint": cls.fix_hint,
        }

    # -- per-module driver ------------------------------------------------

    def applies_to(self, module: ModuleInfo) -> bool:
        """Whether this rule inspects the given module at all."""
        return True

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        """Run the rule over one module; returns its findings."""
        if not self.applies_to(module):
            return []
        self._module = module
        self._class_stack = []
        self._scope_stack = []
        self._function_depth = 0
        self._findings = []
        self.visit(module.tree)
        findings, self._findings = self._findings, []
        return findings

    def finish(self) -> list[Finding]:
        """Findings that need the whole project (cross-module rules)."""
        return []

    # -- incremental-cache protocol (project rules only) ------------------

    def export_facts(self) -> dict | None:
        """JSON-serializable per-module facts from the last
        :meth:`check_module` call, for the incremental cache.  ``None``
        (the default) means nothing to cache for that module."""
        return None

    def import_facts(self, facts: dict) -> None:
        """Replay cached per-module facts in place of re-visiting the
        module (cache-hit path for project rules)."""

    # -- scope tracking ---------------------------------------------------

    @property
    def module(self) -> ModuleInfo:
        """The module currently being visited."""
        assert self._module is not None
        return self._module

    @property
    def scope(self) -> str:
        """Qualname of the enclosing class/function, or ``<module>``."""
        return ".".join(self._scope_stack) or "<module>"

    @property
    def current_class(self) -> str | None:
        """Name of the innermost enclosing class, if any."""
        return self._class_stack[-1] if self._class_stack else None

    @property
    def in_function(self) -> bool:
        """Whether the visitor is inside any function body."""
        return self._function_depth > 0

    def enter_function(self, node: ast.AST) -> None:
        """Hook: called when a function scope is entered."""

    def exit_function(self, node: ast.AST) -> None:
        """Hook: called when a function scope is left."""

    def handle_function(self, node: ast.AST) -> None:
        """Hook: called on every function definition, scope not yet open."""

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self._scope_stack.append(node.name)
        self.generic_visit(node)
        self._scope_stack.pop()
        self._class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self.handle_function(node)
        self._scope_stack.append(node.name)
        self._function_depth += 1
        self.enter_function(node)
        self.generic_visit(node)
        self.exit_function(node)
        self._function_depth -= 1
        self._scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- reporting --------------------------------------------------------

    def report(
        self,
        node: ast.AST,
        message: str,
        slug: str,
        severity: str | None = None,
        fix_hint: str | None = None,
        scope: str | None = None,
        module: ModuleInfo | None = None,
    ) -> None:
        """Emit one finding at the given node's location."""
        module = module if module is not None else self.module
        self._findings.append(
            Finding(
                rule_id=self.rule_id,
                severity=severity if severity is not None else self.severity,
                path=module.rel_path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                scope=scope if scope is not None else self.scope,
                slug=slug,
                message=message,
                fix_hint=fix_hint if fix_hint is not None else self.fix_hint,
            )
        )


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[tuple[Path, str]]:
    """Yield ``(file_path, rel_path)`` for every ``.py`` under ``paths``.

    ``rel_path`` is the stable posix path used in findings: for a
    directory argument it is ``<dirname>/<relative>`` (scanning
    ``src/repro`` yields ``repro/serving/server.py``); for a file
    argument it is the bare file name.  Raises
    :class:`~repro.errors.AnalysisError` for nonexistent paths.
    """
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            yield root, root.name
        elif root.is_dir():
            for file_path in sorted(root.rglob("*.py")):
                rel = file_path.relative_to(root).as_posix()
                yield file_path, f"{root.name}/{rel}"
        else:
            raise AnalysisError(f"no such analysis target: {root}")


def _guess_package(file_path: Path, rel_path: str) -> str:
    """Dotted module name, anchored at the last ``repro`` path component."""
    parts = list(file_path.parts)
    parts[-1] = file_path.stem
    if parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    rel_parts = list(Path(rel_path).parts)
    rel_parts[-1] = Path(rel_path).stem
    if rel_parts[-1] == "__init__":
        rel_parts.pop()
    return ".".join(rel_parts)


class Analyzer:
    """Runs a set of rules over a set of paths.

    With ``rules=None`` the project rule set from
    :func:`repro.analysis.rules.default_rules` (plus the lock-ordering
    analyzer) is used.  Rules are stateful visitors, so each
    :class:`Analyzer` builds fresh instances and is single-use per
    :meth:`run` family of calls only in the cross-module sense — call
    sites should construct one analyzer per run.

    ``cache`` (an :class:`repro.analysis.incremental.AnalysisCache`, or
    anything with its lookup/store surface) makes the run incremental:
    a file whose content hash matches the cache replays its findings —
    and, for project rules, its facts — without being parsed or
    visited.  After :meth:`run`:

    * :attr:`timings` maps rule id → seconds spent in that rule
      (check_module + import_facts + finish);
    * :attr:`file_map` maps each finding ``rel_path`` to its resolved
      absolute path, which is what ``--changed`` filtering joins on.
    """

    def __init__(
        self,
        rules: Sequence[Rule] | None = None,
        cache: object | None = None,
    ) -> None:
        if rules is None:
            from repro.analysis.rules import default_rules

            rules = default_rules()
        self.rules: tuple[Rule, ...] = tuple(rules)
        self.cache = cache
        self.timings: dict[str, float] = {}
        self.file_map: dict[str, Path] = {}

    def load_module(
        self,
        source: str,
        file_path: Path,
        rel_path: str,
        package: str | None = None,
    ) -> ModuleInfo | Finding:
        """Parse one source; a syntax error becomes an ``RR000`` finding."""
        try:
            tree = ast.parse(source, filename=str(file_path))
        except SyntaxError as error:
            return Finding(
                rule_id="RR000",
                severity="error",
                path=rel_path,
                line=error.lineno or 0,
                col=error.offset or 0,
                scope="<module>",
                slug="syntax-error",
                message=f"file does not parse: {error.msg}",
                fix_hint="fix the syntax error so the analyzer can see the file",
            )
        return ModuleInfo(
            path=file_path,
            rel_path=rel_path,
            package=(
                package
                if package is not None
                else _guess_package(file_path, rel_path)
            ),
            source=source,
            tree=tree,
        )

    def run(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Analyze every Python file under ``paths``; returns findings."""
        findings: list[Finding] = []
        self.timings = {rule.rule_id: 0.0 for rule in self.rules}
        self.file_map = {}
        cache = self.cache
        for file_path, rel_path in iter_python_files(paths):
            try:
                raw = file_path.read_bytes()
            except OSError as error:
                raise AnalysisError(
                    f"cannot read {file_path}: {error}"
                ) from error
            self.file_map[rel_path] = file_path.resolve()
            digest = None
            if cache is not None:
                digest = hashlib.sha256(raw).hexdigest()
                entry = cache.entry(rel_path, digest)
                if entry is not None and self._replay(entry, findings):
                    cache.hits += 1
                    continue
                cache.misses += 1
            try:
                source = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise AnalysisError(
                    f"cannot read {file_path}: {error}"
                ) from error
            loaded = self.load_module(source, file_path, rel_path)
            if isinstance(loaded, Finding):
                findings.append(loaded)
                if cache is not None:
                    cache.store_findings(rel_path, digest, "RR000", [loaded])
                    for rule in self.rules:
                        if rule.project_rule:
                            cache.store_facts(
                                rel_path, digest, rule.rule_id, None
                            )
                        else:
                            cache.store_findings(
                                rel_path, digest, rule.rule_id, []
                            )
                continue
            for rule in self.rules:
                started = time.perf_counter()
                rule_findings = rule.check_module(loaded)
                self.timings[rule.rule_id] += time.perf_counter() - started
                findings.extend(rule_findings)
                if cache is not None:
                    if rule.project_rule:
                        cache.store_facts(
                            rel_path, digest, rule.rule_id, rule.export_facts()
                        )
                    else:
                        cache.store_findings(
                            rel_path, digest, rule.rule_id, rule_findings
                        )
        for rule in self.rules:
            started = time.perf_counter()
            findings.extend(rule.finish())
            self.timings[rule.rule_id] += time.perf_counter() - started
        if cache is not None:
            cache.flush()
        findings.sort(
            key=lambda f: (f.path, f.line, f.col, f.rule_id, f.slug)
        )
        return findings

    def _replay(self, entry: dict, findings: list[Finding]) -> bool:
        """Replay one file's cache entry; ``False`` forces a cold visit.

        The entry only counts as a hit when *every* configured rule has
        a record in it — a run with a different rule selection, or a
        record written before a rule existed, degrades to a miss.
        """
        cache = self.cache
        assert cache is not None
        replayed: list[Finding] = []
        imports: list[tuple[Rule, dict]] = []
        for rule in self.rules:
            if rule.project_rule:
                facts = cache.facts(entry, rule.rule_id)
                if facts is None:
                    return False
                if facts:
                    imports.append((rule, facts))
            else:
                cached = cache.findings(entry, rule.rule_id)
                if cached is None:
                    return False
                replayed.extend(cached)
        parse_failure = cache.findings(entry, "RR000")
        if parse_failure is not None:
            replayed.extend(parse_failure)
        for rule, facts in imports:
            started = time.perf_counter()
            rule.import_facts(facts)
            self.timings[rule.rule_id] += time.perf_counter() - started
        findings.extend(replayed)
        return True


def analyze_source(
    source: str,
    *,
    rel_path: str = "module.py",
    package: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Analyze one in-memory source string (the test fixture entry point).

    ``package`` sets the dotted module name the scoped rules match
    against (e.g. ``"repro.resilience.fake"`` to put the snippet inside
    the determinism-invariant scope).
    """
    analyzer = Analyzer(rules=rules)
    loaded = analyzer.load_module(
        source, Path(rel_path), rel_path, package=package
    )
    if isinstance(loaded, Finding):
        findings = [loaded]
        for rule in analyzer.rules:
            findings.extend(rule.finish())
        return findings
    findings = []
    for rule in analyzer.rules:
        findings.extend(rule.check_module(loaded))
    for rule in analyzer.rules:
        findings.extend(rule.finish())
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id, f.slug))
    return findings
