"""The name-matched project call graph and its reachability queries.

Second layer of the dataflow pipeline (symbol table → **call graph** →
CFG → solver → rules).  Edges are resolved by *terminal name*: a call
``self._neighborhood.neighbors(...)`` inside function F adds an edge
from F to every analyzed function named ``neighbors`` — the same
deliberately conservative contract the RR006 lock-ordering analyzer
pioneered (see :mod:`repro.analysis.symbols` for the generic-name
blocklist that keeps stdlib collisions out).

Name matching over-approximates (one terminal name may hit several
definitions), which is the right direction for the reachability
queries built on it: RR010 asks "could this loop run under
``recommend()``?", and a spurious edge yields at worst a baselined
warning, never a silently missed hot path.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable

from repro.analysis.symbols import FunctionSymbol, SymbolTable

__all__ = ["CallGraph"]


class CallGraph:
    """Directed qualname → qualname edges resolved from a symbol table."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: dict[str, set[str]] = {}
        for qualname, symbol in table.functions.items():
            targets: set[str] = set()
            for callee in symbol.callees:
                targets.update(table.named(callee))
            targets.discard(qualname)
            self.edges[qualname] = targets

    def callees_of(self, qualname: str) -> set[str]:
        """Direct successors of one function."""
        return self.edges.get(qualname, set())

    def roots(
        self, predicate: Callable[[FunctionSymbol], bool]
    ) -> set[str]:
        """Qualnames of every function matching ``predicate``."""
        return {
            qualname
            for qualname, symbol in self.table.functions.items()
            if predicate(symbol)
        }

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        queue: deque[str] = deque()
        for root in roots:
            if root in self.edges and root not in seen:
                seen.add(root)
                queue.append(root)
        while queue:
            current = queue.popleft()
            for target in self.edges.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    queue.append(target)
        return seen
