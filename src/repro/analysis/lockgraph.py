"""RR006: the cross-module lock-ordering analyzer.

Deadlock by lock-order inversion is the one concurrency bug a test
suite is worst at catching — it needs the exact interleaving — and the
serving stack holds locks across module boundaries (a server worker
resolving a request increments locked metrics; a breaker transition
emits a tracer event into a locked sink while holding the breaker
lock).  This analyzer builds the **lock acquisition graph** across
every analyzed module and flags cycles, which are *potential*
deadlocks: two threads taking the cycle's locks in different orders can
each block on the lock the other holds.

Construction, best-effort and name-based (this is a lint, not a proof):

* a ``with <lock>:`` statement acquires the lock labelled by
  :func:`~repro.analysis.engine.lock_label` (``Class._lock`` for
  ``self._lock``);
* an acquisition nested inside held locks adds edges *held → acquired*
  for every lock currently held;
* a call made while holding a lock adds edges from the held locks to
  every lock *reachable* from any analyzed function of the same
  terminal name — reachability follows the (name-matched) call graph
  to a fixpoint, so ``with self._state_lock: self._reject(...)`` picks
  up the metric-lock acquisition inside the counter ``inc`` that
  ``_reject`` performs.

Name matching is deliberately conservative: calls to ultra-generic
method names on objects other than ``self`` (``close``, ``get``,
``put``, ``flush``, ...) are *not* followed, because stdlib objects
(streams, queues, threads) collide with analyzed classes on exactly
those names and would fabricate edges — e.g. ``self._stream.close()``
inside a sink must not look like a call to the server's ``close``.
That policy lives in :func:`repro.analysis.symbols.callee_name`,
shared with the call-graph builder.

This is a **project rule**: each module contributes serializable facts
(locks acquired per function, callees per function, direct nesting
edges, calls made under a held lock) that the incremental cache can
replay, and :meth:`~LockOrderingRule.finish` solves the global graph
from the merged facts every run.

Cycles are reported once per strongly connected component with the
participating locks and the acquisition sites of every edge inside it.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    Rule,
    lock_label,
)
from repro.analysis.symbols import callee_name

__all__ = ["LockOrderingRule", "EdgeSite"]


@dataclass(frozen=True)
class EdgeSite:
    """Where one *held → acquired* edge was observed."""

    path: str
    line: int
    scope: str
    via_call: str | None = None


class LockOrderingRule(Rule):
    """RR006: potential deadlock cycles in the lock acquisition graph."""

    rule_id = "RR006"
    name = "lock-ordering-cycle"
    severity = "error"
    rationale = (
        "Two threads acquiring the same locks in different orders can "
        "each block on the lock the other holds; a cycle in the "
        "acquisition graph is the static signature of that deadlock."
    )
    fix_hint = (
        "impose one global acquisition order (document it), or narrow "
        "one of the lock scopes so the nested acquisition happens "
        "outside the outer hold"
    )

    project_rule = True

    def __init__(self) -> None:
        super().__init__()
        self._held: list[str] = []
        self._saved: list[list[str]] = []
        # function qualname -> locks it acquires directly in its body
        self._acquired_by: dict[str, set[str]] = {}
        # function qualname -> callee terminal names used in its body
        self._calls_by: dict[str, set[str]] = {}
        # direct nesting edges: (held, acquired) -> first site
        self._edges: dict[tuple[str, str], EdgeSite] = {}
        # calls made while holding: (held, callee terminal, site)
        self._calls_under_lock: list[tuple[str, str, EdgeSite]] = []
        # the same four, scoped to the module currently being visited
        self._m_acquired: dict[str, set[str]] = {}
        self._m_calls: dict[str, set[str]] = {}
        self._m_edges: dict[tuple[str, str], EdgeSite] = {}
        self._m_calls_under_lock: list[tuple[str, str, EdgeSite]] = []
        self._module_facts: dict | None = None

    # -- per-module facts -------------------------------------------------

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        self._module_facts = None
        if not self.applies_to(module):
            return []
        self._m_acquired = {}
        self._m_calls = {}
        self._m_edges = {}
        self._m_calls_under_lock = []
        findings = super().check_module(module)
        self._module_facts = {
            "acquired_by": {
                qualname: sorted(locks)
                for qualname, locks in self._m_acquired.items()
            },
            "calls_by": {
                qualname: sorted(callees)
                for qualname, callees in self._m_calls.items()
            },
            "edges": [
                [held, acquired, asdict(site)]
                for (held, acquired), site in sorted(self._m_edges.items())
            ],
            "calls_under_lock": [
                [held, callee, asdict(site)]
                for held, callee, site in self._m_calls_under_lock
            ],
        }
        self._merge_facts(self._module_facts)
        return findings

    def export_facts(self) -> dict | None:
        return self._module_facts

    def import_facts(self, facts: dict) -> None:
        self._merge_facts(facts)

    def _merge_facts(self, facts: dict) -> None:
        for qualname, locks in facts["acquired_by"].items():
            self._acquired_by.setdefault(qualname, set()).update(locks)
        for qualname, callees in facts["calls_by"].items():
            self._calls_by.setdefault(qualname, set()).update(callees)
        for held, acquired, site in facts["edges"]:
            self._edges.setdefault((held, acquired), EdgeSite(**site))
        for held, callee, site in facts["calls_under_lock"]:
            self._calls_under_lock.append((held, callee, EdgeSite(**site)))

    # -- collection -------------------------------------------------------

    def enter_function(self, node: ast.AST) -> None:
        self._saved.append(self._held)
        self._held = []

    def exit_function(self, node: ast.AST) -> None:
        self._held = self._saved.pop()

    @property
    def _qualname(self) -> str:
        return f"{self.module.package}.{self.scope}"

    def _site(self, node: ast.AST, via_call: str | None = None) -> EdgeSite:
        return EdgeSite(
            path=self.module.rel_path,
            line=getattr(node, "lineno", 0),
            scope=self._qualname,
            via_call=via_call,
        )

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        labels = []
        for item in node.items:
            label = lock_label(item.context_expr, self.current_class)
            if label is None:
                continue
            if self.in_function:
                self._m_acquired.setdefault(self._qualname, set()).add(
                    label
                )
            for held in self._held:
                if held != label:
                    self._m_edges.setdefault(
                        (held, label), self._site(item.context_expr)
                    )
            labels.append(label)
        self._held.extend(labels)
        self.generic_visit(node)
        if labels:
            del self._held[-len(labels):]

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = callee_name(node)
        if callee is not None:
            if self.in_function:
                self._m_calls.setdefault(self._qualname, set()).add(callee)
            if self._held:
                site = self._site(node, via_call=callee)
                for held in self._held:
                    self._m_calls_under_lock.append((held, callee, site))
        self.generic_visit(node)

    # -- graph ------------------------------------------------------------

    def _reachable_locks(self) -> dict[str, set[str]]:
        """Locks reachable from each callee terminal name (fixpoint)."""
        direct: dict[str, set[str]] = {}
        calls: dict[str, set[str]] = {}
        for qualname, locks in self._acquired_by.items():
            terminal = qualname.rsplit(".", 1)[-1]
            direct.setdefault(terminal, set()).update(locks)
        for qualname, callees in self._calls_by.items():
            terminal = qualname.rsplit(".", 1)[-1]
            calls.setdefault(terminal, set()).update(callees)
        reachable = {name: set(locks) for name, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for name, callees in calls.items():
                bucket = reachable.setdefault(name, set())
                before = len(bucket)
                for callee in callees:
                    if callee != name:
                        bucket.update(reachable.get(callee, ()))
                if len(bucket) != before:
                    changed = True
        return reachable

    def graph(self) -> dict[tuple[str, str], EdgeSite]:
        """The full acquisition graph collected so far (edge → site)."""
        merged: dict[tuple[str, str], EdgeSite] = {}
        reachable = self._reachable_locks()
        for held, callee, site in self._calls_under_lock:
            for label in reachable.get(callee, ()):
                if label != held:
                    merged.setdefault((held, label), site)
        merged.update(self._edges)
        return merged

    @staticmethod
    def _cycles(adjacency: dict[str, set[str]]) -> list[tuple[str, ...]]:
        """Strongly connected components that contain at least one edge."""
        index_counter = [0]
        stack: list[str] = []
        on_stack: set[str] = set()
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        components: list[tuple[str, ...]] = []

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, neighbour iterator) frames.
            index[root] = low[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            work = [(root, iter(sorted(adjacency.get(root, ()))))]
            while work:
                current, neighbours = work[-1]
                advanced = False
                for neighbour in neighbours:
                    if neighbour not in index:
                        index[neighbour] = low[neighbour] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(neighbour)
                        on_stack.add(neighbour)
                        work.append(
                            (
                                neighbour,
                                iter(sorted(adjacency.get(neighbour, ()))),
                            )
                        )
                        advanced = True
                        break
                    if neighbour in on_stack:
                        low[current] = min(low[current], index[neighbour])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[current])
                if low[current] == index[current]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1 or current in adjacency.get(
                        current, ()
                    ):
                        components.append(tuple(sorted(component)))

        for node in sorted(adjacency):
            if node not in index:
                strongconnect(node)
        return components

    def finish(self) -> list[Finding]:
        edges = self.graph()
        adjacency: dict[str, set[str]] = {}
        for held, acquired in edges:
            adjacency.setdefault(held, set()).add(acquired)
        findings: list[Finding] = []
        for component in self._cycles(adjacency):
            members = set(component)
            cycle_edges = sorted(
                (edge, site)
                for edge, site in edges.items()
                if edge[0] in members and edge[1] in members
            )
            representative = cycle_edges[0][1]
            detail = "; ".join(
                f"{held} -> {acquired} at {site.path}:{site.line}"
                + (f" (via {site.via_call})" if site.via_call else "")
                for (held, acquired), site in cycle_edges
            )
            findings.append(
                Finding(
                    rule_id=self.rule_id,
                    severity=self.severity,
                    path=representative.path,
                    line=representative.line,
                    col=0,
                    scope="<lockgraph>",
                    slug="->".join(component),
                    message=(
                        f"potential deadlock: lock-order cycle between "
                        f"{', '.join(component)} ({detail})"
                    ),
                    fix_hint=self.fix_hint,
                )
            )
        # A stateful cross-module rule is single-use per run.
        self._acquired_by = {}
        self._calls_by = {}
        self._edges = {}
        self._calls_under_lock = []
        self._m_acquired = {}
        self._m_calls = {}
        self._m_edges = {}
        self._m_calls_under_lock = []
        self._module_facts = None
        return findings
