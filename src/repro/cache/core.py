"""The sharded single-flight cache at the heart of :mod:`repro.cache`.

:class:`ShardedTTLCache` is a thread-safe LRU+TTL cache built for the
explained-recommendation hot path, with three properties the serving
stack depends on:

* **single-flight stampede protection** — concurrent misses for the
  same key coalesce into exactly one loader call
  (:meth:`ShardedTTLCache.get_or_load`): one thread computes, the rest
  wait on the flight and share its result.  A loader *failure* is
  shared by the coalesced waiters but never negatively cached — the
  next lookup computes again, so a transient
  :class:`~repro.errors.InjectedFaultError` cannot poison the key;
* **generation-based invalidation** — every key is qualified by its
  user's current *generation*.  :meth:`invalidate_user` bumps the
  generation, making every entry written under the old one unreachable
  in O(1), without touching the shards.  This is the paper's
  scrutability contract (Section 3.2) made mechanical: the moment a
  user critiques, re-rates, or edits their profile, no read can return
  a value computed before that correction;
* **degraded TTLs** — entries flagged ``degraded=True`` (fallback
  results, degraded explanations) expire on a shorter clock so
  recovery replaces them quickly instead of pinning a degraded answer
  for the full TTL.

Instrumentation: ``repro_cache_lookups_total`` / ``hits_total`` /
``misses_total`` partition every lookup; ``evictions_total``,
``expirations_total``, ``coalesced_total`` and ``invalidations_total``
count the cache's life events; ``repro_cache_size`` gauges residency.
All are labelled by cache name.  ``cache.*`` trace events mirror the
interesting transitions when tracing is enabled.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from time import monotonic

from repro import obs
from repro.errors import CacheError
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "CacheHit",
    "CacheStats",
    "ShardedTTLCache",
    "register_cache_metrics",
]

#: Sentinel distinguishing "no entry" from a cached ``None``.
_MISS = object()


def register_cache_metrics(registry: MetricsRegistry | None = None) -> None:
    """Ensure every cache instrument family exists in the registry.

    Idempotent; called by every cache at construction and by the CLI
    metrics workload so the exposition is complete even before the
    first lookup.
    """
    registry = registry if registry is not None else obs.get_registry()
    registry.counter(
        "repro_cache_lookups_total",
        "Cache lookups (hits + misses partition this).",
        labelnames=("cache",),
    )
    registry.counter(
        "repro_cache_hits_total",
        "Cache lookups answered from a live entry.",
        labelnames=("cache",),
    )
    registry.counter(
        "repro_cache_misses_total",
        "Cache lookups that found no live entry.",
        labelnames=("cache",),
    )
    registry.counter(
        "repro_cache_evictions_total",
        "Entries evicted by LRU capacity pressure.",
        labelnames=("cache",),
    )
    registry.counter(
        "repro_cache_expirations_total",
        "Entries dropped at lookup because their TTL had passed.",
        labelnames=("cache",),
    )
    registry.counter(
        "repro_cache_coalesced_total",
        "Misses that joined an in-flight computation instead of loading.",
        labelnames=("cache",),
    )
    registry.counter(
        "repro_cache_invalidations_total",
        "Generation bumps (user critiques/re-ratings/profile edits).",
        labelnames=("cache",),
    )
    registry.gauge(
        "repro_cache_size",
        "Entries currently resident across all shards.",
        labelnames=("cache",),
    )


@dataclass(frozen=True)
class CacheHit:
    """One successful lookup: the value plus its degradation marker."""

    value: object
    degraded: bool


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of one cache's counters."""

    lookups: int
    hits: int
    misses: int
    evictions: int
    expirations: int
    coalesced: int
    invalidations: int
    size: int

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    """One cached value with its expiry and degradation marker."""

    __slots__ = ("value", "degraded", "expires_at")

    def __init__(self, value: object, degraded: bool, expires_at: float) -> None:
        self.value = value
        self.degraded = degraded
        self.expires_at = expires_at


class _Shard:
    """One lock + ordered map; eviction order is least-recently-used."""

    __slots__ = ("lock", "entries")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.entries: OrderedDict = OrderedDict()


@dataclass
class _Flight:
    """One in-flight loader call that coalesced misses wait on."""

    done: threading.Event = field(default_factory=threading.Event)
    value: object = None
    error: BaseException | None = None


class ShardedTTLCache:
    """Thread-safe sharded LRU+TTL cache with single-flight loading.

    Parameters
    ----------
    name:
        Metric label and trace-event tag for this cache instance.
    capacity:
        Maximum resident entries across all shards (evicted LRU-first
        per shard once a shard exceeds its share).
    shards:
        Number of independent lock domains; keys hash across them so
        concurrent lookups for different users rarely contend.
    ttl_seconds:
        Lifetime of a healthy entry.
    degraded_ttl_seconds:
        Lifetime of an entry stored with ``degraded=True`` (fallback
        results); keep it short so recovery replaces them.  Defaults to
        a tenth of ``ttl_seconds``.
    flight_timeout_seconds:
        How long a coalesced waiter waits for the leader before raising
        :class:`~repro.errors.CacheError` (a leader stuck past this is
        a bug, not load).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        name: str = "default",
        *,
        capacity: int = 2048,
        shards: int = 8,
        ttl_seconds: float = 60.0,
        degraded_ttl_seconds: float | None = None,
        flight_timeout_seconds: float = 30.0,
        clock: Callable[[], float] = monotonic,
    ) -> None:
        if capacity < 1:
            raise CacheError(f"capacity must be >= 1, got {capacity}")
        if shards < 1:
            raise CacheError(f"shards must be >= 1, got {shards}")
        if ttl_seconds <= 0:
            raise CacheError(f"ttl_seconds must be > 0, got {ttl_seconds}")
        if degraded_ttl_seconds is None:
            degraded_ttl_seconds = ttl_seconds / 10.0
        if degraded_ttl_seconds <= 0 or degraded_ttl_seconds > ttl_seconds:
            raise CacheError(
                "degraded_ttl_seconds must be in (0, ttl_seconds], got "
                f"{degraded_ttl_seconds}"
            )
        self.name = name
        self.capacity = capacity
        self.ttl_seconds = ttl_seconds
        self.degraded_ttl_seconds = degraded_ttl_seconds
        self.flight_timeout_seconds = flight_timeout_seconds
        self._clock = clock
        self._shards = tuple(_Shard() for _ in range(shards))
        # Per-shard capacity, rounded up so the total is never below
        # the requested capacity.
        self._shard_capacity = -(-capacity // shards)
        self._generations: dict[str, int] = {}
        self._generation_lock = threading.Lock()
        self._epoch = 0
        self._flights: dict[Hashable, _Flight] = {}
        self._flight_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._lookups = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._coalesced = 0
        self._invalidations = 0
        self._registry = obs.get_registry()
        register_cache_metrics(self._registry)

    # -- counters ---------------------------------------------------------

    def _metrics_registry(self) -> MetricsRegistry:
        """The live registry, re-registering families after a reset."""
        registry = obs.get_registry()
        if registry is not self._registry:
            register_cache_metrics(registry)
            self._registry = registry
        return registry

    def _count(self, stat: str, metric: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self, stat, getattr(self, stat) + amount)
        self._metrics_registry().counter(
            f"repro_cache_{metric}_total", "", labelnames=("cache",)
        ).inc(amount, cache=self.name)

    def _update_size_gauge(self) -> None:
        self._metrics_registry().gauge(
            "repro_cache_size", "", labelnames=("cache",)
        ).set(len(self), cache=self.name)

    # -- generations ------------------------------------------------------

    def generation(self, user_id: str) -> int:
        """The user's current generation (0 until first invalidation)."""
        with self._generation_lock:
            return self._generations.get(user_id, 0)

    def invalidate_user(self, user_id: str) -> int:
        """Bump the user's generation; their cached entries go stale.

        Every entry written under the previous generation becomes
        unreachable immediately (it ages out of the shards via LRU/TTL).
        Returns the new generation.  This is the hook interaction
        channels call on critique / re-rate / profile edit.
        """
        with self._generation_lock:
            generation = self._generations.get(user_id, 0) + 1
            self._generations[user_id] = generation
        self._count("_invalidations", "invalidations")
        obs.event(
            "cache.invalidate",
            cache=self.name,
            user=user_id,
            generation=generation,
        )
        return generation

    def invalidate_all(self) -> None:
        """Drop every entry (e.g. after a refit on a new dataset)."""
        with self._generation_lock:
            self._epoch += 1
        for shard in self._shards:
            with shard.lock:
                shard.entries.clear()
        self._count("_invalidations", "invalidations")
        obs.event("cache.invalidate_all", cache=self.name)
        self._update_size_gauge()

    # -- keying -----------------------------------------------------------

    def _full_key(self, user_id: str, key: Hashable) -> tuple:
        with self._generation_lock:
            generation = self._generations.get(user_id, 0)
            epoch = self._epoch
        return (epoch, user_id, generation, key)

    def _shard_for(self, full_key: tuple) -> _Shard:
        return self._shards[hash(full_key) % len(self._shards)]

    # -- lookup / store ---------------------------------------------------

    def _lookup(self, full_key: tuple) -> _Entry | None:
        """Hit/miss bookkeeping for one generation-qualified key."""
        shard = self._shard_for(full_key)
        expired = False
        with shard.lock:
            entry = shard.entries.get(full_key)
            if entry is not None and entry.expires_at <= self._clock():
                del shard.entries[full_key]
                entry = None
                expired = True
            elif entry is not None:
                shard.entries.move_to_end(full_key)
        self._count("_lookups", "lookups")
        if entry is None:
            self._count("_misses", "misses")
            if expired:
                self._count("_expirations", "expirations")
                self._update_size_gauge()
        else:
            self._count("_hits", "hits")
        return entry

    def _store(
        self, full_key: tuple, value: object, degraded: bool
    ) -> None:
        ttl = self.degraded_ttl_seconds if degraded else self.ttl_seconds
        entry = _Entry(value, degraded, self._clock() + ttl)
        shard = self._shard_for(full_key)
        evicted = 0
        with shard.lock:
            shard.entries[full_key] = entry
            shard.entries.move_to_end(full_key)
            while len(shard.entries) > self._shard_capacity:
                shard.entries.popitem(last=False)
                evicted += 1
        if evicted:
            self._count("_evictions", "evictions", evicted)
            obs.event(
                "cache.evict", cache=self.name, evicted=evicted
            )
        self._update_size_gauge()

    def lookup(self, user_id: str, key: Hashable) -> CacheHit | None:
        """One instrumented lookup; ``None`` is a miss.

        The result carries the entry's ``degraded`` marker so callers
        (the serving layer, clients) can tell a cached fallback answer
        from a cached primary one.
        """
        entry = self._lookup(self._full_key(user_id, key))
        if entry is None:
            return None
        return CacheHit(value=entry.value, degraded=entry.degraded)

    def get(
        self, user_id: str, key: Hashable, default: object = None
    ) -> object:
        """The cached value, or ``default`` on a miss."""
        hit = self.lookup(user_id, key)
        return hit.value if hit is not None else default

    def put(
        self,
        user_id: str,
        key: Hashable,
        value: object,
        *,
        degraded: bool = False,
        generation: int | None = None,
    ) -> None:
        """Store one value under the user's generation.

        Pass the ``generation`` observed *before* a computation started
        (see :meth:`generation`) when storing its result later: if the
        user invalidated mid-computation, the entry lands under the old
        generation — unreachable — instead of resurrecting stale data
        under the new one.
        """
        if generation is None:
            full_key = self._full_key(user_id, key)
        else:
            with self._generation_lock:
                epoch = self._epoch
            full_key = (epoch, user_id, generation, key)
        self._store(full_key, value, degraded)

    # -- single flight ----------------------------------------------------

    def get_or_load(
        self,
        user_id: str,
        key: Hashable,
        loader: Callable[[], object],
        *,
        degraded_when: Callable[[object], bool] | None = None,
    ) -> object:
        """The cached value, computing it under single-flight on a miss.

        Concurrent misses for the same (user, generation, key) coalesce
        into exactly one ``loader()`` call: the first thread leads, the
        rest wait on the flight and share its value — or its exception.
        Failures are never negatively cached.

        ``degraded_when`` classifies a freshly loaded value: when it
        returns ``True`` the entry is stored with the degraded TTL.
        """
        full_key = self._full_key(user_id, key)
        entry = self._lookup(full_key)
        if entry is not None:
            obs.event("cache.hit", cache=self.name, user=user_id)
            return entry.value
        with self._flight_lock:
            flight = self._flights.get(full_key)
            leading = flight is None
            if leading:
                flight = _Flight()
                self._flights[full_key] = flight
        if not leading:
            self._count("_coalesced", "coalesced")
            obs.event("cache.coalesced", cache=self.name, user=user_id)
            if not flight.done.wait(self.flight_timeout_seconds):
                raise CacheError(
                    f"single-flight leader for cache {self.name!r} did "
                    f"not complete within {self.flight_timeout_seconds}s"
                )
            if flight.error is not None:
                raise flight.error
            return flight.value
        obs.event("cache.miss", cache=self.name, user=user_id)
        try:
            value = loader()
            degraded = bool(degraded_when(value)) if degraded_when else False
            self._store(full_key, value, degraded)
            flight.value = value
        except BaseException as error:
            flight.error = error
            raise
        finally:
            with self._flight_lock:
                self._flights.pop(full_key, None)
            flight.done.set()
        return value

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.entries)
        return total

    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache's counters."""
        size = len(self)
        with self._stats_lock:
            return CacheStats(
                lookups=self._lookups,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                coalesced=self._coalesced,
                invalidations=self._invalidations,
                size=size,
            )
