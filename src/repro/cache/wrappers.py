"""Caching wrappers for recommenders and explained-recommendation pipelines.

:class:`CachedRecommender` puts a :class:`ShardedTTLCache` in front of
one substrate's ``predict``/``recommend``; :class:`CachedExplainedRecommender`
does the same for a whole explained-recommendation pipeline and adds the
batched hot paths ``recommend_many`` / ``explain_many``, which
deduplicate keys *before* fanning out so a burst of identical requests
costs one substrate computation, not N.

Scrutability wiring (:func:`wire_invalidation`): any interaction channel
exposing ``subscribe(callback)`` — :class:`~repro.interaction.ratings.RatingChannel`,
:class:`~repro.interaction.profile.ScrutableProfile`,
:class:`~repro.interaction.session.CritiqueSession` — is connected to
:meth:`ShardedTTLCache.invalidate_user`, so the moment a user re-rates,
critiques, or edits their profile, every cached answer computed from
the old preferences becomes unreachable.  "The user rates items" and
immediately *sees the effect* (paper Section 5.3) — a cache must never
break that loop.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.explanation import Explanation
from repro.core.pipeline import ExplainedRecommendation
from repro.recsys.base import Prediction, Recommendation, Recommender
from repro.recsys.data import Dataset

from repro.cache.core import ShardedTTLCache

__all__ = [
    "CachedRecommender",
    "CachedExplainedRecommender",
    "wire_invalidation",
]


def _batched_recommend(
    cache: ShardedTTLCache,
    batch_loader: object,
    user_ids: Sequence[str],
    n: int,
    exclude_rated: bool,
    degraded_when: object = None,
) -> list:
    """Serve cached users, batch the misses through one native call.

    Generations are snapshotted per miss *before* the batch computes, so
    a user who invalidates mid-batch gets their entry stored under the
    old (unreachable) generation instead of resurrecting stale data.
    """
    key = ("recommend", n, exclude_rated, None)
    results: dict[str, list] = {}
    misses: list[str] = []
    for user_id in user_ids:
        if user_id in results or user_id in misses:
            continue
        hit = cache.lookup(user_id, key)
        if hit is not None:
            results[user_id] = hit.value
        else:
            misses.append(user_id)
    if misses:
        generations = [cache.generation(user_id) for user_id in misses]
        loaded = batch_loader(misses, n=n, exclude_rated=exclude_rated)
        for user_id, generation, value in zip(misses, generations, loaded):
            degraded = bool(degraded_when(value)) if degraded_when else False
            cache.put(
                user_id,
                key,
                value,
                degraded=degraded,
                generation=generation,
            )
            results[user_id] = value
    return list(map(results.__getitem__, user_ids))


def wire_invalidation(cache: object, *channels: object) -> None:
    """Subscribe the cache's ``invalidate_user`` to interaction channels.

    ``cache`` is anything with ``invalidate_user(user_id)`` (a
    :class:`ShardedTTLCache` or either wrapper below); each channel is
    anything with ``subscribe(callback)`` — the interaction layer's
    rating channels, scrutable profiles, and critique sessions all
    qualify.  Channels notify with the typed
    :class:`~repro.eventlog.events.InteractionEvent`; the adapter here
    extracts the user id, so one subscription schema serves both
    invalidation and durability.
    """
    for channel in channels:
        channel.subscribe(
            lambda event, _cache=cache: _cache.invalidate_user(
                event.user_id
            )
        )


class CachedRecommender(Recommender):
    """One substrate behind a generation-aware single-flight cache.

    ``predict`` and ``recommend`` results are cached per user; any call
    to :meth:`invalidate_user` (typically wired to a rating/profile
    channel via :func:`wire_invalidation`) makes that user's entries
    unreachable before the next read.  ``fit`` clears everything — a new
    dataset invalidates every answer.
    """

    def __init__(
        self,
        inner: Recommender,
        cache: ShardedTTLCache | None = None,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.cache = (
            cache
            if cache is not None
            else ShardedTTLCache(name=type(inner).__name__)
        )

    # -- Recommender protocol --------------------------------------------

    def fit(self, dataset: Dataset) -> "CachedRecommender":
        self.inner.fit(dataset)
        self.cache.invalidate_all()
        return self

    @property
    def dataset(self) -> Dataset:
        return self.inner.dataset

    @property
    def is_fitted(self) -> bool:
        return self.inner.is_fitted

    @property
    def degrade_on(self) -> tuple[type[BaseException], ...]:
        return self.inner.degrade_on

    def predict(self, user_id: str, item_id: str) -> Prediction:
        return self.cache.get_or_load(
            user_id,
            ("predict", item_id),
            lambda: self.inner.predict(user_id, item_id),
        )

    def recommend(
        self,
        user_id: str,
        n: int = 10,
        exclude_rated: bool = True,
        candidates: Iterable[str] | None = None,
    ) -> list[Recommendation]:
        key = (
            "recommend",
            n,
            exclude_rated,
            tuple(candidates) if candidates is not None else None,
        )
        return self.cache.get_or_load(
            user_id,
            key,
            lambda: self.inner.recommend(
                user_id,
                n=n,
                exclude_rated=exclude_rated,
                candidates=key[3],
            ),
        )

    def recommend_many(
        self,
        user_ids: Sequence[str],
        n: int = 10,
        exclude_rated: bool = True,
    ) -> list[list[Recommendation]]:
        """Batched ``recommend``: one native batch call for all misses.

        The result list aligns with ``user_ids``; a user appearing k
        times costs one computation and is shared k ways.  Cache misses
        are collected and served by the substrate's own
        ``recommend_many`` — a vectorized substrate scores the whole
        miss batch in one pass instead of once per user.
        """
        return _batched_recommend(
            self.cache,
            self.inner.recommend_many,
            user_ids,
            n,
            exclude_rated,
        )

    def invalidate_user(self, user_id: str) -> None:
        """Bump the user's generation (the interaction-channel hook)."""
        self.cache.invalidate_user(user_id)

    def __getattr__(self, name: str) -> object:
        return getattr(object.__getattribute__(self, "inner"), name)


class CachedExplainedRecommender:
    """An explained-recommendation pipeline behind the cache.

    Wraps anything with the :class:`~repro.core.pipeline.ExplainedRecommender`
    surface (including
    :class:`~repro.resilience.pipeline.ResilientExplainedRecommender`).
    Cached entries whose batch carries any ``degraded=True`` item —
    fallback-substrate results, degraded explanations — are stored
    under the shorter degraded TTL, so recovery replaces them quickly
    instead of pinning a degraded answer for the full TTL.
    """

    def __init__(
        self,
        pipeline: object,
        cache: ShardedTTLCache | None = None,
    ) -> None:
        self.pipeline = pipeline
        self.cache = (
            cache if cache is not None else ShardedTTLCache(name="pipeline")
        )

    @staticmethod
    def _any_degraded(explained: object) -> bool:
        return any(
            getattr(item, "degraded", False) for item in explained
        )

    def fit(self, dataset: Dataset) -> "CachedExplainedRecommender":
        """Fit the pipeline; a new dataset voids every cached answer."""
        self.pipeline.fit(dataset)
        self.cache.invalidate_all()
        return self

    def recommend(
        self,
        user_id: str,
        n: int = 10,
        exclude_rated: bool = True,
        candidates: Iterable[str] | None = None,
    ) -> list[ExplainedRecommendation]:
        """Cached top-``n`` explained recommendations (single-flight)."""
        key = (
            "recommend",
            n,
            exclude_rated,
            tuple(candidates) if candidates is not None else None,
        )
        return self.cache.get_or_load(
            user_id,
            key,
            lambda: self.pipeline.recommend(
                user_id,
                n=n,
                exclude_rated=exclude_rated,
                candidates=key[3],
            ),
            degraded_when=self._any_degraded,
        )

    def recommend_many(
        self,
        user_ids: Sequence[str],
        n: int = 10,
        exclude_rated: bool = True,
    ) -> list[list[ExplainedRecommendation]]:
        """Batched ``recommend``: one native batch call for all misses.

        Duck-typed pipelines without a native ``recommend_many`` are
        served by the cached per-user path instead.
        """
        batch_loader = getattr(self.pipeline, "recommend_many", None)
        if batch_loader is None:
            unique: dict[str, list[ExplainedRecommendation]] = {}
            for user_id in user_ids:
                if user_id not in unique:
                    unique[user_id] = self.recommend(
                        user_id, n=n, exclude_rated=exclude_rated
                    )
            return list(map(unique.__getitem__, user_ids))
        return _batched_recommend(
            self.cache,
            batch_loader,
            user_ids,
            n,
            exclude_rated,
            degraded_when=self._any_degraded,
        )

    def explain(
        self, user_id: str, recommendation: Recommendation
    ) -> Explanation:
        """Cached explanation for one recommendation.

        Backed by the pipeline's ``explain_or_degrade``, so a degraded
        (fallback-template) explanation is cached under the degraded
        TTL and replaced as soon as the primary explainer recovers.
        """
        loaded = self.cache.get_or_load(
            user_id,
            ("explain", recommendation.item_id),
            lambda: self.pipeline.explain_or_degrade(
                user_id, recommendation
            ),
            degraded_when=lambda pair: pair[1],
        )
        return loaded[0]

    def explain_many(
        self,
        user_id: str,
        recommendations: Sequence[Recommendation],
    ) -> list[Explanation]:
        """Batched ``explain``: deduplicates items before fan-out."""
        unique: dict[str, Explanation] = {}
        for recommendation in recommendations:
            if recommendation.item_id not in unique:
                unique[recommendation.item_id] = self.explain(
                    user_id, recommendation
                )
        return [
            unique[recommendation.item_id]
            for recommendation in recommendations
        ]

    def invalidate_user(self, user_id: str) -> None:
        """Bump the user's generation (the interaction-channel hook)."""
        self.cache.invalidate_user(user_id)

    def __getattr__(self, name: str) -> object:
        return getattr(object.__getattribute__(self, "pipeline"), name)
