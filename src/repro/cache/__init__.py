"""repro.cache — single-flight caching for explained recommendations.

The serving stack (PR 3) pays full substrate cost for every request,
even identical back-to-back ones.  This package adds the missing
memory: a thread-safe sharded LRU+TTL cache
(:class:`~repro.cache.core.ShardedTTLCache`) with

* **single-flight stampede protection** — concurrent misses for one
  key coalesce into exactly one substrate computation;
* **generation-based invalidation** — the scrutability contract
  (paper Section 3.2; Cosley et al.'s re-rating protocol, Pu & Chen's
  critiquing cycles): any critique, re-rating, or profile edit bumps
  the user's generation and makes every stale entry unreachable before
  the next read;
* **degraded TTLs** — fallback results are cached on a shorter clock
  with a ``degraded`` marker, so recovery replaces them quickly.

:class:`~repro.cache.wrappers.CachedRecommender` and
:class:`~repro.cache.wrappers.CachedExplainedRecommender` wrap
substrates and pipelines; ``recommend_many`` / ``explain_many`` are the
batched hot paths that deduplicate keys before fan-out.
:func:`~repro.cache.wrappers.wire_invalidation` connects the cache to
the interaction layer's change feeds.  The serving layer takes a cache
per lane (``RecommendationServer(..., cache=...)``): hits resolve at
submit time, bypassing the queue, shedder, and bulkhead entirely — and
never touch a breaker.

Metrics: ``repro_cache_lookups_total`` = ``hits_total`` +
``misses_total`` (an exact partition), ``evictions_total``,
``expirations_total``, ``coalesced_total``, ``invalidations_total``,
and the ``repro_cache_size`` gauge; ``cache.*`` trace events.  See
``docs/caching.md``.
"""

from repro.cache.core import (
    CacheHit,
    CacheStats,
    ShardedTTLCache,
    register_cache_metrics,
)
from repro.cache.wrappers import (
    CachedExplainedRecommender,
    CachedRecommender,
    wire_invalidation,
)

__all__ = [
    "CacheHit",
    "CacheStats",
    "ShardedTTLCache",
    "register_cache_metrics",
    "CachedRecommender",
    "CachedExplainedRecommender",
    "wire_invalidation",
]
