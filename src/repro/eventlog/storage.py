"""Byte-level storage behind the event log.

:class:`EventLog` never touches the filesystem directly — every byte
goes through a :class:`SegmentStorage`, so the chaos framework can wrap
one (``repro.resilience.ChaosStorage``) and inject failed writes,
partial writes, fsync errors, and corrupt reads without monkeypatching.
The default :class:`FileStorage` is a thin, boring shim over ``os``.

A :class:`SegmentHandle` is an open, append-positioned segment.  Its
contract is exact about partial writes: :meth:`SegmentHandle.write`
either writes all bytes and returns, or raises
:class:`~repro.errors.EventLogError` — and when it raises, the handle's
:meth:`SegmentHandle.position` may already include *some* of the bytes
(a torn write).  The log rolls the segment back to the last committed
size before acknowledging anything else.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import EventLogError

__all__ = ["SegmentHandle", "FileStorage", "SegmentStorage"]


class SegmentHandle:
    """An open append handle on one segment, tracking its byte position."""

    def __init__(self, path: Path, descriptor: int, position: int) -> None:
        self.path = path
        self._descriptor = descriptor
        self._position = position
        self._closed = False

    def position(self) -> int:
        """Bytes currently written through this handle (including torn)."""
        return self._position

    def write(self, data: bytes) -> None:
        """Append ``data``; all-or-error (torn bytes still advance position)."""
        if self._closed:
            raise EventLogError(f"segment {self.path.name} is closed")
        try:
            written = os.write(self._descriptor, data)
            self._position += written
            while written < len(data):
                more = os.write(self._descriptor, data[written:])
                written += more
                self._position += more
        except OSError as error:
            raise EventLogError(
                f"write to segment {self.path.name} failed: {error}"
            ) from error

    def sync(self) -> None:
        """Flush this segment to stable storage (``fsync``)."""
        if self._closed:
            raise EventLogError(f"segment {self.path.name} is closed")
        try:
            os.fsync(self._descriptor)
        except OSError as error:
            raise EventLogError(
                f"fsync of segment {self.path.name} failed: {error}"
            ) from error

    def truncate(self, size: int) -> None:
        """Cut the segment back to ``size`` bytes (torn-write rollback)."""
        if self._closed:
            raise EventLogError(f"segment {self.path.name} is closed")
        try:
            os.ftruncate(self._descriptor, size)
            os.lseek(self._descriptor, size, os.SEEK_SET)
        except OSError as error:
            raise EventLogError(
                f"truncate of segment {self.path.name} failed: {error}"
            ) from error
        self._position = size

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            os.close(self._descriptor)
        except OSError as error:
            raise EventLogError(
                f"close of segment {self.path.name} failed: {error}"
            ) from error


class FileStorage:
    """The real filesystem: plain ``os``-level segment I/O."""

    def open_append(self, path: Path) -> SegmentHandle:
        """Open ``path`` for appending, positioned at its current end."""
        try:
            descriptor = os.open(
                path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            position = os.fstat(descriptor).st_size
        except OSError as error:
            raise EventLogError(
                f"cannot open segment {path.name}: {error}"
            ) from error
        return SegmentHandle(path, descriptor, position)

    def read_bytes(self, path: Path) -> bytes:
        """The full contents of a segment (recovery scan path)."""
        try:
            return path.read_bytes()
        except OSError as error:
            raise EventLogError(
                f"cannot read segment {path.name}: {error}"
            ) from error

    def truncate_path(self, path: Path, size: int) -> None:
        """Cut a *closed* segment back to ``size`` bytes (torn tails)."""
        try:
            os.truncate(path, size)
        except OSError as error:
            raise EventLogError(
                f"cannot truncate segment {path.name}: {error}"
            ) from error

    def remove(self, path: Path) -> None:
        """Delete a segment (compaction discards superseded segments)."""
        try:
            path.unlink()
        except FileNotFoundError:
            return
        except OSError as error:
            raise EventLogError(
                f"cannot remove segment {path.name}: {error}"
            ) from error

    def replace(self, source: Path, destination: Path) -> None:
        """Atomically move ``source`` over ``destination`` (compaction)."""
        try:
            os.replace(source, destination)
        except OSError as error:
            raise EventLogError(
                f"cannot replace {destination.name}: {error}"
            ) from error

    def list_segments(self, directory: Path, pattern: str) -> list[Path]:
        """Segment paths under ``directory`` matching ``pattern``, sorted."""
        try:
            return sorted(directory.glob(pattern))
        except OSError as error:
            raise EventLogError(
                f"cannot list segments in {directory}: {error}"
            ) from error


#: Structural alias — anything with FileStorage's surface works (the
#: chaos wrapper subclasses it and overrides the fault-injectable ops).
SegmentStorage = FileStorage
