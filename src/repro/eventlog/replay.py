"""Recovery: rebuild live state from the durable event stream.

:func:`replay` folds every acknowledged :class:`InteractionEvent` back
into the mutable world — dataset ratings, scrutable profiles, substrate
similarity state (incremental ``absorb`` when the substrate supports
it), and cache generations — so a restarted process serves **exactly**
the recommendations and explanations it acknowledged before the crash.

Replay is deliberately forgiving at the *event* level: an event that no
longer applies (a rating for an item the world no longer catalogues, a
profile correction for an attribute an earlier remove deleted) is
skipped and counted in the :class:`ReplayReport`, never raised.
Structural misuse — a profile already wired to journal, which would
double-write every replayed edit back into the log — raises
:class:`~repro.errors.ReplayError` before any state mutates.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping, MutableMapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import DataError, ReplayError
from repro.eventlog.events import (
    CRITIQUE_KINDS,
    PROFILE_KINDS,
    InteractionEvent,
)
from repro.eventlog.log import _REPLAY_BUCKETS, EventLog
from repro.recsys.data import Dataset, Rating

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.interaction.profile import ScrutableProfile

__all__ = ["ReplayReport", "replay", "replay_events"]


@dataclass(frozen=True)
class ReplayReport:
    """What one recovery pass rebuilt, skipped, and gave up on."""

    events_seen: int
    events_applied: int
    events_skipped: int
    corrupt_records: int
    truncated_tail_records: int
    ratings_applied: int
    profile_edits_applied: int
    critiques_applied: int
    users: tuple[str, ...]
    elapsed_seconds: float

    @property
    def degraded(self) -> bool:
        """Whether the log lost records (corruption or torn tail)."""
        return bool(self.corrupt_records or self.truncated_tail_records)

    def as_dict(self) -> dict:
        """JSON-friendly rendering (the ``replay --format json`` shape)."""
        return {
            "events": {
                "seen": self.events_seen,
                "applied": self.events_applied,
                "skipped": self.events_skipped,
            },
            "damage": {
                "corrupt_records": self.corrupt_records,
                "truncated_tail_records": self.truncated_tail_records,
                "degraded": self.degraded,
            },
            "applied": {
                "ratings": self.ratings_applied,
                "profile_edits": self.profile_edits_applied,
                "critiques": self.critiques_applied,
            },
            "users": len(self.users),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }

    def render(self) -> str:
        """Human-readable summary (the ``replay`` CLI output)."""
        rate = (
            self.events_applied / self.elapsed_seconds
            if self.elapsed_seconds > 0
            else 0.0
        )
        lines = [
            f"replayed       {self.events_applied}/{self.events_seen} "
            f"event(s) for {len(self.users)} user(s) "
            f"in {self.elapsed_seconds:.3f}s ({rate:,.0f} ev/s)",
            f"applied        ratings={self.ratings_applied} "
            f"profile_edits={self.profile_edits_applied} "
            f"critiques={self.critiques_applied} "
            f"skipped={self.events_skipped}",
        ]
        if self.degraded:
            lines.append(
                f"damage         corrupt={self.corrupt_records} "
                f"torn_tail={self.truncated_tail_records} (degraded)"
            )
        else:
            lines.append("damage         none")
        return "\n".join(lines)


def _apply_rating_event(
    event: InteractionEvent, dataset: Dataset
) -> list[tuple[str, str]]:
    """Apply one rating-shaped event; returns the (user, item) writes.

    Raises :class:`~repro.errors.DataError` when the event no longer
    applies (unknown item, out-of-scale value, missing rating to undo);
    the caller converts that into a skip count.
    """
    if event.kind == "rate-batch":
        written = []
        for item_id, value in event.ratings.items():
            dataset.add_rating(
                Rating(user_id=event.user_id, item_id=item_id, value=value)
            )
            written.append((event.user_id, item_id))
        return written
    item_id = event.item_id
    if item_id is None:
        raise DataError(f"rating event without item: seq={event.sequence}")
    if event.kind == "undo":
        if event.previous_value is None:
            dataset.remove_rating(event.user_id, item_id)
        else:
            dataset.add_rating(
                Rating(
                    user_id=event.user_id,
                    item_id=item_id,
                    value=event.previous_value,
                )
            )
        return [(event.user_id, item_id)]
    value = event.value
    if value is None:
        raise DataError(f"rating event without value: seq={event.sequence}")
    dataset.add_rating(
        Rating(user_id=event.user_id, item_id=item_id, value=value)
    )
    return [(event.user_id, item_id)]


def _apply_profile_event(
    event: InteractionEvent, profile: "ScrutableProfile"
) -> None:
    """Apply one profile edit; :class:`DataError` means "skip"."""
    payload = event.payload
    name = payload.get("name")
    if not isinstance(name, str):
        raise DataError(
            f"profile event without attribute name: seq={event.sequence}"
        )
    weight_raw = payload.get("weight", 1.0)
    weight = (
        float(weight_raw) if isinstance(weight_raw, (int, float)) else 1.0
    )
    if event.kind == "profile-volunteer":
        profile.volunteer(name, payload.get("value"), weight=weight)
    elif event.kind == "profile-infer":
        because_raw = payload.get("because", "")
        because = because_raw if isinstance(because_raw, str) else ""
        profile.infer(name, payload.get("value"), because, weight=weight)
    elif event.kind == "profile-correct":
        profile.correct(name, payload.get("value"))
    elif event.kind == "profile-remove":
        profile.remove(name)
    else:  # pragma: no cover - guarded by PROFILE_KINDS dispatch
        raise DataError(f"unknown profile event kind: {event.kind}")


def replay_events(
    events: Iterable[InteractionEvent],
    dataset: Dataset,
    *,
    profiles: MutableMapping[str, "ScrutableProfile"] | None = None,
    caches: Iterable[object] = (),
    substrates: Iterable[object] = (),
    log_name: str = "eventlog",
) -> dict[str, object]:
    """Fold an event stream into live state; the core of :func:`replay`.

    Exposed separately so tests and the chaos suite can replay a known
    in-memory stream without a log on disk.  Returns the raw tallies;
    :func:`replay` wraps them (plus scan damage counts) in a
    :class:`ReplayReport`.
    """
    from repro.interaction.profile import ScrutableProfile

    if profiles is None:
        profiles = {}
    for profile in profiles.values():
        if getattr(profile, "event_log", None) is not None:
            raise ReplayError(
                f"profile {profile.user_id!r} is wired to an event log; "
                "replaying through it would double-write every edit — "
                "attach the log after replay"
            )
    registry = obs.get_registry()
    replayed = registry.counter(
        "repro_eventlog_replayed_events_total",
        "Events applied during replay, by kind.",
        labelnames=("log", "kind"),
    )
    skipped_counter = registry.counter(
        "repro_eventlog_replay_skipped_total",
        "Events skipped during replay (no longer applicable).",
        labelnames=("log",),
    )
    absorbers = [
        substrate for substrate in substrates
        if hasattr(substrate, "absorb")
    ]
    refitters = [
        substrate for substrate in substrates
        if not hasattr(substrate, "absorb") and hasattr(substrate, "fit")
    ]
    applied = skipped = ratings = profile_edits = critiques = seen = 0
    touched: dict[str, None] = {}
    for event in events:
        seen += 1
        touched.setdefault(event.user_id)
        try:
            if event.kind in PROFILE_KINDS:
                profile = profiles.get(event.user_id)
                if profile is None:
                    profile = ScrutableProfile(event.user_id)
                    profiles[event.user_id] = profile
                _apply_profile_event(event, profile)
                profile_edits += 1
            elif event.kind in CRITIQUE_KINDS:
                # Session state is ephemeral by design; the durable
                # side effect is the cache-generation bump below.
                critiques += 1
            else:
                writes = _apply_rating_event(event, dataset)
                ratings += len(writes)
                for absorber in absorbers:
                    absorber.absorb(event)
        except DataError:
            skipped += 1
            skipped_counter.inc(log=log_name)
            continue
        applied += 1
        replayed.inc(log=log_name, kind=event.kind)
    for substrate in refitters:
        if getattr(substrate, "is_fitted", True):
            substrate.fit(dataset)
    for cache in caches:
        invalidate = getattr(cache, "invalidate_user", None)
        if invalidate is None:
            continue
        for user_id in touched:
            invalidate(user_id)
    return {
        "events_seen": seen,
        "events_applied": applied,
        "events_skipped": skipped,
        "ratings_applied": ratings,
        "profile_edits_applied": profile_edits,
        "critiques_applied": critiques,
        "users": tuple(touched),
    }


def replay(
    log: EventLog,
    dataset: Dataset,
    *,
    profiles: MutableMapping[str, "ScrutableProfile"] | None = None,
    caches: Iterable[object] = (),
    substrates: Iterable[object] = (),
) -> ReplayReport:
    """Rebuild world state from ``log``; truncate-and-degrade, never crash.

    Parameters
    ----------
    log:
        The event log to scan (damage is counted, not raised).
    dataset:
        The live dataset rating events are folded into.
    profiles:
        Mutable ``user_id -> ScrutableProfile`` mapping; missing
        profiles are created (unwired — attach the log afterwards).
    caches:
        Caches whose per-user generations are bumped for every touched
        user, so nothing computed pre-crash survives recovery.
    substrates:
        Recommenders fed each rating event via ``absorb`` when they
        support it (fitted CF models update incrementally); substrates
        without ``absorb`` are refit once at the end if already fitted.
    """
    started = time.perf_counter()
    with obs.span("eventlog.replay", log=log.name):
        scan = log.scan()
        tallies = replay_events(
            scan.events,
            dataset,
            profiles=profiles,
            caches=caches,
            substrates=substrates,
            log_name=log.name,
        )
        elapsed = time.perf_counter() - started
        obs.get_registry().histogram(
            "repro_eventlog_replay_seconds",
            buckets=_REPLAY_BUCKETS,
        ).observe(elapsed)
        report = ReplayReport(
            corrupt_records=scan.corrupt_records,
            truncated_tail_records=scan.truncated_tail_records,
            elapsed_seconds=elapsed,
            **tallies,  # type: ignore[arg-type]
        )
        obs.event(
            "eventlog.replayed",
            log=log.name,
            events=report.events_applied,
            skipped=report.events_skipped,
            corrupt=report.corrupt_records,
            truncated=report.truncated_tail_records,
            users=len(report.users),
            degraded=report.degraded,
        )
        return report
