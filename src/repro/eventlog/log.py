"""The append-only, checksummed write-ahead log behind every channel.

Design contract (see ``docs/event_log.md`` for the full spec):

* **Acknowledge = durable.**  :meth:`EventLog.append` assigns the next
  monotonic sequence number, encodes the record (CRC32 over canonical
  JSON), writes it to the active segment, and — under the ``"always"``
  fsync policy — syncs before returning.  Only then do the interaction
  channels mutate in-memory state.  If anything in that chain raises,
  the log **rolls the segment back** to the last committed byte, so a
  torn write is never followed by a good record on top of garbage and
  replay sees exactly the acknowledged prefix.
* **Recovery never crashes.**  Opening a log with a torn tail truncates
  the damaged suffix (counted in ``repro_eventlog_truncated_tails_total``
  and an ``eventlog.truncate_tail`` event); a corrupt record *inside*
  the stream is skipped and counted, not fatal (truncate-and-degrade).
* **Segments rotate** at ``max_segment_bytes`` and ``compact()`` folds
  superseded events (overwritten ratings, stale profile edits) into a
  single snapshot segment that replays to the same final state.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.errors import EventLogError
from repro.eventlog.events import (
    CRITIQUE_KINDS,
    PROFILE_KINDS,
    InteractionEvent,
    decode_record,
    encode_record,
)
from repro.eventlog.storage import FileStorage, SegmentHandle, SegmentStorage
from repro.obs.metrics import Counter, Gauge, MetricsRegistry

__all__ = [
    "FSYNC_POLICIES",
    "ScanResult",
    "CompactionReport",
    "EventLog",
    "register_eventlog_metrics",
]

#: Accepted fsync policies: every append / every ``fsync_every`` appends
#: and at rotation / only at rotation and close.
FSYNC_POLICIES = ("always", "interval", "never")

_SEGMENT_GLOB = "segment-*.jsonl"

#: Bucket layouts shared by registration and the hot-path accessors
#: (histogram schemas include buckets, so these must match exactly).
_APPEND_BUCKETS = (0.00005, 0.0002, 0.001, 0.005, 0.02, 0.1, 0.5)
_REPLAY_BUCKETS = (0.01, 0.05, 0.2, 1.0, 5.0, 20.0, 60.0)


def register_eventlog_metrics(registry: MetricsRegistry | None = None) -> None:
    """Ensure every event-log instrument family exists in the registry.

    Idempotent; called by every log at construction and by the CLI
    metrics workload so the exposition is complete before any append.
    """
    registry = registry if registry is not None else obs.get_registry()
    registry.counter(
        "repro_eventlog_appends_total",
        "Events offered to the log, by outcome (ok / error).",
        labelnames=("log", "outcome"),
    )
    registry.counter(
        "repro_eventlog_bytes_total",
        "Bytes durably appended to log segments.",
        labelnames=("log",),
    )
    registry.counter(
        "repro_eventlog_fsyncs_total",
        "Explicit fsync barriers issued by the log.",
        labelnames=("log",),
    )
    registry.counter(
        "repro_eventlog_rotations_total",
        "Segment rotations (size threshold reached).",
        labelnames=("log",),
    )
    registry.counter(
        "repro_eventlog_rollbacks_total",
        "Failed appends rolled back to the last committed byte.",
        labelnames=("log",),
    )
    registry.counter(
        "repro_eventlog_corrupt_records_total",
        "Mid-stream records skipped for checksum/structure damage.",
        labelnames=("log",),
    )
    registry.counter(
        "repro_eventlog_truncated_tails_total",
        "Torn segment tails truncated during recovery.",
        labelnames=("log",),
    )
    registry.counter(
        "repro_eventlog_compactions_total",
        "Checkpoint/compaction passes completed.",
        labelnames=("log",),
    )
    registry.counter(
        "repro_eventlog_replayed_events_total",
        "Events applied during replay, by kind.",
        labelnames=("log", "kind"),
    )
    registry.counter(
        "repro_eventlog_replay_skipped_total",
        "Events skipped during replay (no longer applicable).",
        labelnames=("log",),
    )
    registry.gauge(
        "repro_eventlog_segments",
        "Segments currently on disk for this log.",
        labelnames=("log",),
    )
    registry.histogram(
        "repro_eventlog_append_seconds",
        "Wall time of one acknowledged append (encode + write + fsync).",
        buckets=_APPEND_BUCKETS,
    )
    registry.histogram(
        "repro_eventlog_replay_seconds",
        "Wall time of one full replay pass.",
        buckets=_REPLAY_BUCKETS,
    )


@dataclass(frozen=True)
class ScanResult:
    """Everything one read pass over the log recovered (and gave up on)."""

    events: tuple[InteractionEvent, ...]
    corrupt_records: int
    truncated_tail_records: int
    segments: int
    bytes_scanned: int


@dataclass(frozen=True)
class CompactionReport:
    """Before/after accounting for one checkpoint/compaction pass."""

    events_before: int
    events_after: int
    segments_before: int
    bytes_before: int
    bytes_after: int


@dataclass(frozen=True)
class _ParsedSegment:
    """One segment's decode outcome (offsets are byte positions)."""

    events: tuple[InteractionEvent, ...]
    corrupt_before_tail: int
    tail_records: int
    valid_end: int
    size: int


def _parse_segment(data: bytes) -> _ParsedSegment:
    """Decode one segment's bytes, classifying damage.

    Complete lines that fail to decode *before* the last valid record
    are mid-stream corruption; everything after the last valid record
    (bad complete lines plus any unterminated final chunk) is the torn
    tail.  ``valid_end`` is the byte offset just past the last valid
    record — the truncation point for tail repair.
    """
    entries: list[tuple[InteractionEvent | None, int]] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            entries.append((None, len(data)))  # unterminated torn chunk
            break
        line = data[offset:newline]
        end = newline + 1
        if line:
            try:
                entries.append((decode_record(line), end))
            except EventLogError:
                entries.append((None, end))
        offset = end
    last_valid = -1
    for index, (event, _end) in enumerate(entries):
        if event is not None:
            last_valid = index
    events = tuple(
        event for event, _end in entries[: last_valid + 1]
        if event is not None
    )
    corrupt = sum(
        1 for event, _end in entries[: last_valid + 1] if event is None
    )
    tail = len(entries) - (last_valid + 1)
    valid_end = entries[last_valid][1] if last_valid >= 0 else 0
    return _ParsedSegment(
        events=events,
        corrupt_before_tail=corrupt,
        tail_records=tail,
        valid_end=valid_end,
        size=len(data),
    )


class EventLog:
    """An append-only, checksummed, segment-rotated interaction log.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.
    fsync_policy:
        ``"always"`` syncs every append (acknowledge = on disk),
        ``"interval"`` every ``fsync_every`` appends and at rotation,
        ``"never"`` only at rotation and close.
    max_segment_bytes:
        Rotation threshold for the active segment.
    storage:
        The byte-level backend; defaults to :class:`FileStorage`.  The
        chaos framework passes a fault-injecting wrapper here.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync_policy: str = "always",
        fsync_every: int = 64,
        max_segment_bytes: int = 4 * 1024 * 1024,
        storage: SegmentStorage | None = None,
        name: str = "eventlog",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if fsync_policy not in FSYNC_POLICIES:
            raise EventLogError(
                f"unknown fsync policy {fsync_policy!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if fsync_every < 1:
            raise EventLogError("fsync_every must be >= 1")
        if max_segment_bytes < 1:
            raise EventLogError("max_segment_bytes must be >= 1")
        self.directory = Path(directory)
        self.name = name
        self.fsync_policy = fsync_policy
        self.fsync_every = fsync_every
        self.max_segment_bytes = max_segment_bytes
        self._storage = storage if storage is not None else FileStorage()
        self._registry = (
            registry if registry is not None else obs.get_registry()
        )
        register_eventlog_metrics(self._registry)
        self._lock = threading.Lock()
        self._active: SegmentHandle | None = None
        self._committed = 0
        self._unsynced = 0
        self._next_sequence = 0
        self._closed = False
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise EventLogError(
                f"cannot create log directory {self.directory}: {error}"
            ) from error
        with self._lock:
            self._recover_locked()

    # -- lifecycle ---------------------------------------------------------

    def _segments_locked(self) -> list[Path]:
        return self._storage.list_segments(self.directory, _SEGMENT_GLOB)

    def _segment_path(self, first_sequence: int) -> Path:
        return self.directory / f"segment-{first_sequence:012d}.jsonl"

    def _recover_locked(self) -> None:
        """Repair the tail, learn the next sequence, open for append."""
        segments = self._segments_locked()
        next_sequence = 0
        # Walk from the back: the newest segment holding a valid record
        # fixes the sequence; newer fully-torn segments are truncated.
        for index in range(len(segments) - 1, -1, -1):
            path = segments[index]
            parsed = _parse_segment(self._storage.read_bytes(path))
            if parsed.tail_records and index == len(segments) - 1:
                self._storage.truncate_path(path, parsed.valid_end)
                self._counter(
                    "repro_eventlog_truncated_tails_total"
                ).inc(log=self.name)
                obs.event(
                    "eventlog.truncate_tail",
                    log=self.name,
                    segment=path.name,
                    records=parsed.tail_records,
                    bytes=parsed.size - parsed.valid_end,
                )
            if parsed.events:
                next_sequence = parsed.events[-1].sequence + 1
                break
        self._next_sequence = next_sequence
        if segments:
            handle = self._storage.open_append(segments[-1])
        else:
            handle = self._storage.open_append(
                self._segment_path(next_sequence)
            )
        self._active = handle
        self._committed = handle.position()
        self._unsynced = 0
        self._gauge("repro_eventlog_segments").set(
            float(max(len(segments), 1)), log=self.name
        )
        obs.event(
            "eventlog.open",
            log=self.name,
            next_sequence=next_sequence,
            segments=max(len(segments), 1),
        )

    def close(self) -> None:
        """Flush and close the active segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handle = self._active
            self._active = None
            if handle is None:
                return
            try:
                if self.fsync_policy != "never" and self._unsynced:
                    handle.sync()
            finally:
                handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- appending ---------------------------------------------------------

    @property
    def next_sequence(self) -> int:
        """The sequence the next acknowledged append will carry."""
        with self._lock:
            return self._next_sequence

    def append(self, event: InteractionEvent) -> InteractionEvent:
        """Durably append one event; returns it with its sequence set.

        Raises :class:`~repro.errors.EventLogError` when the event could
        not be acknowledged; the segment is rolled back to the last
        committed byte first, so an aborted append leaves no trace.
        """
        started = time.perf_counter()
        with self._lock:
            stamped = self._append_locked(event)
        self._registry.histogram(
            "repro_eventlog_append_seconds",
            buckets=_APPEND_BUCKETS,
        ).observe(time.perf_counter() - started)
        return stamped

    def append_many(
        self, events: Iterable[InteractionEvent]
    ) -> list[InteractionEvent]:
        """Append a batch under one lock hold; one fsync at the end.

        All-or-nothing is *per event*: the batch stops at the first
        failed append (already-acknowledged prefix events stay durable)
        and the error propagates.
        """
        stamped: list[InteractionEvent] = []
        with self._lock:
            for event in events:
                stamped.append(self._append_locked(event, defer_sync=True))
            self._sync_if_due_locked(force=self.fsync_policy == "always")
        return stamped

    def _append_locked(
        self, event: InteractionEvent, defer_sync: bool = False
    ) -> InteractionEvent:
        if self._closed:
            raise EventLogError(f"event log {self.name!r} is closed")
        stamped = event.with_sequence(self._next_sequence)
        try:
            data = encode_record(stamped)  # raises before any byte lands
        except EventLogError:
            self._counter("repro_eventlog_appends_total").inc(
                log=self.name, outcome="error"
            )
            raise
        handle = self._require_active_locked()
        if (
            self._committed > 0
            and self._committed + len(data) > self.max_segment_bytes
        ):
            self._rotate_locked()
            handle = self._require_active_locked()
        try:
            handle.write(data)
            if not defer_sync:
                self._unsynced += 1
                self._sync_if_due_locked(
                    force=self.fsync_policy == "always"
                )
            else:
                self._unsynced += 1
        except EventLogError:
            self._counter("repro_eventlog_appends_total").inc(
                log=self.name, outcome="error"
            )
            self._rollback_locked()
            raise
        self._committed = handle.position()
        self._next_sequence += 1
        self._counter("repro_eventlog_appends_total").inc(
            log=self.name, outcome="ok"
        )
        self._counter("repro_eventlog_bytes_total").inc(
            amount=float(len(data)), log=self.name
        )
        return stamped

    def _sync_if_due_locked(self, force: bool = False) -> None:
        if self._unsynced == 0:
            return
        due = force or (
            self.fsync_policy == "interval"
            and self._unsynced >= self.fsync_every
        )
        if not due:
            return
        handle = self._require_active_locked()
        handle.sync()
        self._unsynced = 0
        self._counter("repro_eventlog_fsyncs_total").inc(log=self.name)

    def sync(self) -> None:
        """Force an fsync barrier regardless of policy."""
        with self._lock:
            if self._closed or self._active is None:
                return
            self._sync_if_due_locked(force=True)

    def _require_active_locked(self) -> SegmentHandle:
        if self._active is None:
            # A previous rollback could not repair in place; reopen the
            # newest segment and cut it back to the committed boundary.
            segments = self._segments_locked()
            path = (
                segments[-1] if segments
                else self._segment_path(self._next_sequence)
            )
            self._storage.truncate_path(path, self._committed)
            self._active = self._storage.open_append(path)
        return self._active

    def _rollback_locked(self) -> None:
        """Cut the active segment back to the last acknowledged byte."""
        self._counter("repro_eventlog_rollbacks_total").inc(log=self.name)
        obs.event(
            "eventlog.rollback", log=self.name, committed=self._committed
        )
        handle = self._active
        if handle is None:
            return
        try:
            handle.truncate(self._committed)
        except EventLogError:
            # Even the rollback write path is failing; drop the handle —
            # the next append reopens and repairs via truncate_path.
            self._active = None
            try:
                handle.close()
            except EventLogError:
                pass
        # Anything unsynced was rolled back with the truncate.
        self._unsynced = 0

    def _rotate_locked(self) -> None:
        handle = self._active
        if handle is not None:
            if self.fsync_policy != "never" and self._unsynced:
                handle.sync()
                self._counter("repro_eventlog_fsyncs_total").inc(
                    log=self.name
                )
            self._unsynced = 0
            handle.close()
        self._active = self._storage.open_append(
            self._segment_path(self._next_sequence)
        )
        self._committed = 0
        self._counter("repro_eventlog_rotations_total").inc(log=self.name)
        self._gauge("repro_eventlog_segments").set(
            float(len(self._segments_locked())), log=self.name
        )
        obs.event(
            "eventlog.rotate",
            log=self.name,
            first_sequence=self._next_sequence,
        )

    # -- reading -----------------------------------------------------------

    def scan(self) -> ScanResult:
        """One read pass over every segment: truncate-and-degrade.

        Never raises for damaged *records*: checksum or structure
        failures are counted (``corrupt_records``, and
        ``truncated_tail_records`` for the newest segment's torn tail)
        and the surviving events returned in sequence order.
        """
        with self._lock:
            return self._scan_locked()

    def _scan_locked(self) -> ScanResult:
        if self._active is not None:
            self._sync_if_due_locked(
                force=self.fsync_policy != "never" and self._unsynced > 0
            )
        segments = self._segments_locked()
        events: list[InteractionEvent] = []
        corrupt = 0
        tail = 0
        scanned = 0
        for index, path in enumerate(segments):
            parsed = _parse_segment(self._storage.read_bytes(path))
            events.extend(parsed.events)
            scanned += parsed.size
            if index == len(segments) - 1:
                corrupt += parsed.corrupt_before_tail
                tail += parsed.tail_records
            else:
                # A torn region in a non-newest segment is mid-stream
                # damage (rotation happened after it): count as corrupt.
                corrupt += parsed.corrupt_before_tail + parsed.tail_records
        if corrupt:
            self._counter("repro_eventlog_corrupt_records_total").inc(
                amount=float(corrupt), log=self.name
            )
            obs.event(
                "eventlog.corrupt_records", log=self.name, records=corrupt
            )
        return ScanResult(
            events=tuple(events),
            corrupt_records=corrupt,
            truncated_tail_records=tail,
            segments=len(segments),
            bytes_scanned=scanned,
        )

    def segment_paths(self) -> list[Path]:
        """Current on-disk segments, oldest first."""
        with self._lock:
            return self._segments_locked()

    # -- compaction --------------------------------------------------------

    def compact(self) -> CompactionReport:
        """Fold superseded events into a single checkpoint segment.

        The folded stream replays to the same final *state* (dataset
        ratings, profile attributes, cache generations); per-event audit
        detail (re-rate deltas, edit journals) is deliberately traded
        for size — that history lives in the pre-compaction segments.
        """
        with self._lock:
            if self._closed:
                raise EventLogError(f"event log {self.name!r} is closed")
            scan = self._scan_locked()
            folded = _fold_events(scan.events)
            handle = self._active
            if handle is not None:
                if self.fsync_policy != "never" and self._unsynced:
                    handle.sync()
                handle.close()
                self._active = None
                self._unsynced = 0
            segments = self._segments_locked()
            bytes_before = scan.bytes_scanned
            checkpoint = self.directory / "checkpoint.jsonl.tmp"
            writer = self._storage.open_append(checkpoint)
            try:
                stamped = []
                for sequence, event in enumerate(folded):
                    stamped.append(event.with_sequence(sequence))
                for event in stamped:
                    writer.write(encode_record(event))
                writer.sync()
                bytes_after = writer.position()
            finally:
                writer.close()
            for path in segments:
                self._storage.remove(path)
            final = self._segment_path(0)
            self._storage.replace(checkpoint, final)
            # Sequences restart at 0 in the checkpoint; live appends
            # continue from the pre-compaction counter unless the fold
            # shrank below it (it always does or stays equal).
            self._next_sequence = max(self._next_sequence, len(stamped))
            self._active = self._storage.open_append(final)
            self._committed = self._active.position()
            self._counter("repro_eventlog_compactions_total").inc(
                log=self.name
            )
            self._gauge("repro_eventlog_segments").set(1.0, log=self.name)
            obs.event(
                "eventlog.compact",
                log=self.name,
                events_before=len(scan.events),
                events_after=len(stamped),
                bytes_before=bytes_before,
                bytes_after=bytes_after,
            )
            return CompactionReport(
                events_before=len(scan.events),
                events_after=len(stamped),
                segments_before=len(segments),
                bytes_before=bytes_before,
                bytes_after=bytes_after,
            )

    def rewrite(
        self, keep: Callable[[InteractionEvent], bool]
    ) -> tuple[InteractionEvent, ...]:
        """Filtered rewrite: keep matching events, return the rest.

        The hash-range handoff primitive for shard rebalancing
        (:meth:`repro.serving.sharding.ShardedServer.resize`): events
        whose users moved to another shard are *removed* from this log
        and returned, in sequence order, for the caller to append to
        the destination shard's log.  Unlike :meth:`compact`, kept
        events preserve their **original** sequence numbers (gaps where
        events moved out are fine — replay never requires contiguity)
        and ``next_sequence`` is unchanged, so appends after a rewrite
        stay strictly increasing.  With nothing to remove this is a
        no-op that touches no segment.
        """
        with self._lock:
            if self._closed:
                raise EventLogError(f"event log {self.name!r} is closed")
            scan = self._scan_locked()
            kept = [event for event in scan.events if keep(event)]
            removed = [event for event in scan.events if not keep(event)]
            if not removed:
                return ()
            handle = self._active
            if handle is not None:
                if self.fsync_policy != "never" and self._unsynced:
                    handle.sync()
                handle.close()
                self._active = None
                self._unsynced = 0
            segments = self._segments_locked()
            if kept:
                rewritten = self.directory / "rewrite.jsonl.tmp"
                writer = self._storage.open_append(rewritten)
                try:
                    for event in kept:
                        writer.write(encode_record(event))
                    writer.sync()
                finally:
                    writer.close()
                final = self._segment_path(kept[0].sequence)
                for path in segments:
                    if path != final:
                        self._storage.remove(path)
                self._storage.replace(rewritten, final)
                self._active = self._storage.open_append(final)
                self._committed = self._active.position()
            else:
                for path in segments:
                    self._storage.remove(path)
                self._active = self._storage.open_append(
                    self._segment_path(self._next_sequence)
                )
                self._committed = self._active.position()
            self._gauge("repro_eventlog_segments").set(1.0, log=self.name)
            obs.event(
                "eventlog.rewrite",
                log=self.name,
                kept=len(kept),
                removed=len(removed),
            )
            return tuple(removed)

    # -- metric shorthands -------------------------------------------------

    def _counter(self, metric_name: str) -> "Counter":
        return self._registry.counter(
            metric_name, "", labelnames=_LABELS[metric_name]
        )

    def _gauge(self, metric_name: str) -> "Gauge":
        return self._registry.gauge(
            metric_name, "", labelnames=_LABELS[metric_name]
        )


#: Label schemas for the shorthand accessors (must match registration).
_LABELS = {
    "repro_eventlog_appends_total": ("log", "outcome"),
    "repro_eventlog_bytes_total": ("log",),
    "repro_eventlog_fsyncs_total": ("log",),
    "repro_eventlog_rotations_total": ("log",),
    "repro_eventlog_rollbacks_total": ("log",),
    "repro_eventlog_corrupt_records_total": ("log",),
    "repro_eventlog_truncated_tails_total": ("log",),
    "repro_eventlog_compactions_total": ("log",),
    "repro_eventlog_replayed_events_total": ("log", "kind"),
    "repro_eventlog_replay_skipped_total": ("log",),
    "repro_eventlog_segments": ("log",),
}


def _fold_events(
    events: Sequence[InteractionEvent],
) -> list[InteractionEvent]:
    """Collapse an event stream to a state-equivalent snapshot stream.

    Ratings fold to the final per-(user, item) value; profile edits fold
    to the final attribute set (volunteered beats inferred, exactly the
    live :class:`~repro.interaction.profile.ScrutableProfile` rules);
    critique/relax events fold to one marker per user (their only replay
    effect is a cache-generation bump).
    """
    ratings: dict[tuple[str, str], tuple[float, str]] = {}
    profiles: dict[str, dict[str, tuple[str, dict[str, object]]]] = {}
    critiqued: dict[str, str] = {}
    for event in events:
        if event.kind in ("rate", "re-rate", "correct-prediction"):
            item_id = event.item_id
            value = event.value
            if item_id is None or value is None:
                continue
            ratings[(event.user_id, item_id)] = (value, event.channel)
        elif event.kind == "rate-batch":
            for item_id, value in event.ratings.items():
                ratings[(event.user_id, item_id)] = (value, event.channel)
        elif event.kind == "undo":
            item_id = event.item_id
            if item_id is None:
                continue
            if event.previous_value is None:
                ratings.pop((event.user_id, item_id), None)
            else:
                ratings[(event.user_id, item_id)] = (
                    event.previous_value,
                    event.channel,
                )
        elif event.kind in PROFILE_KINDS:
            attributes = profiles.setdefault(event.user_id, {})
            name = event.payload.get("name")
            if not isinstance(name, str):
                continue
            if event.kind == "profile-volunteer":
                attributes[name] = ("profile-volunteer", dict(event.payload))
            elif event.kind == "profile-infer":
                existing = attributes.get(name)
                if existing is not None and existing[0] == (
                    "profile-volunteer"
                ):
                    continue
                attributes[name] = ("profile-infer", dict(event.payload))
            elif event.kind == "profile-correct":
                if name not in attributes:
                    continue
                payload = {
                    "name": name,
                    "value": event.payload.get("value"),
                    "weight": 1.0,
                }
                attributes[name] = ("profile-volunteer", payload)
            elif event.kind == "profile-remove":
                attributes.pop(name, None)
        elif event.kind in CRITIQUE_KINDS:
            critiqued.setdefault(event.user_id, event.channel)
    folded: list[InteractionEvent] = []
    for (user_id, item_id), (value, channel) in sorted(ratings.items()):
        folded.append(
            InteractionEvent(
                kind="rate",
                user_id=user_id,
                channel=channel,
                payload={
                    "item_id": item_id,
                    "value": value,
                    "previous_value": None,
                },
            )
        )
    for user_id in sorted(profiles):
        attributes = profiles[user_id]
        # Inferred first, volunteered last: replaying in this order
        # reproduces "volunteered never overwritten by inference".
        for kind_rank in ("profile-infer", "profile-volunteer"):
            for name in sorted(attributes):
                kind, payload = attributes[name]
                if kind != kind_rank:
                    continue
                folded.append(
                    InteractionEvent(
                        kind=kind,
                        user_id=user_id,
                        channel="profile",
                        payload=payload,
                    )
                )
    for user_id in sorted(critiqued):
        folded.append(
            InteractionEvent(
                kind="critique",
                user_id=user_id,
                channel=critiqued[user_id],
                payload={"compacted": True},
            )
        )
    return folded
