"""The versioned :class:`InteractionEvent` record — one schema for all
interaction channels.

Every scrutability action the paper builds on — "the user rates items",
gives opinions, critiques, edits the profile (Sections 3.6, 5) — is
expressed as one :class:`InteractionEvent`: the *same* object is handed
to ``subscribe`` callbacks (cache invalidation) and appended to the
durable :class:`~repro.eventlog.log.EventLog` (crash recovery).  Before
this unification the four channels notified subscribers with ad-hoc
payloads (a bare user id here, nothing there); one typed schema means
one replay path and one invalidation contract.

The record is deliberately JSON-first: ``to_record`` / ``from_record``
round-trip through the exact dict written to disk, and the checksum
helpers canonicalise that dict so a bit flip anywhere in the line is
detected on read.
"""

from __future__ import annotations

import json
import zlib
from collections.abc import Mapping
from dataclasses import dataclass, field, replace

from repro.errors import EventLogError

__all__ = [
    "SCHEMA_VERSION",
    "RATING_KINDS",
    "PROFILE_KINDS",
    "CRITIQUE_KINDS",
    "KNOWN_KINDS",
    "UNSEQUENCED",
    "InteractionEvent",
    "encode_record",
    "decode_record",
]

#: Version written into every record; bump on incompatible layout changes.
SCHEMA_VERSION = 1

#: Sentinel sequence for an event that has not been through the log yet.
UNSEQUENCED = -1

#: Kinds that carry rating writes (replayed into the dataset).
RATING_KINDS = frozenset(
    {"rate", "re-rate", "correct-prediction", "undo", "rate-batch"}
)

#: Kinds that carry scrutable-profile edits.
PROFILE_KINDS = frozenset(
    {
        "profile-volunteer",
        "profile-infer",
        "profile-correct",
        "profile-remove",
    }
)

#: Kinds that carry critique-session state changes (ephemeral session
#: state; replay restores the cache-generation side effect only).
CRITIQUE_KINDS = frozenset({"critique", "relax"})

KNOWN_KINDS = RATING_KINDS | PROFILE_KINDS | CRITIQUE_KINDS


@dataclass(frozen=True)
class InteractionEvent:
    """One durable interaction: who did what, with what payload.

    ``sequence`` is assigned by :meth:`EventLog.append`
    (:data:`UNSEQUENCED` until then) and is strictly monotonic within
    one log.  ``payload`` must be JSON-serialisable — the append path
    refuses anything else *before* any in-memory state mutates.
    """

    kind: str
    user_id: str
    channel: str
    payload: Mapping[str, object] = field(default_factory=dict)
    sequence: int = UNSEQUENCED
    version: int = SCHEMA_VERSION

    # -- convenience accessors (rating-shaped payloads) -------------------

    @property
    def item_id(self) -> str | None:
        """The rated item for rating-shaped events, else ``None``."""
        value = self.payload.get("item_id")
        return value if isinstance(value, str) else None

    @property
    def value(self) -> float | None:
        """The rating value for rating-shaped events, else ``None``."""
        value = self.payload.get("value")
        return float(value) if isinstance(value, (int, float)) else None

    @property
    def previous_value(self) -> float | None:
        """The replaced rating value (re-rates/undo), else ``None``."""
        value = self.payload.get("previous_value")
        return float(value) if isinstance(value, (int, float)) else None

    @property
    def ratings(self) -> dict[str, float]:
        """Item → value mapping for ``rate-batch`` events (else empty)."""
        raw = self.payload.get("ratings")
        if not isinstance(raw, Mapping):
            return {}
        return {str(item): float(value) for item, value in raw.items()}

    # -- serialisation ----------------------------------------------------

    def with_sequence(self, sequence: int) -> "InteractionEvent":
        """A copy of this event with its log sequence assigned."""
        return replace(self, sequence=sequence)

    def to_record(self) -> dict[str, object]:
        """The JSON-ready dict written to the log (checksum excluded)."""
        return {
            "v": self.version,
            "seq": self.sequence,
            "channel": self.channel,
            "kind": self.kind,
            "user": self.user_id,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "InteractionEvent":
        """Rebuild an event from a decoded log record.

        Raises :class:`~repro.errors.EventLogError` on a structurally
        invalid record (missing fields, wrong types); the log's scan
        loop converts that into a corrupt-record count, never a crash.
        """
        try:
            version = int(record["v"])  # type: ignore[arg-type]
            sequence = int(record["seq"])  # type: ignore[arg-type]
            channel = record["channel"]
            kind = record["kind"]
            user_id = record["user"]
            payload = record["payload"]
        except (KeyError, TypeError, ValueError) as error:
            raise EventLogError(f"malformed event record: {error}") from error
        if not isinstance(channel, str) or not isinstance(kind, str):
            raise EventLogError("event channel/kind must be strings")
        if not isinstance(user_id, str):
            raise EventLogError("event user id must be a string")
        if not isinstance(payload, Mapping):
            raise EventLogError("event payload must be a mapping")
        return cls(
            kind=kind,
            user_id=user_id,
            channel=channel,
            payload=dict(payload),
            sequence=sequence,
            version=version,
        )


def _canonical(record: Mapping[str, object]) -> bytes:
    """Canonical bytes of a record for checksumming (sorted, compact)."""
    try:
        return json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise EventLogError(
            f"event payload is not JSON-serialisable: {error}"
        ) from error


def encode_record(event: InteractionEvent) -> bytes:
    """One log line: the record dict plus its CRC32, newline-terminated.

    Raises :class:`~repro.errors.EventLogError` for unserialisable
    payloads — deliberately *before* any bytes reach the disk, so a bad
    payload can never half-commit.
    """
    record = event.to_record()
    body = _canonical(record)
    record["crc"] = zlib.crc32(body)
    return _canonical(record) + b"\n"


def decode_record(line: bytes) -> InteractionEvent:
    """Parse and verify one log line back into an event.

    Raises :class:`~repro.errors.EventLogError` on JSON damage, a
    missing/incorrect checksum, or a structurally invalid record.
    """
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise EventLogError(f"undecodable event line: {error}") from error
    if not isinstance(record, dict):
        raise EventLogError("event line is not a JSON object")
    stored_crc = record.pop("crc", None)
    if not isinstance(stored_crc, int):
        raise EventLogError("event line has no checksum")
    actual_crc = zlib.crc32(_canonical(record))
    if actual_crc != stored_crc:
        raise EventLogError(
            f"checksum mismatch: stored {stored_crc}, actual {actual_crc}"
        )
    return InteractionEvent.from_record(record)
