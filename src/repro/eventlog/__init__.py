"""Durable interaction event log: WAL, recovery replay, compaction.

The paper's scrutability story (Tintarev & Masthoff §3.6, §5) only
holds if user interactions *survive*: a rating, critique, opinion, or
profile edit that vanishes on restart breaks the trust contract the
explanations exist to build.  :mod:`repro.eventlog` makes every
interaction durable:

* :class:`InteractionEvent` — the one typed record all four channels
  emit (to subscribers *and* to disk);
* :class:`EventLog` — append-only checksummed JSONL segments with
  monotonic sequences, configurable fsync, rotation, and compaction;
  damage is truncated/skipped and counted, never fatal;
* :func:`replay` — rebuilds dataset, profiles, substrate state
  (incremental ``absorb``), and cache generations on startup.

See ``docs/event_log.md`` for the format spec and durability
tradeoffs.
"""

from repro.eventlog.events import (
    CRITIQUE_KINDS,
    KNOWN_KINDS,
    PROFILE_KINDS,
    RATING_KINDS,
    SCHEMA_VERSION,
    UNSEQUENCED,
    InteractionEvent,
    decode_record,
    encode_record,
)
from repro.eventlog.log import (
    FSYNC_POLICIES,
    CompactionReport,
    EventLog,
    ScanResult,
    register_eventlog_metrics,
)
from repro.eventlog.replay import ReplayReport, replay, replay_events
from repro.eventlog.storage import FileStorage, SegmentHandle, SegmentStorage

__all__ = [
    "SCHEMA_VERSION",
    "UNSEQUENCED",
    "RATING_KINDS",
    "PROFILE_KINDS",
    "CRITIQUE_KINDS",
    "KNOWN_KINDS",
    "FSYNC_POLICIES",
    "InteractionEvent",
    "encode_record",
    "decode_record",
    "EventLog",
    "ScanResult",
    "CompactionReport",
    "register_eventlog_metrics",
    "ReplayReport",
    "replay",
    "replay_events",
    "FileStorage",
    "SegmentHandle",
    "SegmentStorage",
]
