"""Explanation sampling: from pipelines to metric-ready records.

One :class:`ExplanationSample` per explained recommendation, carrying
everything the metric families need in plain, numpy-friendly fields:
the predicted value, an evidence-only score reconstruction, the cited
and carried support atoms (via the structured ``evidence_items``
accessors — never parsed from rendered text), and the degradation flag
so the degraded path is *excluded* from quality metrics rather than
miscounted as zero-quality.

The reconstruction answers the fidelity question mechanically: rebuild
the score from nothing but the cited evidence (the CF
deviation-from-mean formula over cited neighbours, the item-CF weighted
average over cited similar items) and compare it with the score the
substrate actually produced.  A substrate explained by its own exact
evidence reconstructs perfectly; a post-hoc explanation (SVD's latent
neighbours) does not — which is precisely the gap the fidelity metric
exists to expose.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.explainers.base import Explainer
from repro.core.explanation import Explanation
from repro.core.pipeline import ExplainedRecommendation, ExplainedRecommender
from repro.recsys.base import (
    EvidenceItem,
    NeighborRatingsEvidence,
    SimilarItemEvidence,
)
from repro.recsys.data import Dataset

__all__ = [
    "ExplanationSample",
    "build_sample",
    "collect_samples",
    "group_by_user",
    "reconstruct_score",
    "citation_mass_components",
]

#: Evidence-record kinds with additive attribution semantics, where
#: "how much of the score-driving mass did the citation cover" is well
#: defined.  Similarity-based records are score-*reconstructed* instead
#: (see :func:`reconstruct_score`), never mass-counted, so a partial
#: citation is not penalised twice.
_MASS_RECORD_KINDS = frozenset(
    {"keywords", "rating_influence", "utility", "profile_attribute"}
)


@dataclass(frozen=True)
class ExplanationSample:
    """One explained recommendation, flattened for the metric families.

    ``reconstructed`` is ``None`` when no score reconstruction is
    defined for the cited evidence (e.g. keyword-only explanations);
    ``mass_components`` are per-kind cited-over-carried weight shares in
    [0, 1].  ``degraded`` folds together the pipeline's degradation flag
    and the explanation's explicit :class:`~repro.recsys.base.NoEvidence`
    marker.
    """

    user_id: str
    item_id: str
    value: float
    reconstructed: float | None
    mass_components: tuple[float, ...]
    cited: tuple[EvidenceItem, ...]
    carried: tuple[EvidenceItem, ...]
    degraded: bool


def reconstruct_score(
    user_id: str,
    explanation: Explanation,
    cited: tuple[EvidenceItem, ...],
    dataset: Dataset,
) -> float | None:
    """Rebuild the predicted score from the cited evidence only.

    Two reconstructions, tried in order:

    * cited neighbours (user-based CF): the deviation-from-mean formula
      ``mean(u) + sum sim * (r - mean(v)) / sum |sim|``;
    * cited similar items (item-based CF, content, SVD latent
      neighbours): the similarity-weighted rating average
      ``sum sim * r(u, j) / sum |sim|``.

    Returns ``None`` when neither applies — the explanation carries no
    score-bearing evidence to reconstruct from.
    """
    cited_users = {item.ref for item in cited if item.kind == "user"}
    cited_items = {item.ref for item in cited if item.kind == "item"}

    for record in explanation.evidence:
        if isinstance(record, NeighborRatingsEvidence) and cited_users:
            numerator = 0.0
            denominator = 0.0
            for neighbor in record.neighbors:
                if neighbor.user_id not in cited_users:
                    continue
                neighbor_mean = dataset.user_mean(neighbor.user_id)
                numerator += neighbor.similarity * (
                    neighbor.rating - neighbor_mean
                )
                denominator += abs(neighbor.similarity)
            if denominator > 0.0:
                return dataset.scale.clip(
                    dataset.user_mean(user_id) + numerator / denominator
                )

    numerator = 0.0
    denominator = 0.0
    seen_any = False
    for record in explanation.evidence:
        if isinstance(record, SimilarItemEvidence) and (
            record.item_id in cited_items
        ):
            numerator += record.similarity * record.user_rating
            denominator += abs(record.similarity)
            seen_any = True
    if seen_any and denominator > 0.0:
        return dataset.scale.clip(numerator / denominator)
    return None


def citation_mass_components(
    explanation: Explanation,
    cited: tuple[EvidenceItem, ...],
) -> tuple[float, ...]:
    """Per-record cited-over-carried absolute weight shares, in (0, 1].

    For each additive-attribution record the explanation *uses* (cites
    at least one atom of): what fraction of the record's total
    attribution mass did the citation actually show the user?  An
    explainer citing its full evidence scores 1.0 per record; a top-k
    citation scores the mass share of its k atoms.  Records the
    explanation ignores entirely belong to a different explanation
    style and contribute no component — the explanation is measured on
    what it claims, not on what it declined to talk about.
    """
    cited_keys = {item.key for item in cited}
    components: list[float] = []
    for record in explanation.evidence:
        if record.kind not in _MASS_RECORD_KINDS:
            continue
        atoms = record.support_items()
        total = sum(abs(atom.weight) for atom in atoms)
        if total <= 0.0:
            continue
        covered = sum(
            abs(atom.weight) for atom in atoms if atom.key in cited_keys
        )
        if covered <= 0.0:
            continue
        components.append(min(1.0, covered / total))
    return tuple(components)


def build_sample(
    user_id: str,
    explained: ExplainedRecommendation,
    explainer: Explainer,
    dataset: Dataset,
) -> ExplanationSample:
    """Flatten one explained recommendation into a metric-ready sample."""
    explanation = explained.explanation
    degraded = explained.degraded or explanation.evidence_withheld
    carried = explanation.evidence_items()
    cited = () if degraded else explainer.evidence_items(explanation)
    reconstructed = (
        None
        if degraded
        else reconstruct_score(user_id, explanation, cited, dataset)
    )
    return ExplanationSample(
        user_id=user_id,
        item_id=explained.item_id,
        value=explained.recommendation.prediction.value,
        reconstructed=reconstructed,
        mass_components=(
            () if degraded else citation_mass_components(explanation, cited)
        ),
        cited=cited,
        carried=carried,
        degraded=degraded,
    )


def collect_samples(
    pipeline: ExplainedRecommender,
    user_ids: Iterable[str],
    n: int = 5,
) -> list[ExplanationSample]:
    """Explained recommendations for a user population, as samples.

    Runs the pipeline's batch path per user and flattens every explained
    recommendation through :func:`build_sample`.  Order is user-major
    and rank-minor, so per-user lists can be regrouped downstream.
    """
    dataset = pipeline.dataset
    explainer = pipeline.explainer
    samples: list[ExplanationSample] = []
    for user_id in user_ids:
        for explained in pipeline.recommend(user_id, n=n):
            samples.append(
                build_sample(user_id, explained, explainer, dataset)
            )
    return samples


def group_by_user(
    samples: Sequence[ExplanationSample],
) -> dict[str, list[ExplanationSample]]:
    """Samples regrouped into per-user lists, preserving rank order."""
    grouped: dict[str, list[ExplanationSample]] = {}
    for sample in samples:
        grouped.setdefault(sample.user_id, []).append(sample)
    return grouped
