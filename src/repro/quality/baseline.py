"""Tolerance-band baselines: quality regressions fail CI like findings.

``quality-baseline.json`` commits the expected value of every offline
metric for every substrate, each with a tolerance band.  ``python -m
repro quality --check`` recomputes the suite and fails (exit 1) when a
metric leaves its band, when the run produces a metric the baseline
has never seen (new surface must be baselined deliberately), or when
the baseline pins a metric the run no longer produces (stale debt).
A malformed baseline, or one recorded against a different world, is an
operational error (exit 2) — those numbers are not comparable, and
comparing them anyway would pass or fail for the wrong reason.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path

from repro.errors import QualityError
from repro.quality.report import METRIC_KEYS, QualityReport

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_TOLERANCE",
    "QualityBaseline",
    "MetricBand",
    "Deviation",
    "BaselineComparison",
]

#: The versioned baseline schema identifier.
BASELINE_SCHEMA = "repro.quality.baseline/v1"

#: Default half-width of a metric's acceptance band.  Wide enough to
#: absorb cross-platform float drift in the seeded suite, narrow
#: enough that a real behavioural change (an explainer citing less, a
#: substrate's evidence thinning out) trips the gate.
DEFAULT_TOLERANCE = 0.05


@dataclass(frozen=True)
class MetricBand:
    """One baselined metric: expected value and tolerance half-width."""

    value: float
    tolerance: float

    def contains(self, measured: float) -> bool:
        """Whether a measured value sits inside the band."""
        return abs(measured - self.value) <= self.tolerance


@dataclass(frozen=True)
class Deviation:
    """One metric outside its band (or missing on either side)."""

    substrate: str
    metric: str
    kind: str  # "regression" | "unbaselined" | "stale"
    measured: float | None = None
    expected: float | None = None
    tolerance: float | None = None

    def describe(self) -> str:
        """One human-readable line for the CLI report."""
        if self.kind == "regression":
            return (
                f"{self.substrate}.{self.metric}: measured "
                f"{self.measured:.4f} outside "
                f"{self.expected:.4f} +/- {self.tolerance:.4f}"
            )
        if self.kind == "unbaselined":
            return (
                f"{self.substrate}.{self.metric}: measured "
                f"{self.measured:.4f} but absent from the baseline "
                f"(run --update-baseline to accept)"
            )
        return (
            f"{self.substrate}.{self.metric}: baselined at "
            f"{self.expected:.4f} but no longer produced "
            f"(run --update-baseline to prune)"
        )


@dataclass(frozen=True)
class BaselineComparison:
    """The verdict of one report-vs-baseline check."""

    deviations: tuple[Deviation, ...] = ()
    checked: int = 0

    @property
    def ok(self) -> bool:
        """Whether every metric matched its band exactly one-to-one."""
        return not self.deviations

    def render(self) -> str:
        """Human-readable verdict block."""
        if self.ok:
            return (
                f"quality check ok: {self.checked} metric(s) within "
                "tolerance"
            )
        lines = [
            f"quality check FAILED: {len(self.deviations)} deviation(s) "
            f"({self.checked} metric(s) checked)"
        ]
        lines.extend(
            f"  {deviation.describe()}" for deviation in self.deviations
        )
        return "\n".join(lines)


class QualityBaseline:
    """The committed per-substrate metric bands plus their world."""

    def __init__(
        self,
        world: Mapping[str, object],
        bands: Mapping[str, Mapping[str, MetricBand]],
    ) -> None:
        self.world: dict[str, object] = dict(world)
        self.bands: dict[str, dict[str, MetricBand]] = {
            substrate: dict(metrics)
            for substrate, metrics in bands.items()
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def from_report(
        cls,
        report: QualityReport,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> "QualityBaseline":
        """A baseline accepting the report's current values."""
        bands = {
            name: {
                metric: MetricBand(value=value, tolerance=tolerance)
                for metric, value in entry.metrics.items()
            }
            for name, entry in report.substrates.items()
        }
        return cls(world=report.world, bands=bands)

    @classmethod
    def parse(cls, text: str, *, origin: str = "<baseline>") -> "QualityBaseline":
        """Parse baseline JSON; anything malformed raises QualityError."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise QualityError(
                f"{origin}: not valid JSON ({error})"
            ) from error
        if not isinstance(payload, dict):
            raise QualityError(f"{origin}: baseline must be a JSON object")
        schema = payload.get("schema")
        if schema != BASELINE_SCHEMA:
            raise QualityError(
                f"{origin}: unsupported schema {schema!r} "
                f"(expected {BASELINE_SCHEMA!r})"
            )
        world = payload.get("world")
        if not isinstance(world, dict):
            raise QualityError(f"{origin}: missing 'world' object")
        substrates = payload.get("substrates")
        if not isinstance(substrates, dict) or not substrates:
            raise QualityError(
                f"{origin}: missing or empty 'substrates' object"
            )
        bands: dict[str, dict[str, MetricBand]] = {}
        for substrate, metrics in substrates.items():
            if not isinstance(metrics, dict):
                raise QualityError(
                    f"{origin}: substrate {substrate!r} entry must be an "
                    "object"
                )
            bands[substrate] = {}
            for metric, band in metrics.items():
                if metric not in METRIC_KEYS:
                    raise QualityError(
                        f"{origin}: unknown metric {metric!r} under "
                        f"{substrate!r}"
                    )
                if (
                    not isinstance(band, dict)
                    or not isinstance(band.get("value"), (int, float))
                    or not isinstance(band.get("tolerance"), (int, float))
                    or band["tolerance"] < 0
                ):
                    raise QualityError(
                        f"{origin}: malformed band for "
                        f"{substrate}.{metric} (need numeric value and "
                        "non-negative tolerance)"
                    )
                bands[substrate][metric] = MetricBand(
                    value=float(band["value"]),
                    tolerance=float(band["tolerance"]),
                )
        return cls(world=world, bands=bands)

    @classmethod
    def load(cls, path: str | Path) -> "QualityBaseline":
        """Load and parse a baseline file; a missing file raises."""
        file_path = Path(path)
        if not file_path.exists():
            raise QualityError(f"baseline not found: {file_path}")
        return cls.parse(
            file_path.read_text(encoding="utf-8"), origin=str(file_path)
        )

    # -- persistence -------------------------------------------------------

    def format(self) -> str:
        """The canonical on-disk JSON text."""
        payload = {
            "schema": BASELINE_SCHEMA,
            "world": self.world,
            "substrates": {
                substrate: {
                    metric: {
                        "value": round(band.value, 6),
                        "tolerance": band.tolerance,
                    }
                    for metric, band in sorted(metrics.items())
                }
                for substrate, metrics in sorted(self.bands.items())
            },
        }
        return json.dumps(payload, indent=2) + "\n"

    def save(self, path: str | Path) -> None:
        """Write the canonical JSON to disk."""
        Path(path).write_text(self.format(), encoding="utf-8")

    # -- checking ----------------------------------------------------------

    def check_world(self, report: QualityReport) -> None:
        """Raise QualityError when the worlds are not comparable."""
        if dict(self.world) != dict(report.world):
            raise QualityError(
                "baseline world does not match this run "
                f"(baseline: {self.world!r}, run: {dict(report.world)!r}); "
                "re-record with --update-baseline"
            )

    def compare(self, report: QualityReport) -> BaselineComparison:
        """Every metric vs its band; returns all deviations found."""
        self.check_world(report)
        deviations: list[Deviation] = []
        checked = 0
        for substrate, entry in sorted(report.substrates.items()):
            bands = self.bands.get(substrate, {})
            for metric, measured in sorted(entry.metrics.items()):
                band = bands.get(metric)
                if band is None:
                    deviations.append(
                        Deviation(
                            substrate=substrate,
                            metric=metric,
                            kind="unbaselined",
                            measured=measured,
                        )
                    )
                    continue
                checked += 1
                if not band.contains(measured):
                    deviations.append(
                        Deviation(
                            substrate=substrate,
                            metric=metric,
                            kind="regression",
                            measured=measured,
                            expected=band.value,
                            tolerance=band.tolerance,
                        )
                    )
        for substrate, metrics in sorted(self.bands.items()):
            produced = report.substrates.get(substrate)
            for metric, band in sorted(metrics.items()):
                if produced is None or metric not in produced.metrics:
                    deviations.append(
                        Deviation(
                            substrate=substrate,
                            metric=metric,
                            kind="stale",
                            expected=band.value,
                        )
                    )
        return BaselineComparison(
            deviations=tuple(deviations), checked=checked
        )
