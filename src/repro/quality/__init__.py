"""Offline explanation-quality metrics as a standing regression gate.

The survey evaluates explanations through user studies against seven
aims; this package adds the *offline* complement — metrics computable
from the explanations themselves, with no user in the loop, cheap
enough to run on every commit:

* **fidelity** — does the cited evidence actually drive the score?
* **diversity** — intra-list and cross-user evidence dissimilarity;
* **coverage** — catalogue fraction ever used as explanation support;
* **popularity bias** — Gini / long-tail share of citation counts.

:func:`run_quality_suite` computes all four families for every
configured (substrate, explainer) pairing over a seeded world,
publishing ``repro_quality_*`` metrics and ``quality.*`` spans;
:class:`QualityBaseline` turns the report into a tolerance-band
regression gate (``python -m repro quality --check``); and
:func:`aim_correlation` bridges the offline metrics to the simulated
seven-aims studies to report where the cheap proxies track the
expensive goals — and where they diverge.
"""

from repro.quality.baseline import (
    BASELINE_SCHEMA,
    DEFAULT_TOLERANCE,
    BaselineComparison,
    Deviation,
    MetricBand,
    QualityBaseline,
)
from repro.quality.correlation import (
    aim_correlation,
    derive_configuration,
    pearson,
    spearman,
)
from repro.quality.metrics import (
    CoverageResult,
    DiversityResult,
    FidelityResult,
    PopularityBiasResult,
    coverage,
    diversity,
    fidelity,
    fidelity_score,
    gini,
    popularity_bias,
)
from repro.quality.report import (
    METRIC_KEYS,
    REPORT_SCHEMA,
    QualityReport,
    SubstrateQuality,
)
from repro.quality.runner import (
    DEFAULT_SPECS,
    QualityWorldConfig,
    SubstrateSpec,
    run_quality_suite,
)
from repro.quality.samples import (
    ExplanationSample,
    build_sample,
    citation_mass_components,
    collect_samples,
    group_by_user,
    reconstruct_score,
)

__all__ = [
    "BASELINE_SCHEMA",
    "DEFAULT_TOLERANCE",
    "DEFAULT_SPECS",
    "METRIC_KEYS",
    "REPORT_SCHEMA",
    "BaselineComparison",
    "CoverageResult",
    "Deviation",
    "DiversityResult",
    "ExplanationSample",
    "FidelityResult",
    "MetricBand",
    "PopularityBiasResult",
    "QualityBaseline",
    "QualityReport",
    "QualityWorldConfig",
    "SubstrateQuality",
    "SubstrateSpec",
    "aim_correlation",
    "build_sample",
    "citation_mass_components",
    "collect_samples",
    "coverage",
    "derive_configuration",
    "diversity",
    "fidelity",
    "fidelity_score",
    "gini",
    "group_by_user",
    "pearson",
    "popularity_bias",
    "reconstruct_score",
    "run_quality_suite",
    "spearman",
]
