"""Offline metrics vs the seven aims: do cheap proxies track goals?

The survey's core caution is that explanation quality is *goal
relative* — a facility is good at transparency, or persuasion, or
trust, not "good" in the abstract.  Offline metrics (fidelity,
diversity, coverage, bias) are cheap proxies computed without any user
in the loop; the simulated studies in :mod:`repro.evaluation` are the
expensive aim-level ground truth.  This module runs both on the same
substrates and reports, per (offline metric, aim) pair, how well the
proxy tracks the aim across the substrate roster — Pearson and
Spearman correlation plus a coarse agreement verdict.

The bridge works by *deriving* an
:class:`~repro.evaluation.harness.ExplanationConfiguration` from each
substrate's measured quality: measured fidelity feeds the stimulus
fidelity, the fidelity shortfall becomes overselling, the measured
mean rendered length becomes reading cost, and the mean citation
count drives persuasive pull.  Nothing is hand-assigned per substrate
— the simulated study sees only what the quality suite measured.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.aims import Aim
from repro.evaluation.harness import (
    ExplanationConfiguration,
    evaluate_configuration,
)
from repro.quality.report import METRIC_KEYS, QualityReport, SubstrateQuality

__all__ = [
    "derive_configuration",
    "pearson",
    "spearman",
    "aim_correlation",
]

#: Characters per second of explanation text a simulated user reads.
_READING_CHARS_PER_SECOND = 15.0

#: |r| thresholds for the coarse agreement verdicts.
_TRACKS_THRESHOLD = 0.6
_WEAK_THRESHOLD = 0.3


def derive_configuration(
    entry: SubstrateQuality,
) -> ExplanationConfiguration:
    """An evaluation-harness configuration from measured quality.

    * ``fidelity`` — the measured offline fidelity, directly;
    * ``overselling`` — the fidelity shortfall (evidence that does not
      drive the score oversells it);
    * ``reading_seconds`` — mean rendered length at a fixed reading
      speed, capped at the harness's 20 s ceiling;
    * ``persuasive_pull`` — grows with the mean number of cited
      atoms (more concrete support pulls harder), saturating at 0.8.
    """
    measured_fidelity = entry.metrics.get("fidelity", 0.0)
    mean_chars = entry.stimulus.get("mean_text_chars", 0.0)
    mean_atoms = entry.stimulus.get("mean_cited_atoms", 0.0)
    return ExplanationConfiguration(
        name=f"quality:{entry.substrate}",
        fidelity=float(min(1.0, max(0.0, measured_fidelity))),
        overselling=float(min(1.0, max(0.0, 1.0 - measured_fidelity))),
        reading_seconds=float(
            min(20.0, mean_chars / _READING_CHARS_PER_SECOND)
        ),
        persuasive_pull=float(min(0.8, 0.1 + 0.06 * mean_atoms)),
        supports_rating_correction=True,
    )


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share their mean rank), 1-based."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    ranks[order] = np.arange(1, len(values) + 1, dtype=float)
    for value in np.unique(values):
        mask = values == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float | None:
    """Pearson r, or ``None`` when either series has zero variance."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2 or float(x.std()) == 0.0 or float(y.std()) == 0.0:
        return None
    return float(np.corrcoef(x, y)[0, 1])


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float | None:
    """Spearman rho (Pearson over average ranks), or ``None``."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2:
        return None
    return pearson(_rankdata(x), _rankdata(y))


def _agreement(r: float | None) -> str:
    if r is None:
        return "undefined"
    if abs(r) >= _TRACKS_THRESHOLD:
        return "tracks"
    if abs(r) >= _WEAK_THRESHOLD:
        return "weak"
    return "diverges"


def aim_correlation(
    report: QualityReport,
    world: object,
    n_users: int = 40,
    items_per_user: int = 6,
    seed: int = 0,
) -> dict:
    """Offline-metric-vs-aim agreement across the report's substrates.

    Evaluates every substrate's derived configuration with the seven-aims
    harness over ``world``, then correlates each offline metric with
    each aim score across substrates.  Returns the JSON-ready dict the
    report embeds: ``n_substrates``, per-substrate ``aim_scores``, and
    the ``entries`` table with pearson/spearman/agreement per pair.
    """
    names = sorted(report.substrates)
    aim_scores: dict[str, dict[str, float]] = {}
    for name in names:
        configuration = derive_configuration(report.substrates[name])
        card = evaluate_configuration(
            configuration,
            world,
            n_users=n_users,
            items_per_user=items_per_user,
            seed=seed,
        )
        aim_scores[name] = {
            aim.value: score for aim, score in card.scores.items()
        }

    entries: list[dict] = []
    for metric in METRIC_KEYS:
        metric_values = [
            report.substrates[name].metrics.get(metric, 0.0)
            for name in names
        ]
        for aim in Aim:
            aim_values = [
                aim_scores[name].get(aim.value, 0.0) for name in names
            ]
            r = pearson(metric_values, aim_values)
            rho = spearman(metric_values, aim_values)
            entries.append(
                {
                    "metric": metric,
                    "aim": aim.value,
                    "pearson": None if r is None else round(r, 4),
                    "spearman": None if rho is None else round(rho, 4),
                    "agreement": _agreement(r),
                }
            )
    return {
        "n_substrates": len(names),
        "eval": {
            "n_users": n_users,
            "items_per_user": items_per_user,
            "seed": seed,
        },
        "aim_scores": {
            name: {
                aim: round(score, 4) for aim, score in scores.items()
            }
            for name, scores in aim_scores.items()
        },
        "entries": entries,
    }
