"""Versioned quality reports: the JSON artefact of a suite run.

A :class:`QualityReport` is what ``python -m repro quality`` prints,
what the baseline gate compares against, and what
``benchmarks/run_bench.py`` embeds as the ``quality`` section of
``BENCH_obs.json``.  The schema is versioned (``repro.quality.report/v1``)
so downstream consumers can detect drift instead of misparsing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.render import table

__all__ = [
    "METRIC_KEYS",
    "REPORT_SCHEMA",
    "SubstrateQuality",
    "QualityReport",
]

#: The versioned report schema identifier.
REPORT_SCHEMA = "repro.quality.report/v1"

#: Every metric key a substrate entry reports, grouped by family:
#: fidelity; diversity (intra-list, cross-user); coverage; popularity
#: bias (gini, tail share).  Order is presentation order.
METRIC_KEYS: tuple[str, ...] = (
    "fidelity",
    "intra_list_diversity",
    "cross_user_diversity",
    "coverage",
    "popularity_gini",
    "tail_share",
)


@dataclass(frozen=True)
class SubstrateQuality:
    """One substrate's offline explanation-quality measurements.

    ``metrics`` holds the :data:`METRIC_KEYS` values; ``counts`` the
    integer accounting (samples, degraded exclusions, support events);
    ``stimulus`` the measured explanation-interface statistics (mean
    rendered length, mean cited atoms) the aim-correlation bridge
    feeds into the simulated user studies.
    """

    substrate: str
    explainer: str
    metrics: dict[str, float]
    counts: dict[str, int]
    stimulus: dict[str, float]
    wall_s: float
    explanations_per_s: float

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "substrate": self.substrate,
            "explainer": self.explainer,
            "metrics": {
                key: round(value, 6) for key, value in self.metrics.items()
            },
            "counts": dict(self.counts),
            "stimulus": {
                key: round(value, 4) for key, value in self.stimulus.items()
            },
            "wall_s": round(self.wall_s, 4),
            "explanations_per_s": round(self.explanations_per_s, 2),
        }


@dataclass
class QualityReport:
    """A full suite run: world, per-substrate metrics, correlation."""

    world: dict[str, object]
    substrates: dict[str, SubstrateQuality] = field(default_factory=dict)
    correlation: dict | None = None

    def as_dict(self) -> dict:
        """JSON-ready representation under :data:`REPORT_SCHEMA`."""
        payload: dict = {
            "schema": REPORT_SCHEMA,
            "world": dict(self.world),
            "substrates": {
                name: entry.as_dict()
                for name, entry in sorted(self.substrates.items())
            },
        }
        if self.correlation is not None:
            payload["correlation"] = self.correlation
        return payload

    def render_text(self) -> str:
        """The human-readable metric table (plus correlation, if run)."""
        rows = []
        for name in sorted(self.substrates):
            entry = self.substrates[name]
            rows.append(
                (
                    name,
                    *(
                        f"{entry.metrics.get(key, 0.0):.3f}"
                        for key in METRIC_KEYS
                    ),
                    str(entry.counts.get("excluded_degraded", 0)),
                )
            )
        headers = (
            "substrate",
            "fidelity",
            "intra_div",
            "cross_div",
            "coverage",
            "gini",
            "tail",
            "degraded",
        )
        blocks = [
            "Explanation-quality metrics "
            f"(world: {self.world.get('n_users')} users x "
            f"{self.world.get('n_items')} items, "
            f"{self.world.get('eval_users')} evaluated)",
            table(headers, rows),
        ]
        if self.correlation is not None:
            blocks.append(self._render_correlation())
        return "\n".join(blocks)

    def _render_correlation(self) -> str:
        correlation = self.correlation or {}
        rows = [
            (
                entry["metric"],
                entry["aim"],
                "n/a" if entry["pearson"] is None else f"{entry['pearson']:+.2f}",
                "n/a" if entry["spearman"] is None else f"{entry['spearman']:+.2f}",
                entry["agreement"],
            )
            for entry in correlation.get("entries", ())
        ]
        return "\n".join(
            [
                "Offline metric vs simulated aim agreement "
                f"(n={correlation.get('n_substrates', 0)} substrates):",
                table(
                    ("offline metric", "aim", "pearson", "spearman", "verdict"),
                    rows,
                ),
            ]
        )
