"""The quality suite: batch metric jobs over simulated populations.

One :func:`run_quality_suite` call fits every configured substrate on a
seeded synthetic world, generates explained recommendations for an
evaluation population, flattens them into samples, and computes the
four offline metric families — publishing each value as a
``repro_quality_*`` gauge, per-explanation fidelity into a histogram,
and the whole run under ``quality.*`` trace spans, so the suite is
observable exactly like the serving and caching layers.

The default roster pairs each substrate with the explainer that
verbalises its native evidence: user CF with the neighbour histogram,
item CF / SVD / content with the similar-item explainer, naive Bayes
with the influence table.  SVD's pairing is deliberately *post hoc*
(latent-space neighbours rationalise a factor-model score) — the suite
exists to measure exactly that fidelity gap.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro import obs
from repro.core.explainers.base import Explainer
from repro.core.explainers.collaborative import NeighborHistogramExplainer
from repro.core.explainers.content import ContentBasedExplainer
from repro.core.explainers.influence import InfluenceExplainer
from repro.core.pipeline import ExplainedRecommender
from repro.domains import make_movies
from repro.quality.metrics import coverage, diversity, fidelity, popularity_bias
from repro.quality.report import QualityReport, SubstrateQuality
from repro.quality.samples import ExplanationSample, build_sample
from repro.recsys.base import Recommender
from repro.recsys.cf_item import ItemBasedCF
from repro.recsys.cf_user import UserBasedCF
from repro.recsys.content import ContentBasedRecommender
from repro.recsys.naive_bayes import NaiveBayesRecommender
from repro.recsys.svd import SVDRecommender

__all__ = [
    "SubstrateSpec",
    "QualityWorldConfig",
    "DEFAULT_SPECS",
    "run_quality_suite",
]


@dataclass(frozen=True)
class SubstrateSpec:
    """One (substrate, explainer) pairing evaluated by the suite."""

    name: str
    substrate: Callable[[], Recommender]
    explainer: Callable[[], Explainer]


@dataclass(frozen=True)
class QualityWorldConfig:
    """The seeded world and population the suite runs over.

    The defaults are the committed-baseline configuration: changing
    them invalidates ``quality-baseline.json`` (the baseline stores its
    world and the checker refuses to compare across worlds).
    """

    n_users: int = 60
    n_items: int = 120
    density: float = 0.25
    seed: int = 7
    eval_users: int = 12
    top_n: int = 5

    def as_dict(self) -> dict[str, object]:
        """JSON-ready world description."""
        return {
            "n_users": self.n_users,
            "n_items": self.n_items,
            "density": self.density,
            "seed": self.seed,
            "eval_users": self.eval_users,
            "top_n": self.top_n,
        }


#: The default suite roster.  At least four substrates is the contract
#: the benchmark section and the aim-correlation report rely on.
DEFAULT_SPECS: tuple[SubstrateSpec, ...] = (
    SubstrateSpec(
        "UserBasedCF", UserBasedCF, NeighborHistogramExplainer
    ),
    SubstrateSpec("ItemBasedCF", ItemBasedCF, ContentBasedExplainer),
    SubstrateSpec(
        "ContentBasedRecommender",
        ContentBasedRecommender,
        ContentBasedExplainer,
    ),
    SubstrateSpec(
        "NaiveBayesRecommender", NaiveBayesRecommender, InfluenceExplainer
    ),
    SubstrateSpec("SVDRecommender", SVDRecommender, ContentBasedExplainer),
)


def _quality_gauge(name: str, help_text: str) -> obs.Gauge:
    gauge = obs.get_registry().gauge(
        name, help_text, labelnames=("substrate",)
    )
    assert isinstance(gauge, obs.Gauge)
    return gauge


def _publish_metrics(
    substrate: str, metrics: dict[str, float], scores: Sequence[float]
) -> None:
    """Register and set the per-substrate ``repro_quality_*`` series."""
    helps = {
        "fidelity": "Mean explanation fidelity (evidence drives score).",
        "intra_list_diversity": (
            "Mean within-list evidence dissimilarity per user."
        ),
        "cross_user_diversity": (
            "Mean cross-user evidence dissimilarity."
        ),
        "coverage": "Catalogue fraction ever cited as support.",
        "popularity_gini": (
            "Gini concentration of per-item citation counts."
        ),
        "tail_share": "Long-tail share of explanation citations.",
    }
    for key, value in metrics.items():
        _quality_gauge(f"repro_quality_{key}", helps[key]).set(
            value, substrate=substrate
        )
    histogram = obs.get_registry().histogram(
        "repro_quality_fidelity_score",
        "Per-explanation fidelity scores.",
        labelnames=("substrate",),
        buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
    )
    for score in scores:
        histogram.observe(score, substrate=substrate)


def _evaluate_spec(
    spec: SubstrateSpec,
    world: object,
    config: QualityWorldConfig,
) -> SubstrateQuality:
    """Fit one substrate, sample its explanations, compute all families."""
    dataset = world.dataset  # type: ignore[attr-defined]
    explainer = spec.explainer()
    pipeline = ExplainedRecommender(spec.substrate(), explainer)
    with obs.span("quality.fit", substrate=spec.name):
        pipeline.fit(dataset)

    user_ids = list(dataset.users)[: config.eval_users]
    samples: list[ExplanationSample] = []
    text_chars = 0
    cited_atoms = 0
    start = time.perf_counter()
    with obs.span(
        "quality.collect", substrate=spec.name, users=len(user_ids)
    ):
        for user_id in user_ids:
            for explained in pipeline.recommend(user_id, n=config.top_n):
                sample = build_sample(
                    user_id, explained, explainer, dataset
                )
                samples.append(sample)
                text_chars += len(explained.explanation.text)
                cited_atoms += len(sample.cited)
    collect_s = time.perf_counter() - start

    catalogue_ids = list(dataset.items)
    rating_counts = {
        item_id: len(dataset.ratings_for(item_id))
        for item_id in catalogue_ids
    }
    scale_span = dataset.scale.span

    start = time.perf_counter()
    with obs.span("quality.metrics", substrate=spec.name):
        with obs.timed(
            "repro_quality_compute_seconds",
            "Metric-computation latency per substrate and family.",
            substrate=spec.name, family="fidelity",
        ):
            fidelity_result = fidelity(samples, scale_span)
        with obs.timed(
            "repro_quality_compute_seconds",
            "Metric-computation latency per substrate and family.",
            substrate=spec.name, family="diversity",
        ):
            diversity_result = diversity(samples)
        with obs.timed(
            "repro_quality_compute_seconds",
            "Metric-computation latency per substrate and family.",
            substrate=spec.name, family="coverage",
        ):
            coverage_result = coverage(samples, catalogue_ids)
        with obs.timed(
            "repro_quality_compute_seconds",
            "Metric-computation latency per substrate and family.",
            substrate=spec.name, family="popularity_bias",
        ):
            bias_result = popularity_bias(samples, rating_counts)
    metrics_s = time.perf_counter() - start

    metrics = {
        "fidelity": fidelity_result.mean,
        "intra_list_diversity": diversity_result.intra_list,
        "cross_user_diversity": diversity_result.cross_user,
        "coverage": coverage_result.coverage,
        "popularity_gini": bias_result.gini,
        "tail_share": bias_result.tail_share,
    }
    _publish_metrics(spec.name, metrics, fidelity_result.scores)

    registry = obs.get_registry()
    registry.counter(
        "repro_quality_samples_total",
        "Explanations sampled by the quality suite.",
        labelnames=("substrate",),
    ).inc(len(samples), substrate=spec.name)
    registry.counter(
        "repro_quality_degraded_excluded_total",
        "Degraded explanations excluded from quality metrics.",
        labelnames=("substrate",),
    ).inc(fidelity_result.excluded_degraded, substrate=spec.name)

    assessable = max(len(samples), 1)
    wall_s = collect_s + metrics_s
    return SubstrateQuality(
        substrate=spec.name,
        explainer=type(explainer).__name__,
        metrics=metrics,
        counts={
            "samples": len(samples),
            "assessed": fidelity_result.assessed,
            "excluded_degraded": fidelity_result.excluded_degraded,
            "unassessable": fidelity_result.unassessable,
            "support_events": coverage_result.support_events,
            "distinct_support_items": coverage_result.distinct_items,
        },
        stimulus={
            "mean_text_chars": text_chars / assessable,
            "mean_cited_atoms": cited_atoms / assessable,
        },
        wall_s=wall_s,
        explanations_per_s=(
            len(samples) / wall_s if wall_s > 0.0 else 0.0
        ),
    )


def run_quality_suite(
    config: QualityWorldConfig | None = None,
    specs: Sequence[SubstrateSpec] = DEFAULT_SPECS,
) -> QualityReport:
    """Run every spec over one seeded world; return the full report."""
    config = config or QualityWorldConfig()
    with obs.span(
        "quality.suite",
        n_users=config.n_users,
        n_items=config.n_items,
        substrates=len(specs),
    ):
        world = make_movies(
            n_users=config.n_users,
            n_items=config.n_items,
            seed=config.seed,
            density=config.density,
        )
        report = QualityReport(world=config.as_dict())
        for spec in specs:
            report.substrates[spec.name] = _evaluate_spec(
                spec, world, config
            )
    return report
