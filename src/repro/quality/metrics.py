"""The four offline explanation-metric families, vectorized.

Each function consumes :class:`~repro.quality.samples.ExplanationSample`
sequences (plus minimal dataset context passed as plain values) and
returns a small result dataclass; nothing here touches a substrate, so
the hypothesis property suite can drive the math directly with
synthetic samples.

Families (Zanon et al. 2310.14379; Chen et al. 2202.06466):

* **fidelity** — does the cited evidence actually drive the score?
  Mean per-explanation agreement between the evidence-only score
  reconstruction and the substrate's score, blended with per-record
  citation-mass shares for additive attributions.  In [0, 1]; 1 when a
  substrate is explained by its own exact, fully cited evidence.
* **diversity** — intra-list (are one user's explanations distinct
  from each other?) and cross-user (do different users get different
  evidence?) mean pairwise Jaccard *dissimilarity* of cited-support
  sets.  In [0, 1].
* **coverage** — fraction of the catalogue ever used as explanation
  support.  In [0, 1].
* **popularity bias** — Gini concentration of per-item citation counts
  over the catalogue, plus the long-tail share of citations.  Both in
  [0, 1]; high Gini / low tail share = the explanations lean on the
  same few popular items.

Degraded samples (the generic-template fallback, flagged by the
explicit ``NoEvidence`` marker) are excluded from every family and
reported separately — a degraded explanation is an availability event,
not a quality signal.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.quality.samples import ExplanationSample, group_by_user

__all__ = [
    "FidelityResult",
    "DiversityResult",
    "CoverageResult",
    "PopularityBiasResult",
    "fidelity_score",
    "fidelity",
    "diversity",
    "coverage",
    "popularity_bias",
    "gini",
]


@dataclass(frozen=True)
class FidelityResult:
    """Fidelity summary over an assessable sample population."""

    mean: float
    assessed: int
    excluded_degraded: int
    unassessable: int
    scores: tuple[float, ...] = ()


@dataclass(frozen=True)
class DiversityResult:
    """Intra-list and cross-user evidence diversity."""

    intra_list: float
    cross_user: float
    lists: int
    excluded_degraded: int


@dataclass(frozen=True)
class CoverageResult:
    """Catalogue share ever cited as explanation support."""

    coverage: float
    distinct_items: int
    catalogue_size: int
    support_events: int


@dataclass(frozen=True)
class PopularityBiasResult:
    """Concentration of explanation support on popular items."""

    gini: float
    tail_share: float
    citations: int


def fidelity_score(
    sample: ExplanationSample, scale_span: float
) -> float | None:
    """One sample's fidelity in [0, 1], or ``None`` when unassessable.

    The mean of the available components: the reconstruction agreement
    ``1 - min(1, |reconstructed - value| / span)`` when a score
    reconstruction exists, and each citation-mass share.  A degraded
    sample, or one with neither component, is unassessable.
    """
    if sample.degraded:
        return None
    components: list[float] = list(sample.mass_components)
    if sample.reconstructed is not None and scale_span > 0.0:
        error = abs(sample.reconstructed - sample.value) / scale_span
        components.append(1.0 - min(1.0, error))
    if not components:
        return None
    return float(np.mean(components))


def fidelity(
    samples: Sequence[ExplanationSample], scale_span: float
) -> FidelityResult:
    """Mean fidelity over all assessable samples."""
    scores: list[float] = []
    excluded = 0
    unassessable = 0
    for sample in samples:
        if sample.degraded:
            excluded += 1
            continue
        score = fidelity_score(sample, scale_span)
        if score is None:
            unassessable += 1
            continue
        scores.append(score)
    mean = float(np.mean(scores)) if scores else 0.0
    return FidelityResult(
        mean=mean,
        assessed=len(scores),
        excluded_degraded=excluded,
        unassessable=unassessable,
        scores=tuple(scores),
    )


def _incidence(
    key_sets: Sequence[frozenset[str]],
) -> np.ndarray:
    """Binary incidence matrix (sets x union-of-keys)."""
    vocabulary: dict[str, int] = {}
    for keys in key_sets:
        for key in keys:
            vocabulary.setdefault(key, len(vocabulary))
    matrix = np.zeros((len(key_sets), max(len(vocabulary), 1)))
    for row, keys in enumerate(key_sets):
        for key in keys:
            matrix[row, vocabulary[key]] = 1.0
    return matrix


def _mean_pairwise_jaccard(key_sets: Sequence[frozenset[str]]) -> float:
    """Mean pairwise Jaccard similarity via one matrix product."""
    matrix = _incidence(key_sets)
    intersections = matrix @ matrix.T
    sizes = matrix.sum(axis=1)
    unions = sizes[:, None] + sizes[None, :] - intersections
    with np.errstate(invalid="ignore", divide="ignore"):
        jaccard = np.where(unions > 0.0, intersections / unions, 0.0)
    n = len(key_sets)
    off_diagonal = jaccard.sum() - np.trace(jaccard)
    pairs = n * (n - 1)
    return float(off_diagonal / pairs) if pairs else 0.0


def diversity(samples: Sequence[ExplanationSample]) -> DiversityResult:
    """Intra-list and cross-user evidence diversity in [0, 1].

    Intra-list: mean over users of (1 - mean pairwise Jaccard) across
    the cited-support sets within one user's list.  Cross-user: the
    same over each user's *union* support set.  Users whose lists carry
    no citable evidence contribute nothing.
    """
    excluded = sum(1 for sample in samples if sample.degraded)
    per_user_sets: list[list[frozenset[str]]] = []
    for user_samples in group_by_user(samples).values():
        sets = [
            frozenset(item.key for item in sample.cited)
            for sample in user_samples
            if not sample.degraded and sample.cited
        ]
        if sets:
            per_user_sets.append(sets)

    intra_scores = [
        1.0 - _mean_pairwise_jaccard(sets)
        for sets in per_user_sets
        if len(sets) >= 2
    ]
    intra = float(np.mean(intra_scores)) if intra_scores else 0.0

    union_sets = [
        frozenset().union(*sets) for sets in per_user_sets
    ]
    cross = (
        1.0 - _mean_pairwise_jaccard(union_sets)
        if len(union_sets) >= 2
        else 0.0
    )
    return DiversityResult(
        intra_list=intra,
        cross_user=cross,
        lists=len(per_user_sets),
        excluded_degraded=excluded,
    )


def _item_citations(
    samples: Sequence[ExplanationSample],
) -> dict[str, int]:
    """Citation counts per catalogue item cited as support."""
    counts: dict[str, int] = {}
    for sample in samples:
        if sample.degraded:
            continue
        for item in sample.cited:
            if item.kind == "item":
                counts[item.ref] = counts.get(item.ref, 0) + 1
    return counts


def coverage(
    samples: Sequence[ExplanationSample],
    catalogue_ids: Sequence[str],
) -> CoverageResult:
    """Fraction of the catalogue ever cited as explanation support."""
    counts = _item_citations(samples)
    catalogue = set(catalogue_ids)
    cited_in_catalogue = set(counts) & catalogue
    size = len(catalogue)
    return CoverageResult(
        coverage=len(cited_in_catalogue) / size if size else 0.0,
        distinct_items=len(cited_in_catalogue),
        catalogue_size=size,
        support_events=sum(counts.values()),
    )


def gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector, in [0, 1)."""
    values = np.sort(np.asarray(counts, dtype=float))
    total = values.sum()
    n = len(values)
    if n == 0 or total <= 0.0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def popularity_bias(
    samples: Sequence[ExplanationSample],
    item_rating_counts: Mapping[str, int],
    head_fraction: float = 0.2,
) -> PopularityBiasResult:
    """Concentration of explanation support on popular catalogue items.

    ``gini`` is computed over per-item citation counts across the whole
    catalogue (zeros included): 0 means support spreads evenly, values
    near 1 mean a few items do all the explaining.  ``tail_share`` is
    the fraction of citations that land outside the ``head_fraction``
    most-rated items — the long-tail share; low tail share means the
    explanations reinforce the popularity skew the survey warns
    persuasive interfaces drift into.
    """
    citations = {
        item_id: count
        for item_id, count in _item_citations(samples).items()
        if item_id in item_rating_counts
    }
    catalogue = list(item_rating_counts)
    counts = np.array(
        [citations.get(item_id, 0) for item_id in catalogue], dtype=float
    )
    total = int(counts.sum())
    if not catalogue or total == 0:
        return PopularityBiasResult(gini=0.0, tail_share=0.0, citations=0)
    by_popularity = sorted(
        catalogue,
        key=lambda item_id: (-item_rating_counts[item_id], item_id),
    )
    head_size = max(1, int(round(head_fraction * len(by_popularity))))
    head = set(by_popularity[:head_size])
    tail_citations = sum(
        count for item_id, count in citations.items() if item_id not in head
    )
    return PopularityBiasResult(
        gini=gini(counts),
        tail_share=tail_citations / total,
        citations=total,
    )
