"""Interaction modes (paper Section 5): one module per feedback channel."""

from repro.interaction.conversational_cf import ConversationalCF
from repro.interaction.critiques import (
    CompoundCritique,
    UnitCritique,
    apply_critique,
    apriori,
    mine_compound_critiques,
)
from repro.interaction.dialog import (
    DialogPhase,
    DialogTurn,
    MovieDialog,
    Slot,
    SlotFillingDialog,
)
from repro.interaction.feedback import Opinion, OpinionFeedback, OpinionHandler
from repro.interaction.profile import (
    ProfileAttribute,
    ProfileRecommender,
    ScrutableProfile,
    infer_topic_interests,
)
from repro.interaction.ratings import (
    InteractionEvent,
    RatingChannel,
    RatingEvent,
)
from repro.interaction.requirements import (
    RequirementElicitor,
    parse_requirements,
)
from repro.interaction.session import (
    CritiqueSession,
    InteractionLog,
    SessionEvent,
    TimeModel,
)

__all__ = [
    # 5.1 specify requirements
    "RequirementElicitor",
    "parse_requirements",
    "Slot",
    "SlotFillingDialog",
    "MovieDialog",
    "DialogTurn",
    "DialogPhase",
    # 5.2 alteration
    "UnitCritique",
    "CompoundCritique",
    "apriori",
    "mine_compound_critiques",
    "apply_critique",
    "CritiqueSession",
    "ConversationalCF",
    "TimeModel",
    "InteractionLog",
    "SessionEvent",
    # 5.3 ratings & scrutable profiles
    "RatingChannel",
    "RatingEvent",
    "InteractionEvent",
    "ScrutableProfile",
    "ProfileAttribute",
    "ProfileRecommender",
    "infer_topic_interests",
    # 5.4 opinions
    "Opinion",
    "OpinionFeedback",
    "OpinionHandler",
]
