"""Rating feedback: "the user rates items" (paper Section 5.3).

"To change the type of recommendations they receive, the user may want
to correct predicted ratings, or modify a rating they made in the past."
:class:`RatingChannel` is the single write path for ratings: it journals
every action to the durable event log **before** touching the dataset
(write-ahead: an unacknowledged event never mutates state), records
explicit ratings, re-ratings and prediction corrections, and notifies
subscribers with the same typed :class:`InteractionEvent` it logged
(re-rating deltas are exactly what the persuasion measure of Section 3.4
needs).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.eventlog.events import InteractionEvent
from repro.recsys.data import Dataset, Rating

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eventlog.log import EventLog

__all__ = ["RatingEvent", "RatingChannel"]

#: Back-compat alias: rating events are plain interaction events now
#: (the ``item_id`` / ``value`` / ``previous_value`` / ``kind`` surface
#: is preserved as properties/fields on :class:`InteractionEvent`).
RatingEvent = InteractionEvent


class RatingChannel:
    """The write path for all rating feedback.

    Parameters
    ----------
    dataset:
        The dataset ratings are written to.
    on_change:
        Callbacks invoked with the :class:`InteractionEvent` after every
        write; recommender cache invalidation hooks go here.
    event_log:
        When set, every action is appended durably *before* the dataset
        mutates; an append failure (:class:`~repro.errors.EventLogError`)
        aborts the action with no state change.
    """

    def __init__(
        self,
        dataset: Dataset,
        on_change: list[Callable[[InteractionEvent], None]] | None = None,
        event_log: "EventLog | None" = None,
    ) -> None:
        self.dataset = dataset
        self.on_change = list(on_change or [])
        self.event_log = event_log
        self.events: list[InteractionEvent] = []

    def subscribe(
        self, callback: Callable[[InteractionEvent], None]
    ) -> None:
        """Register a change callback (called with the event)."""
        self.on_change.append(callback)

    def _journal(self, event: InteractionEvent) -> InteractionEvent:
        """Write-ahead: durably append before any mutation (or abort)."""
        if self.event_log is None:
            return event
        return self.event_log.append(event)

    def _notify(self, event: InteractionEvent) -> None:
        for callback in self.on_change:
            callback(event)

    def _write(
        self, user_id: str, item_id: str, value: float, kind: str
    ) -> InteractionEvent:
        previous = self.dataset.rating(user_id, item_id)
        event = self._journal(
            InteractionEvent(
                kind=kind,
                user_id=user_id,
                channel="rating",
                payload={
                    "item_id": item_id,
                    "value": value,
                    "previous_value": (
                        previous.value if previous is not None else None
                    ),
                },
            )
        )
        self.dataset.add_rating(
            Rating(user_id=user_id, item_id=item_id, value=value)
        )
        self.events.append(event)
        self._notify(event)
        return event

    def rate(
        self, user_id: str, item_id: str, value: float
    ) -> InteractionEvent:
        """Record a rating; automatically a re-rate if one existed."""
        previous = self.dataset.rating(user_id, item_id)
        kind = "re-rate" if previous is not None else "rate"
        return self._write(user_id, item_id, value, kind)

    def correct_prediction(
        self, user_id: str, item_id: str, value: float
    ) -> InteractionEvent:
        """Counteract a predicted rating by stating the true one.

        Semantically identical to rating, but logged distinctly: this is
        the Section 4.4 scrutability action ("a user may ... counteract
        predictions by rating the affected items").
        """
        return self._write(user_id, item_id, value, "correct-prediction")

    def undo_last(self) -> InteractionEvent | None:
        """Undo the most recent event (restores or removes the rating).

        The undo itself is journaled as an ``"undo"`` event, so replay
        reproduces the rollback instead of resurrecting the undone
        rating.
        """
        if not self.events:
            return None
        last = self.events[-1]
        undo = self._journal(
            InteractionEvent(
                kind="undo",
                user_id=last.user_id,
                channel="rating",
                payload={
                    "item_id": last.item_id,
                    "value": last.value,
                    "previous_value": last.previous_value,
                },
            )
        )
        self.events.pop()
        item_id = last.item_id if last.item_id is not None else ""
        if last.previous_value is None:
            self.dataset.remove_rating(last.user_id, item_id)
        else:
            self.dataset.add_rating(
                Rating(
                    user_id=last.user_id,
                    item_id=item_id,
                    value=last.previous_value,
                )
            )
        self._notify(undo)
        return last

    def rerating_deltas(self, user_id: str | None = None) -> list[float]:
        """Signed (new - old) deltas of all re-rating events.

        The persuasion studies read these directly: "persuasive ability
        was calculated as the difference between two ratings" (§3.4).
        """
        return [
            event.value - event.previous_value
            for event in self.events
            if event.value is not None
            and event.previous_value is not None
            and (user_id is None or event.user_id == user_id)
        ]
