"""Rating feedback: "the user rates items" (paper Section 5.3).

"To change the type of recommendations they receive, the user may want
to correct predicted ratings, or modify a rating they made in the past."
:class:`RatingChannel` is the single write path for ratings: it records
explicit ratings, re-ratings and prediction corrections on the dataset,
notifies fitted recommenders so their caches refresh, and keeps an
auditable event log (re-rating deltas are exactly what the persuasion
measure of Section 3.4 needs).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.recsys.data import Dataset, Rating

__all__ = ["RatingEvent", "RatingChannel"]


@dataclass(frozen=True)
class RatingEvent:
    """One rating action, with the value it replaced (if any)."""

    user_id: str
    item_id: str
    value: float
    previous_value: float | None
    kind: str  # "rate" | "re-rate" | "correct-prediction"


class RatingChannel:
    """The write path for all rating feedback.

    Parameters
    ----------
    dataset:
        The dataset ratings are written to.
    on_change:
        Callbacks invoked with the user id after every write; recommender
        cache invalidation hooks go here (e.g.
        ``ContentBasedRecommender.invalidate_profile``).
    """

    def __init__(
        self,
        dataset: Dataset,
        on_change: list[Callable[[str], None]] | None = None,
    ) -> None:
        self.dataset = dataset
        self.on_change = list(on_change or [])
        self.events: list[RatingEvent] = []

    def subscribe(self, callback: Callable[[str], None]) -> None:
        """Register a change callback (called with the user id)."""
        self.on_change.append(callback)

    def _write(
        self, user_id: str, item_id: str, value: float, kind: str
    ) -> RatingEvent:
        previous = self.dataset.rating(user_id, item_id)
        self.dataset.add_rating(
            Rating(user_id=user_id, item_id=item_id, value=value)
        )
        event = RatingEvent(
            user_id=user_id,
            item_id=item_id,
            value=value,
            previous_value=previous.value if previous else None,
            kind=kind,
        )
        self.events.append(event)
        for callback in self.on_change:
            callback(user_id)
        return event

    def rate(self, user_id: str, item_id: str, value: float) -> RatingEvent:
        """Record a rating; automatically a re-rate if one existed."""
        previous = self.dataset.rating(user_id, item_id)
        kind = "re-rate" if previous is not None else "rate"
        return self._write(user_id, item_id, value, kind)

    def correct_prediction(
        self, user_id: str, item_id: str, value: float
    ) -> RatingEvent:
        """Counteract a predicted rating by stating the true one.

        Semantically identical to rating, but logged distinctly: this is
        the Section 4.4 scrutability action ("a user may ... counteract
        predictions by rating the affected items").
        """
        return self._write(user_id, item_id, value, "correct-prediction")

    def undo_last(self) -> RatingEvent | None:
        """Undo the most recent event (restores or removes the rating)."""
        if not self.events:
            return None
        event = self.events.pop()
        if event.previous_value is None:
            self.dataset.remove_rating(event.user_id, event.item_id)
        else:
            self.dataset.add_rating(
                Rating(
                    user_id=event.user_id,
                    item_id=event.item_id,
                    value=event.previous_value,
                )
            )
        for callback in self.on_change:
            callback(event.user_id)
        return event

    def rerating_deltas(self, user_id: str | None = None) -> list[float]:
        """Signed (new - old) deltas of all re-rating events.

        The persuasion studies read these directly: "persuasive ability
        was calculated as the difference between two ratings" (§3.4).
        """
        return [
            event.value - event.previous_value
            for event in self.events
            if event.previous_value is not None
            and (user_id is None or event.user_id == user_id)
        ]
