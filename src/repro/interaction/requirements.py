"""Explicit requirement specification (paper Section 5.1).

"By allowing a user to directly specify their requirements it is possible
to circumvent the type of faulty assumptions that can be made by a system
where the interests of a user are based on the items they decide to see."

Two entry points:

* :class:`RequirementElicitor` — slot-by-slot form filling over a typed
  catalogue (the OkCupid / MYCIN "specify reqs." interaction);
* :func:`parse_requirements` — a small keyword grammar turning phrases
  like ``"cheap thai food nearby"`` into constraints and preferences, the
  textual front door the conversational dialogs build on.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from repro.errors import ConstraintError
from repro.recsys.knowledge import (
    Catalog,
    Constraint,
    Preference,
    UserRequirements,
)

__all__ = ["RequirementElicitor", "parse_requirements"]


class RequirementElicitor:
    """Slot-by-slot requirements form over a catalogue schema.

    Typical flow::

        elicitor = RequirementElicitor(catalog)
        elicitor.require("cuisine", "==", "thai")
        elicitor.limit("price_level", maximum=2)
        elicitor.prefer("distance_km", weight=2.0)
        requirements = elicitor.build()
    """

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._constraints: list[Constraint] = []
        self._preferences: list[Preference] = []

    def require(self, attribute: str, operator: str, value: object) -> None:
        """Add a hard constraint (validates the attribute exists)."""
        self.catalog.spec(attribute)
        self._constraints.append(Constraint(attribute, operator, value))

    def limit(
        self,
        attribute: str,
        minimum: float | None = None,
        maximum: float | None = None,
    ) -> None:
        """Add numeric bound constraints."""
        spec = self.catalog.spec(attribute)
        if spec.kind != "numeric":
            raise ConstraintError(
                f"{attribute!r} is {spec.kind}; use require() instead"
            )
        if minimum is None and maximum is None:
            raise ConstraintError("limit() needs a minimum and/or a maximum")
        if minimum is not None:
            self._constraints.append(Constraint(attribute, ">=", minimum))
        if maximum is not None:
            self._constraints.append(Constraint(attribute, "<=", maximum))

    def prefer(
        self,
        attribute: str,
        weight: float = 1.0,
        target: object | None = None,
    ) -> None:
        """Add a weighted soft preference."""
        self.catalog.spec(attribute)
        self._preferences.append(
            Preference(attribute=attribute, weight=weight, target=target)
        )

    def build(self) -> UserRequirements:
        """The assembled requirements object."""
        return UserRequirements(
            constraints=list(self._constraints),
            preferences=list(self._preferences),
        )


_DEFAULT_LEXICON: dict[str, tuple[tuple[str, ...], str, float]] = {
    # phrase -> (candidate attributes, direction, weight); the first
    # candidate attribute present in the catalogue wins.
    "cheap": (("price", "price_level"), "low", 2.0),
    "cheaper": (("price", "price_level"), "low", 2.0),
    "inexpensive": (("price", "price_level"), "low", 2.0),
    "budget": (("price", "price_level"), "low", 2.0),
    "nearby": (("distance_km",), "low", 2.0),
    "close": (("distance_km",), "low", 2.0),
    "light": (("weight",), "low", 1.5),
    "lightweight": (("weight",), "low", 1.5),
}


def parse_requirements(
    text: str,
    catalog: Catalog,
    categorical_values: Mapping[str, tuple[str, ...]] | None = None,
    lexicon: Mapping[str, tuple[tuple[str, ...], str, float]] | None = None,
) -> UserRequirements:
    """Parse a free-text requirement phrase against a catalogue schema.

    The grammar is deliberately small (this is a survey-era system, not
    an NLU engine):

    * known categorical values ("thai", "Crete") become equality
      constraints on their attribute;
    * lexicon adjectives ("cheap", "nearby") become directional
      preferences, and ``price_level``/``price`` also get a below-median
      constraint for the strong words ("cheap");
    * ``under/below/at most N`` attaches a ``<=`` constraint to the first
      numeric attribute mentioned nearby or to ``price`` by default.

    Unknown words are ignored — in the face of ambiguity the parser
    refuses to guess.
    """
    tokens = re.findall(r"[a-z0-9.]+", text.lower())
    lexicon = dict(_DEFAULT_LEXICON if lexicon is None else lexicon)
    categorical_values = categorical_values or {}

    requirements = UserRequirements()

    # Categorical value mentions.
    value_index: dict[str, tuple[str, str]] = {}
    for attribute, values in categorical_values.items():
        for value in values:
            value_index[str(value).lower()] = (attribute, str(value))
    for token in tokens:
        if token in value_index:
            attribute, value = value_index[token]
            requirements.add_constraint(Constraint(attribute, "==", value))

    # Adjectives.
    for token in tokens:
        entry = lexicon.get(token)
        if entry is None:
            continue
        candidates, direction, weight = entry
        attribute = next(
            (name for name in candidates if name in catalog.attributes), None
        )
        if attribute is None:
            continue
        requirements.set_preference(
            Preference(attribute=attribute, weight=weight)
        )
        spec = catalog.spec(attribute)
        if direction == "low" and token in ("cheap", "budget"):
            midpoint = (spec.low + spec.high) / 2.0
            requirements.add_constraint(
                Constraint(attribute, "<=", midpoint)
            )

    # "under 300" / "at most 300" style numeric bounds.
    for match in re.finditer(
        r"(?:under|below|at most|less than)\s+(\d+(?:\.\d+)?)", text.lower()
    ):
        bound = float(match.group(1))
        target = "price" if "price" in catalog.attributes else None
        if target is None:
            numeric = [
                name
                for name, spec in catalog.attributes.items()
                if spec.kind == "numeric"
            ]
            target = numeric[0] if numeric else None
        if target is not None:
            requirements.add_constraint(Constraint(target, "<=", bound))

    return requirements
