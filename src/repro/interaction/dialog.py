"""Conversational dialog management (paper Section 5.1).

"So called conversational systems allow users to elaborate their
requirements over the course of an extended dialog", in contrast to
single-shot recommenders.  :class:`SlotFillingDialog` is a small
state-machine dialog manager: it fills requirement slots turn by turn,
proposes candidates, and — crucially — *explains indirectly by
reiterating the user's requirements*, exactly like the paper's quoted
movie dialog (Wärnestål [36]):

    System: Pulp Fiction is a thriller starring Bruce Willis

:class:`MovieDialog` wires the manager to a movie world so that quoted
exchange is reproducible end to end.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import DialogError
from repro.recsys.data import Dataset

__all__ = ["Slot", "DialogTurn", "DialogPhase", "SlotFillingDialog",
           "MovieDialog"]

_SKIP_MARKERS = ("not sure", "don't know", "dont know", "uhm", "no idea",
                 "skip", "anything")
_NO_MARKERS = ("no", "nope", "haven't", "havent", "never")
_YES_MARKERS = ("yes", "yeah", "yep", "seen it", "i have")
_ACCEPT_MARKERS = ("sounds good", "great", "ok", "okay", "i'll watch",
                   "perfect", "thanks")
_REJECT_MARKERS = ("something else", "another", "not that", "different")


@dataclass(frozen=True)
class Slot:
    """One requirement slot: a question and a parser.

    ``parse`` returns the extracted value or ``None`` when the utterance
    does not answer this slot.  ``question`` may reference already-filled
    slots with ``str.format`` (e.g. ``"a favorite {genre} movie?"``).
    """

    name: str
    question: str
    parse: Callable[[str], object | None]
    optional: bool = True


@dataclass(frozen=True)
class DialogTurn:
    """One utterance in the transcript."""

    speaker: str  # "user" | "system"
    text: str


class DialogPhase(enum.Enum):
    """Dialog state machine phases."""

    FILLING = "filling"
    PROPOSING = "proposing"
    AWAITING_OPINION = "awaiting opinion"
    DONE = "done"


@dataclass
class SlotFillingDialog:
    """A slot-filling conversational recommender dialog.

    Parameters
    ----------
    slots:
        The requirement slots, asked in order; any utterance may fill any
        number of slots out of order (the opening "I feel like watching a
        thriller" fills the genre slot before it is asked).
    propose:
        ``propose(filled, rejected) -> (item_id, title) | None`` selects
        the next candidate given the filled slots.
    explain:
        ``explain(filled, item_id) -> str`` builds the indirect
        explanation sentence reiterating the requirements.
    """

    slots: Sequence[Slot]
    propose: Callable[[dict, set], tuple[str, str] | None]
    explain: Callable[[dict, str], str]
    filled: dict = field(default_factory=dict)
    rejected: set = field(default_factory=set)
    transcript: list[DialogTurn] = field(default_factory=list)
    phase: DialogPhase = DialogPhase.FILLING
    proposed_item: str | None = None
    accepted_item: str | None = None
    _cursor: int = 0

    # -- helpers ------------------------------------------------------------

    def _say(self, text: str) -> str:
        self.transcript.append(DialogTurn("system", text))
        return text

    def _hear(self, text: str) -> None:
        self.transcript.append(DialogTurn("user", text))

    def _absorb(self, utterance: str) -> int:
        """Fill any slots answerable from the utterance; return count."""
        filled = 0
        for slot in self.slots:
            if slot.name in self.filled:
                continue
            value = slot.parse(utterance)
            if value is not None:
                self.filled[slot.name] = value
                filled += 1
        return filled

    def _next_question(self) -> str | None:
        while self._cursor < len(self.slots):
            slot = self.slots[self._cursor]
            if slot.name not in self.filled:
                return slot.question.format(**{
                    name: self.filled.get(name, "")
                    for name in (s.name for s in self.slots)
                })
            self._cursor += 1
        return None

    def _advance_past_current(self) -> None:
        self._cursor += 1

    def _try_propose(self) -> str:
        candidate = self.propose(self.filled, self.rejected)
        if candidate is None:
            self.phase = DialogPhase.DONE
            return self._say(
                "I am sorry, I cannot find anything matching that. "
                "Could we relax one of your requirements?"
            )
        item_id, title = candidate
        self.proposed_item = item_id
        self.phase = DialogPhase.PROPOSING
        return self._say(f"I see. Have you seen {title}?")

    # -- public API -----------------------------------------------------------

    def start(self, opening_utterance: str | None = None) -> str:
        """Begin the dialog, optionally absorbing an opening statement."""
        if self.transcript:
            raise DialogError("dialog already started")
        if opening_utterance is not None:
            self._hear(opening_utterance)
            self._absorb(opening_utterance)
        question = self._next_question()
        if question is None:
            return self._try_propose()
        return self._say(question)

    def feed(self, utterance: str) -> str:
        """Process one user utterance; returns the system reply."""
        if self.phase is DialogPhase.DONE:
            raise DialogError("dialog already finished")
        self._hear(utterance)
        lowered = utterance.lower()

        if self.phase is DialogPhase.FILLING:
            absorbed = self._absorb(utterance)
            if absorbed == 0 and any(m in lowered for m in _SKIP_MARKERS):
                self._advance_past_current()
                question = self._next_question()
                if question is not None:
                    return self._say(f"Okay. {question}")
                return self._try_propose()
            question = self._next_question()
            if question is not None:
                return self._say(question)
            return self._try_propose()

        if self.phase is DialogPhase.PROPOSING:
            assert self.proposed_item is not None
            if any(m in lowered for m in _YES_MARKERS):
                self.rejected.add(self.proposed_item)
                return self._try_propose()
            if any(m in lowered for m in _NO_MARKERS):
                self.phase = DialogPhase.AWAITING_OPINION
                return self._say(
                    self.explain(self.filled, self.proposed_item)
                )
            return self._say(
                "Sorry, have you seen it before — yes or no?"
            )

        # AWAITING_OPINION
        assert self.proposed_item is not None
        if any(m in lowered for m in _REJECT_MARKERS):
            self.rejected.add(self.proposed_item)
            return self._try_propose()
        if any(m in lowered for m in _ACCEPT_MARKERS):
            self.accepted_item = self.proposed_item
            self.phase = DialogPhase.DONE
            return self._say("Enjoy! Let me know what you think afterwards.")
        return self._say(
            "Would you like to try it, or should I find something else?"
        )

    def render_transcript(self) -> str:
        """The dialog so far, script style."""
        return "\n".join(
            f"{turn.speaker.capitalize()}: {turn.text}"
            for turn in self.transcript
        )


class MovieDialog(SlotFillingDialog):
    """The Wärnestål movie dialog over a movie dataset.

    Genres are parsed against the dataset's topic labels; actors against
    a supplied actor-keyword vocabulary (keywords on items double as cast
    lists in the synthetic movie world).
    """

    def __init__(
        self,
        dataset: Dataset,
        actor_names: dict[str, str],
        exclude_rated_by: str | None = None,
    ) -> None:
        self.dataset = dataset
        self.actor_names = dict(actor_names)  # keyword -> display name
        self.exclude_rated_by = exclude_rated_by
        genres = {topic.lower() for topic in dataset.topics()}

        def parse_genre(utterance: str) -> str | None:
            for token in utterance.lower().split():
                cleaned = token.strip(".,!?")
                if cleaned in genres:
                    return cleaned
            return None

        def parse_favorite(utterance: str) -> str | None:
            lowered = utterance.lower()
            for item in dataset.items.values():
                if item.title.lower() in lowered:
                    return item.item_id
            return None

        def parse_actor(utterance: str) -> str | None:
            lowered = utterance.lower()
            for keyword, name in self.actor_names.items():
                if keyword in lowered or name.lower() in lowered:
                    return keyword
            return None

        super().__init__(
            slots=[
                Slot(
                    "genre",
                    "What kind of movie do you feel like?",
                    parse_genre,
                ),
                Slot(
                    "favorite_movie",
                    "Can you tell me one of your favorite {genre} movies?",
                    parse_favorite,
                ),
                Slot(
                    "actor",
                    "Can you tell me one of your favorite actors or "
                    "actresses?",
                    parse_actor,
                ),
            ],
            propose=self._propose,
            explain=self._explain,
        )

    def _propose(self, filled: dict, rejected: set) -> tuple[str, str] | None:
        genre = filled.get("genre")
        actor = filled.get("actor")
        rated = (
            set(self.dataset.ratings_by(self.exclude_rated_by))
            if self.exclude_rated_by
            else set()
        )
        candidates = []
        for item in self.dataset.items.values():
            if item.item_id in rejected or item.item_id in rated:
                continue
            if genre is not None and genre not in {
                topic.lower() for topic in item.topics
            }:
                continue
            if actor is not None and actor not in item.keywords:
                continue
            candidates.append(item)
        if not candidates:
            return None
        candidates.sort(key=lambda item: item.item_id)
        best = candidates[0]
        return best.item_id, best.title

    def _explain(self, filled: dict, item_id: str) -> str:
        item = self.dataset.item(item_id)
        genre = filled.get("genre", "movie")
        actor_keyword = filled.get("actor")
        if actor_keyword is not None:
            actor = self.actor_names.get(str(actor_keyword), str(actor_keyword))
            return f"{item.title} is a {genre} starring {actor}."
        return f"{item.title} is a {genre}."
