"""Scrutable user profiles (paper Sections 2.2, 5.3; Figure 1).

SASY's evaluation found users could appreciate that "adaptation in the
system was based on their personal attributes stored in their profile;
that their profile contained information they volunteered about
themselves and information that was inferred through observations made
about them by the system; and that they could change their profile to
control the personalization".

:class:`ScrutableProfile` implements exactly that contract — volunteered
vs. inferred attributes, a "why" answer per attribute, and direct
editing — and :class:`ProfileRecommender` personalises *from the
profile*, so edits visibly change recommendations (the TiVo fix).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import DataError
from repro.eventlog.events import InteractionEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eventlog.log import EventLog
from repro.recsys.base import (
    Prediction,
    ProfileAttributeEvidence,
    Recommender,
)
from repro.recsys.data import Dataset

__all__ = ["ProfileAttribute", "ScrutableProfile", "infer_topic_interests",
           "ProfileRecommender"]

VOLUNTEERED = "volunteered"
INFERRED = "inferred"


@dataclass(frozen=True)
class ProfileAttribute:
    """One profile attribute with provenance.

    ``because`` records *why* an inferred attribute exists ("you recorded
    14 football items"), answering the scrutiny question directly.
    """

    name: str
    value: object
    provenance: str
    because: str = ""
    weight: float = 1.0

    def why(self) -> str:
        """A user-facing provenance sentence."""
        if self.provenance == VOLUNTEERED:
            return (
                f"You told us yourself that {self.name} = {self.value}."
            )
        reason = self.because or "of patterns in your usage"
        return (
            f"We inferred {self.name} = {self.value} because {reason}. "
            f"You can change or delete this."
        )


class ScrutableProfile:
    """An editable user model with full provenance.

    All mutations are journaled to the durable event log **before** the
    attribute map changes (write-ahead; an unacknowledged edit never
    mutates), logged in :attr:`edits` so studies can count
    scrutinization actions (paper Section 3.2), and announced to
    :attr:`on_change` subscribers with the typed
    :class:`InteractionEvent` — the hook the cache layer uses
    (:func:`repro.cache.wrappers.wire_invalidation`) so a profile edit
    voids every answer computed from the old profile.
    """

    def __init__(
        self, user_id: str, event_log: "EventLog | None" = None
    ) -> None:
        self.user_id = user_id
        self.event_log = event_log
        self._attributes: dict[str, ProfileAttribute] = {}
        self.edits: list[str] = []
        self.on_change: list[Callable[[InteractionEvent], None]] = []

    def subscribe(
        self, callback: Callable[[InteractionEvent], None]
    ) -> None:
        """Call ``callback(event)`` after every profile mutation."""
        self.on_change.append(callback)

    def _journal(self, kind: str, **payload: object) -> InteractionEvent:
        """Write-ahead: durably append before any mutation (or abort)."""
        event = InteractionEvent(
            kind=kind,
            user_id=self.user_id,
            channel="profile",
            payload=payload,
        )
        if self.event_log is None:
            return event
        return self.event_log.append(event)

    def _notify(self, event: InteractionEvent) -> None:
        for callback in self.on_change:
            callback(event)

    # -- writing ------------------------------------------------------------

    def volunteer(self, name: str, value: object, weight: float = 1.0) -> None:
        """Record an attribute the user stated directly."""
        event = self._journal(
            "profile-volunteer", name=name, value=value, weight=weight
        )
        self._attributes[name] = ProfileAttribute(
            name=name, value=value, provenance=VOLUNTEERED, weight=weight
        )
        self.edits.append(f"volunteered {name}={value}")
        self._notify(event)

    def infer(
        self, name: str, value: object, because: str, weight: float = 1.0
    ) -> None:
        """Record a system-inferred attribute with its justification.

        Volunteered values are never overwritten by inference — the user's
        own statement outranks observation (the TiVo lesson).
        """
        existing = self._attributes.get(name)
        if existing is not None and existing.provenance == VOLUNTEERED:
            return
        event = self._journal(
            "profile-infer",
            name=name,
            value=value,
            because=because,
            weight=weight,
        )
        self._attributes[name] = ProfileAttribute(
            name=name,
            value=value,
            provenance=INFERRED,
            because=because,
            weight=weight,
        )
        self.edits.append(f"inferred {name}={value}")
        self._notify(event)

    def correct(self, name: str, value: object) -> None:
        """User overrides an attribute (it becomes volunteered).

        Corrections carry full weight: an explicit user statement
        outranks however weak or strong the replaced inference was.
        """
        if name not in self._attributes:
            raise DataError(f"no such profile attribute: {name!r}")
        event = self._journal("profile-correct", name=name, value=value)
        self._attributes[name] = replace(
            self._attributes[name],
            value=value,
            provenance=VOLUNTEERED,
            because="",
            weight=1.0,
        )
        self.edits.append(f"corrected {name}={value}")
        self._notify(event)

    def remove(self, name: str) -> None:
        """User deletes an attribute entirely."""
        if name not in self._attributes:
            raise DataError(f"no such profile attribute: {name!r}")
        event = self._journal("profile-remove", name=name)
        del self._attributes[name]
        self.edits.append(f"removed {name}")
        self._notify(event)

    # -- reading --------------------------------------------------------------

    def get(self, name: str) -> ProfileAttribute | None:
        """The attribute record, or ``None``."""
        return self._attributes.get(name)

    def value(self, name: str, default: object = None) -> object:
        """The attribute's value, or ``default``."""
        attribute = self._attributes.get(name)
        return attribute.value if attribute is not None else default

    def attributes(self) -> list[ProfileAttribute]:
        """All attributes, volunteered first, then alphabetical."""
        return sorted(
            self._attributes.values(),
            key=lambda a: (a.provenance != VOLUNTEERED, a.name),
        )

    def why(self, name: str) -> str:
        """Answer "why does my profile say X?"."""
        attribute = self._attributes.get(name)
        if attribute is None:
            return f"Your profile says nothing about {name}."
        return attribute.why()

    def as_evidence(self) -> tuple[ProfileAttributeEvidence, ...]:
        """Profile attributes as recommendation evidence records."""
        return tuple(
            ProfileAttributeEvidence(
                attribute=a.name,
                value=a.value,
                provenance=a.provenance,
                weight=a.weight,
            )
            for a in self.attributes()
        )

    def render_page(self) -> str:
        """A Figure-1-style scrutable profile page."""
        lines = [f"Your profile ({self.user_id})", ""]
        for attribute in self.attributes():
            origin = (
                "you said" if attribute.provenance == VOLUNTEERED
                else "we inferred"
            )
            lines.append(f"  {attribute.name} = {attribute.value}  [{origin}]")
            if attribute.provenance == INFERRED:
                lines.append(f"      why? {attribute.why()}")
        lines.append("")
        lines.append(
            "Change any of these to control your recommendations."
        )
        return "\n".join(lines)


def infer_topic_interests(
    profile: ScrutableProfile,
    dataset: Dataset,
    min_observations: int = 3,
) -> list[str]:
    """Background inference from usage: likes/dislikes per topic.

    "When the system collects and interprets information in the
    background, as is the case with TiVo, it becomes all the more
    important to make the reasoning available to the user" — so every
    inferred attribute carries a count-based justification.

    Returns the names of attributes written.
    """
    scale = dataset.scale
    liked: Counter = Counter()
    disliked: Counter = Counter()
    for item_id, rating in dataset.ratings_by(profile.user_id).items():
        item = dataset.items.get(item_id)
        if item is None:
            continue
        counter = liked if scale.is_positive(rating.value) else disliked
        for topic in item.topics:
            counter[topic] += 1
    written = []
    for topic in set(liked) | set(disliked):
        positive = liked.get(topic, 0)
        negative = disliked.get(topic, 0)
        if positive + negative < min_observations:
            continue
        name = f"likes:{topic}"
        value = positive >= negative
        verb = "liked" if value else "disliked"
        count = positive if value else negative
        profile.infer(
            name,
            value,
            because=f"you {verb} {count} {topic} items",
            weight=min(1.0, (positive + negative) / 10.0),
        )
        written.append(name)
    return written


class ProfileRecommender(Recommender):
    """Preference-based recommendation driven by a scrutable profile.

    Items are scored by their topics' ``likes:<topic>`` attributes, so a
    profile edit (correcting or deleting an inference) immediately and
    visibly changes the ranking — closing the scrutability loop of paper
    Section 2.2.
    """

    def __init__(self, profile: ScrutableProfile) -> None:
        super().__init__()
        self.profile = profile

    def predict(self, user_id: str, item_id: str) -> Prediction:
        """Midpoint plus/minus profile topic weights, with evidence."""
        dataset = self.dataset
        item = dataset.item(item_id)
        scale = dataset.scale
        score = scale.midpoint
        used: list[ProfileAttributeEvidence] = []
        for topic in item.topics:
            attribute = self.profile.get(f"likes:{topic}")
            if attribute is None:
                continue
            direction = 1.0 if attribute.value else -1.0
            score += direction * attribute.weight * scale.span * 0.25
            used.append(
                ProfileAttributeEvidence(
                    attribute=attribute.name,
                    value=attribute.value,
                    provenance=attribute.provenance,
                    weight=attribute.weight,
                )
            )
        confidence = min(1.0, 0.2 + 0.2 * len(used))
        return Prediction(
            value=scale.clip(score),
            confidence=confidence,
            evidence=tuple(used),
        )
