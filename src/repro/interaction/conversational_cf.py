"""Conversational collaborative recommendation (Rafter & Smyth, ref [29]).

"So called conversational systems allow users to elaborate their
requirements over the course of an extended dialog.  This contrasts with
standard 'single-shot' recommender systems, where each user interaction
is treated independently of previous history."

For collaborative filtering the conversation is a *rating dialog*: each
cycle the system presents a small batch of items, the user rates them,
and the neighbourhood model immediately refines.  The batch can be
chosen passively (current top predictions) or actively (the items whose
ratings teach the model most — here: highly-rated-by-candidate-
neighbours items the user hasn't rated, which sharpen neighbour
similarities fastest).

:class:`ConversationalCF` runs that loop and logs it with the standard
:class:`~repro.interaction.session.InteractionLog`, so the Section 3.6
efficiency measures apply to collaborative conversations too.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.errors import DialogError
from repro.eventlog.events import InteractionEvent
from repro.interaction.session import InteractionLog, TimeModel
from repro.recsys.cf_user import UserBasedCF
from repro.recsys.data import Dataset, Rating

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eventlog.log import EventLog

__all__ = ["ConversationalCF"]


class ConversationalCF:
    """An iterative rating dialog over user-based CF.

    Parameters
    ----------
    dataset:
        The live dataset; the session writes the user's ratings into it
        (use a copy for simulations).
    user_id:
        The conversing user.
    batch_size:
        Items presented per cycle.
    active:
        ``True`` picks informative items (rated by many of the user's
        candidate neighbours); ``False`` picks current top predictions.
    event_log:
        When set, each rating batch is journaled durably *before* the
        dataset mutates; an append failure aborts the batch unapplied.
    """

    def __init__(
        self,
        dataset: Dataset,
        user_id: str,
        batch_size: int = 3,
        active: bool = True,
        time_model: TimeModel | None = None,
        event_log: "EventLog | None" = None,
    ) -> None:
        self.dataset = dataset
        self.user_id = user_id
        self.batch_size = batch_size
        self.active = active
        self.time_model = time_model if time_model is not None else TimeModel()
        self.event_log = event_log
        self.log = InteractionLog()
        self.cycle = 0
        self.finished = False
        self.on_change: list = []
        self._refit()

    def subscribe(self, callback) -> None:
        """Call ``callback(event)`` after every rating batch lands."""
        self.on_change.append(callback)

    def _journal(self, event: InteractionEvent) -> InteractionEvent:
        """Write-ahead: durably append before any mutation (or abort)."""
        if self.event_log is None:
            return event
        return self.event_log.append(event)

    def _notify(self, event: InteractionEvent) -> None:
        for callback in self.on_change:
            callback(event)

    def _refit(self) -> None:
        self.recommender = UserBasedCF().fit(self.dataset)

    # -- batch selection ----------------------------------------------------

    def _informative_items(self) -> list[str]:
        """Unrated items rated by the most other users.

        Rating a widely-rated item creates co-ratings with many potential
        neighbours at once — the fastest way to sharpen similarities.
        """
        unrated = self.dataset.unrated_items(self.user_id)
        unrated.sort(
            key=lambda item_id: (
                -len(self.dataset.ratings_for(item_id)),
                item_id,
            )
        )
        return unrated[: self.batch_size]

    def _top_predictions(self) -> list[str]:
        recommendations = self.recommender.recommend(
            self.user_id, n=self.batch_size
        )
        return [recommendation.item_id for recommendation in recommendations]

    def next_batch(self) -> list[str]:
        """The items presented this cycle."""
        if self.finished:
            raise DialogError("conversation already finished")
        self.cycle += 1
        batch = (
            self._informative_items() if self.active
            else self._top_predictions()
        )
        self.log.add(
            self.cycle,
            "show",
            ",".join(batch),
            self.time_model.per_cycle
            + len(batch) * self.time_model.per_option_scanned,
        )
        return batch

    def rate_batch(self, ratings: dict[str, float]) -> None:
        """Record the user's ratings for the presented batch.

        The whole batch is journaled as one ``"rate-batch"`` event
        before any rating lands; the fitted model then *absorbs* the
        change incrementally (dropping only the stale similarity rows)
        instead of refitting from scratch.
        """
        if self.finished:
            raise DialogError("conversation already finished")
        event = self._journal(
            InteractionEvent(
                kind="rate-batch",
                user_id=self.user_id,
                channel="conversational",
                payload={
                    "ratings": {
                        item_id: float(value)
                        for item_id, value in ratings.items()
                    },
                    "cycle": self.cycle,
                },
            )
        )
        for item_id, value in ratings.items():
            self.dataset.add_rating(
                Rating(user_id=self.user_id, item_id=item_id, value=value)
            )
            self.log.add(
                self.cycle,
                "rate",
                f"{item_id}={value:g}",
                self.time_model.per_critique_choice,
            )
        if not self.recommender.absorb(event):
            self._refit()
        self._notify(event)

    def finish(self) -> None:
        """End the conversation."""
        self.finished = True

    # -- simulation helper ----------------------------------------------------

    def run(
        self,
        oracle: Callable[[str], float],
        n_cycles: int = 5,
    ) -> list[str]:
        """Run ``n_cycles`` with a rating oracle; returns final top-5 ids.

        ``oracle(item_id)`` plays the user (studies pass the synthetic
        world's noisy rating draw).
        """
        for __ in range(n_cycles):
            batch = self.next_batch()
            if not batch:
                break
            self.rate_batch({item_id: oracle(item_id) for item_id in batch})
        self.finish()
        return [
            recommendation.item_id
            for recommendation in self.recommender.recommend(self.user_id, n=5)
        ]
