"""Critiquing: the "user asks for an alteration" channel (Section 5.2).

Two levels, mirroring the critiquing literature the paper cites:

* **Unit critiques** — one attribute at a time ("cheaper", "more
  memory"), converted to hard constraints relative to the current
  reference item;
* **Dynamic compound critiques** (Reilly et al. [30], McCarthy et al.
  [20]) — frequent *patterns* of attribute differences between the
  reference and the remaining candidates, mined with Apriori and
  presented with their coverage, e.g. "Less Memory and Lower Resolution
  and Cheaper (14 cameras)".  "Instead of simply explaining to a user
  that no items fitting the description exist, these systems show what
  types of items do exist."
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro import obs
from repro.core.templates import join_phrases
from repro.errors import ConstraintError
from repro.recsys.data import Item
from repro.recsys.knowledge import (
    Catalog,
    Constraint,
    UserRequirements,
    compare_items,
)

__all__ = [
    "UnitCritique",
    "CompoundCritique",
    "apriori",
    "mine_compound_critiques",
    "apply_critique",
]


@dataclass(frozen=True)
class UnitCritique:
    """A single-attribute alteration request relative to a reference item.

    ``direction`` is ``"less"``, ``"more"`` or ``"different"`` (the last
    for categorical attributes).
    """

    attribute: str
    direction: str

    _DIRECTIONS = ("less", "more", "different")

    def __post_init__(self) -> None:
        if self.direction not in self._DIRECTIONS:
            raise ConstraintError(
                f"unknown critique direction {self.direction!r}; "
                f"choose from {self._DIRECTIONS}"
            )

    def phrase(self, catalog: Catalog) -> str:
        """The user-facing phrase ("Cheaper", "More Memory", ...)."""
        spec = catalog.spec(self.attribute)
        if self.direction == "less":
            return spec.less_phrase
        if self.direction == "more":
            return spec.more_phrase
        return f"Different {self.attribute}"

    def to_constraint(self, reference: Item) -> Constraint:
        """The hard constraint this critique imposes on the next cycle."""
        value = reference.attribute(self.attribute)
        if value is None:
            raise ConstraintError(
                f"reference item {reference.item_id!r} has no "
                f"{self.attribute!r} attribute"
            )
        if self.direction == "less":
            return Constraint(self.attribute, "<=", float(value) - 1e-9)  # type: ignore[arg-type]
        if self.direction == "more":
            return Constraint(self.attribute, ">=", float(value) + 1e-9)  # type: ignore[arg-type]
        return Constraint(self.attribute, "!=", value)


@dataclass(frozen=True)
class CompoundCritique:
    """A conjunction of unit critiques with its candidate coverage."""

    parts: tuple[UnitCritique, ...]
    support: int

    def phrase(self, catalog: Catalog) -> str:
        """"Less Memory and Lower Resolution and Cheaper"."""
        return join_phrases([part.phrase(catalog) for part in self.parts])

    def describe(self, catalog: Catalog) -> str:
        """Phrase plus coverage count."""
        return f"{self.phrase(catalog)} ({self.support} items)"

    def to_constraints(self, reference: Item) -> list[Constraint]:
        """All hard constraints this compound critique imposes."""
        return [part.to_constraint(reference) for part in self.parts]


def apriori(
    transactions: Sequence[frozenset],
    min_support: int,
    max_size: int = 3,
) -> dict[frozenset, int]:
    """Classic Apriori frequent-itemset mining.

    Returns every itemset of size 1..``max_size`` appearing in at least
    ``min_support`` transactions, with its support count.
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    frequent: dict[frozenset, int] = {}

    # Size-1 candidates: every observed item.
    counts: dict[frozenset, int] = {}
    for transaction in transactions:
        for element in transaction:
            key = frozenset([element])
            counts[key] = counts.get(key, 0) + 1
    current = {
        itemset: count
        for itemset, count in counts.items()
        if count >= min_support
    }
    frequent.update(current)

    size = 2
    while current and size <= max_size:
        # Candidate generation: unions of frequent (size-1)-sets whose
        # union has exactly `size` elements and all of whose subsets are
        # frequent (the Apriori property).
        previous_sets = list(current)
        candidates: set[frozenset] = set()
        for set_a, set_b in itertools.combinations(previous_sets, 2):
            union = set_a | set_b
            if len(union) != size:
                continue
            if all(
                frozenset(subset) in frequent
                for subset in itertools.combinations(union, size - 1)
            ):
                candidates.add(union)
        counts = {candidate: 0 for candidate in candidates}
        for transaction in transactions:
            for candidate in candidates:
                if candidate <= transaction:
                    counts[candidate] += 1
        current = {
            itemset: count
            for itemset, count in counts.items()
            if count >= min_support
        }
        frequent.update(current)
        size += 1
    return frequent


def _critique_pattern(
    catalog: Catalog, candidate: Item, reference: Item
) -> frozenset[UnitCritique]:
    """The candidate's full difference pattern against the reference."""
    pattern = set()
    for delta in compare_items(catalog, candidate, reference):
        if delta.direction < 0:
            pattern.add(UnitCritique(delta.attribute, "less"))
        elif delta.direction > 0:
            pattern.add(UnitCritique(delta.attribute, "more"))
        else:
            pattern.add(UnitCritique(delta.attribute, "different"))
    return frozenset(pattern)


def mine_compound_critiques(
    catalog: Catalog,
    reference: Item,
    candidates: Iterable[Item],
    min_support_fraction: float = 0.15,
    max_size: int = 3,
    max_critiques: int = 5,
) -> list[CompoundCritique]:
    """Dynamic critiquing: mine frequent difference patterns (Reilly'04).

    Each remaining candidate becomes a transaction of unit critiques
    describing how it differs from the reference; Apriori finds the
    patterns covering at least ``min_support_fraction`` of candidates.
    Only multi-attribute patterns are returned (unit critiques are always
    available separately), ranked by size (larger first — more
    informative) then support.
    """
    with obs.span(
        "critiques.mine", reference=reference.item_id
    ) as span, obs.timed(
        "repro_critique_mining_seconds",
        "Latency of dynamic compound-critique mining (Apriori).",
    ):
        transactions = [
            _critique_pattern(catalog, candidate, reference)
            for candidate in candidates
            if candidate.item_id != reference.item_id
        ]
        span.set("transactions", len(transactions))
        if not transactions:
            return []
        min_support = max(1, int(len(transactions) * min_support_fraction))
        frequent = apriori(
            transactions, min_support=min_support, max_size=max_size
        )
        compounds = [
            CompoundCritique(
                parts=tuple(sorted(itemset, key=lambda c: c.attribute)),
                support=support,
            )
            for itemset, support in frequent.items()
            if len(itemset) >= 2
        ]
        compounds.sort(
            key=lambda critique: (-len(critique.parts), -critique.support)
        )
        span.set("compounds", len(compounds))
        return compounds[:max_critiques]


def apply_critique(
    requirements: UserRequirements,
    critique: UnitCritique | CompoundCritique,
    reference: Item,
) -> UserRequirements:
    """A new requirements object with the critique's constraints added."""
    updated = requirements.copy()
    if isinstance(critique, UnitCritique):
        updated.add_constraint(critique.to_constraint(reference))
    else:
        for constraint in critique.to_constraints(reference):
            updated.add_constraint(constraint)
    return updated
