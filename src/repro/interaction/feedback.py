"""Opinion feedback vocabulary (paper Section 5.4).

The paper expands comparison-based feedback into a concrete opinion
vocabulary: *More like this* ("More later!", "Give me more!"), *No more
like this* ("I already know this!", "No more like this!"), aspect-level
feedback ("I like the sport, but not the distant location"), and
*Surprise me!*.  :class:`OpinionHandler` applies each opinion to a
scrutable profile, returning a transparency sentence describing what
changed — explanations are a cycle, not a one-way message (Section 2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DataError
from repro.interaction.profile import ScrutableProfile
from repro.recsys.data import Dataset

__all__ = ["Opinion", "OpinionFeedback", "OpinionHandler"]


class Opinion(enum.Enum):
    """The opinion vocabulary of Section 5.4."""

    MORE_LIKE_THIS = "more like this"
    MORE_LATER = "more later"
    GIVE_ME_MORE = "give me more"
    ALREADY_KNOW_THIS = "I already know this"
    NO_MORE_LIKE_THIS = "no more like this"
    SURPRISE_ME = "surprise me"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OpinionFeedback:
    """One opinion about one item (or about the stream, for surprise-me).

    ``aspect`` optionally narrows the opinion to one topic of the item —
    "the user may want to say they like the sport, but not that the game
    took place at a distant location".
    ``liked`` qualifies ALREADY_KNOW_THIS: knowing an item "is not
    necessarily negative; this depends on the rating the user gives the
    item as well".
    """

    opinion: Opinion
    item_id: str | None = None
    aspect: str | None = None
    liked: bool | None = None


class OpinionHandler:
    """Applies opinion feedback to a scrutable profile.

    State beyond the profile: the set of known items (never re-recommend)
    and the surprise level in [0, 1] (fraction of randomly explored
    recommendations, shown to the user on a sliding bar).
    """

    def __init__(
        self, dataset: Dataset, profile: ScrutableProfile
    ) -> None:
        self.dataset = dataset
        self.profile = profile
        self.known_items: set[str] = set()
        self.suppressed_topics: set[str] = set()
        self.surprise_level: float = 0.0
        self.log: list[OpinionFeedback] = []

    def _topics_of(self, item_id: str) -> tuple[str, ...]:
        item = self.dataset.items.get(item_id)
        if item is None:
            raise DataError(f"unknown item {item_id!r}")
        return item.topics

    def apply(self, feedback: OpinionFeedback) -> str:
        """Apply one opinion; returns a sentence describing the change."""
        self.log.append(feedback)
        opinion = feedback.opinion

        if opinion is Opinion.SURPRISE_ME:
            self.surprise_level = min(1.0, self.surprise_level + 0.25)
            return (
                f"We will broaden your horizon: {self.surprise_level:.0%} "
                f"of upcoming recommendations will be exploratory."
            )

        if feedback.item_id is None:
            raise DataError(f"{opinion} feedback requires an item")
        topics = (
            (feedback.aspect,) if feedback.aspect else self._topics_of(
                feedback.item_id
            )
        )

        if opinion in (Opinion.MORE_LIKE_THIS, Opinion.GIVE_ME_MORE):
            for topic in topics:
                self.profile.infer(
                    f"likes:{topic}",
                    True,
                    because=f"you asked for more {topic} items",
                    weight=1.0,
                )
            return (
                f"Noted — we will show you more "
                f"{', '.join(str(t) for t in topics)} items."
            )

        if opinion is Opinion.MORE_LATER:
            for topic in topics:
                self.profile.infer(
                    f"likes:{topic}",
                    True,
                    because=f"you asked to hear about future {topic} items",
                    weight=0.6,
                )
            self.known_items.add(feedback.item_id)
            return (
                "Noted — not right now, but we will keep you posted on "
                "items of this type."
            )

        if opinion is Opinion.ALREADY_KNOW_THIS:
            self.known_items.add(feedback.item_id)
            if feedback.liked:
                for topic in topics:
                    self.profile.infer(
                        f"likes:{topic}",
                        True,
                        because=(
                            f"you already knew (and liked) a {topic} item "
                            f"we recommended"
                        ),
                        weight=0.4,
                    )
                return (
                    "Good to know we were on target — we will not show "
                    "this again, without reducing items of this type."
                )
            return "We will not show this item again."

        if opinion is Opinion.NO_MORE_LIKE_THIS:
            for topic in topics:
                self.profile.infer(
                    f"likes:{topic}",
                    False,
                    because=f"you asked for no more {topic} items",
                    weight=1.0,
                )
                self.suppressed_topics.add(str(topic))
            self.known_items.add(feedback.item_id)
            return (
                f"Understood — no more "
                f"{', '.join(str(t) for t in topics)} items."
            )

        raise DataError(f"unhandled opinion {opinion!r}")

    def filter_items(self, item_ids: list[str]) -> list[str]:
        """Drop known items and suppressed-topic items from a candidate list."""
        kept = []
        for item_id in item_ids:
            if item_id in self.known_items:
                continue
            item = self.dataset.items.get(item_id)
            if item is not None and any(
                topic in self.suppressed_topics for topic in item.topics
            ):
                continue
            kept.append(item_id)
        return kept
