"""Conversational sessions and interaction logs (paper Sections 3.6, 5).

A :class:`CritiqueSession` runs the conversational loop of a critiquing
recommender: show the best match, offer unit and dynamic compound
critiques, apply the user's alteration, repeat until acceptance.  Every
action is logged with a simulated time cost (:class:`TimeModel`), because
the paper's efficiency measures are "completion time", "number of
interactions", "number of inspected explanations, and number of
activations of repair actions" (Section 3.6) — all of which the
:class:`InteractionLog` exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import DialogError
from repro.eventlog.events import InteractionEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.eventlog.log import EventLog
from repro.interaction.critiques import (
    CompoundCritique,
    UnitCritique,
    apply_critique,
    mine_compound_critiques,
)
from repro.recsys.data import Item
from repro.recsys.knowledge import (
    KnowledgeBasedRecommender,
    UserRequirements,
)

__all__ = ["TimeModel", "SessionEvent", "InteractionLog", "CritiqueSession"]


@dataclass(frozen=True)
class TimeModel:
    """Simulated seconds each interaction step costs the user.

    These stand in for the stopwatch in Pu & Chen's and Thompson et al.'s
    completion-time measurements; the efficiency studies sweep them to
    show results are not knife-edge (see EXPERIMENTS.md).
    """

    per_cycle: float = 8.0
    per_option_scanned: float = 1.5
    per_explanation_read: float = 4.0
    per_critique_choice: float = 3.0
    per_repair: float = 6.0
    per_full_evaluation: float = 10.0
    """Seconds to assess one item without conversational support.

    Scanning inside a critique cycle is quick because the trade-off
    categories pre-digest the differences; judging a raw catalogue entry
    means reading its full specification (Pu & Chen's rationale for the
    organizational interface)."""


@dataclass(frozen=True)
class SessionEvent:
    """One logged interaction event."""

    cycle: int
    kind: str
    detail: str
    seconds: float


@dataclass
class InteractionLog:
    """Counts and timings over one session (or one user's visits)."""

    events: list[SessionEvent] = field(default_factory=list)

    def add(self, cycle: int, kind: str, detail: str, seconds: float) -> None:
        """Append one event."""
        self.events.append(SessionEvent(cycle, kind, detail, seconds))

    @property
    def total_seconds(self) -> float:
        """Simulated completion time so far."""
        return sum(event.seconds for event in self.events)

    @property
    def n_cycles(self) -> int:
        """Number of completed interaction cycles."""
        return max((event.cycle for event in self.events), default=0)

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return sum(1 for event in self.events if event.kind == kind)

    @property
    def n_interactions(self) -> int:
        """Total user actions (the loyalty proxy of Section 3.3)."""
        return len(self.events)


class CritiqueSession:
    """The conversational critiquing loop over a knowledge-based catalogue.

    Parameters
    ----------
    recommender:
        A fitted :class:`~repro.recsys.knowledge.KnowledgeBasedRecommender`.
    requirements:
        The session's starting requirements (copied; the session mutates
        its own copy as critiques arrive).
    offer_compound:
        Whether dynamic compound critiques are mined and offered each
        cycle (the experimental manipulation of study E4).
    user_id:
        The critiquing user, when known.  Every critique or relaxation
        is then journaled to ``event_log`` before the requirements
        change and announced to :attr:`on_change` subscribers as a typed
        :class:`InteractionEvent` — the hook
        :func:`repro.cache.wrappers.wire_invalidation` uses so cached
        recommendations computed before the critique become
        unreachable (the paper's scrutability loop).
    event_log:
        When set (and ``user_id`` is known), requirement changes are
        appended durably *before* they apply; an append failure aborts
        the critique/relaxation with the session state unchanged.
    """

    def __init__(
        self,
        recommender: KnowledgeBasedRecommender,
        requirements: UserRequirements,
        offer_compound: bool = True,
        time_model: TimeModel | None = None,
        user_id: str | None = None,
        event_log: "EventLog | None" = None,
    ) -> None:
        self.recommender = recommender
        self.requirements = requirements.copy()
        self.offer_compound = offer_compound
        self.time_model = time_model if time_model is not None else TimeModel()
        self.user_id = user_id
        self.event_log = event_log
        self.on_change: list = []
        self.log = InteractionLog()
        self.cycle = 0
        self.accepted: Item | None = None
        self._advance()

    def subscribe(self, callback) -> None:
        """Call ``callback(event)`` after every requirements change."""
        self.on_change.append(callback)

    def _journal(self, kind: str, **payload: object) -> InteractionEvent | None:
        """Write-ahead for identified users; ``None`` for anonymous ones.

        Anonymous sessions (``user_id is None``) are simulation
        scaffolding: nothing durable, nothing notified.
        """
        if self.user_id is None:
            return None
        event = InteractionEvent(
            kind=kind,
            user_id=self.user_id,
            channel="critique",
            payload=payload,
        )
        if self.event_log is None:
            return event
        return self.event_log.append(event)

    def _notify(self, event: InteractionEvent | None) -> None:
        if event is None:
            return
        for callback in self.on_change:
            callback(event)

    # -- state -----------------------------------------------------------

    def _advance(self) -> None:
        """Recompute the current reference item and critique menu."""
        ranked = self.recommender.rank(self.requirements)
        self.candidates = [item for item, __, __ in ranked]
        self.reference = self.candidates[0] if self.candidates else None
        if self.reference is not None and self.offer_compound:
            self.compound_critiques = mine_compound_critiques(
                self.recommender.catalog,
                self.reference,
                self.candidates[1:],
            )
        else:
            self.compound_critiques = []
        self.cycle += 1
        scanned = min(len(self.candidates), 5)
        self.log.add(
            self.cycle,
            "show",
            self.reference.item_id if self.reference else "(none)",
            self.time_model.per_cycle
            + scanned * self.time_model.per_option_scanned,
        )
        # The paper's own efficiency metric (Section 3.6) as a
        # first-class counter: one increment per conversational cycle.
        obs.get_registry().counter(
            "repro_interaction_cycles_total",
            "Critiquing cycles shown (the Section 3.6 efficiency metric).",
        ).inc()
        obs.event(
            "session.cycle",
            cycle=self.cycle,
            reference=self.reference.item_id if self.reference else None,
            candidates=len(self.candidates),
            compound_critiques=len(self.compound_critiques),
        )

    @property
    def is_dead_end(self) -> bool:
        """Whether no items satisfy the current requirements."""
        return self.reference is None

    def read_explanation(self) -> None:
        """Log that the user inspected an explanation this cycle."""
        self.log.add(
            self.cycle,
            "read_explanation",
            self.reference.item_id if self.reference else "(none)",
            self.time_model.per_explanation_read,
        )

    # -- actions -----------------------------------------------------------

    def critique(self, critique: UnitCritique | CompoundCritique) -> None:
        """Apply a critique against the current reference item.

        A critique that empties the candidate set is rolled back and
        logged as a repair action ("number of activations of repair
        actions", Section 3.6).
        """
        if self.accepted is not None:
            raise DialogError("session already finished")
        if self.reference is None:
            raise DialogError("no reference item; relax constraints first")
        label = (
            critique.phrase(self.recommender.catalog)
            if isinstance(critique, (UnitCritique, CompoundCritique))
            else str(critique)
        )
        attempted = apply_critique(self.requirements, critique, self.reference)
        kind = "unit" if isinstance(critique, UnitCritique) else "compound"
        if self.recommender.matching_items(attempted):
            event = self._journal(
                "critique", label=label, critique_kind=kind,
                cycle=self.cycle,
            )
            self.requirements = attempted
            self._notify(event)
            self.log.add(
                self.cycle,
                "critique",
                label,
                self.time_model.per_critique_choice,
            )
            obs.get_registry().counter(
                "repro_critiques_total",
                "Critiques applied, by unit/compound kind.",
                labelnames=("kind",),
            ).inc(kind=kind)
            self._advance()
        else:
            self.log.add(
                self.cycle,
                "repair",
                f"rolled back: {label}",
                self.time_model.per_repair,
            )
            obs.get_registry().counter(
                "repro_repairs_total",
                "Repair actions (rollbacks and relaxations, Section 3.6).",
            ).inc()
            obs.event("session.repair", cycle=self.cycle, critique=label)

    def relax(self) -> list[str]:
        """At a dead end, drop the most recently added constraint."""
        if not self.requirements.constraints:
            raise DialogError("nothing to relax")
        dropped = self.requirements.constraints[-1]
        event = self._journal(
            "relax", dropped=dropped.describe(), cycle=self.cycle
        )
        self.requirements.remove_constraint(dropped)
        self._notify(event)
        self.log.add(
            self.cycle, "repair", f"relaxed {dropped.describe()}",
            self.time_model.per_repair,
        )
        obs.get_registry().counter(
            "repro_repairs_total",
            "Repair actions (rollbacks and relaxations, Section 3.6).",
        ).inc()
        self._advance()
        return [dropped.describe()]

    def accept(self) -> Item:
        """Accept the current reference item, ending the session."""
        if self.reference is None:
            raise DialogError("nothing to accept")
        self.accepted = self.reference
        self.log.add(
            self.cycle, "accept", self.reference.item_id, 0.0
        )
        registry = obs.get_registry()
        registry.histogram(
            "repro_session_cycles",
            "Cycles to acceptance per completed critiquing session.",
            buckets=(1, 2, 3, 5, 8, 13, 21, 34),
        ).observe(self.log.n_cycles)
        registry.histogram(
            "repro_session_sim_seconds",
            "Simulated completion time per accepted session (TimeModel).",
            buckets=(15, 30, 60, 120, 240, 480, 960),
        ).observe(self.log.total_seconds)
        obs.event(
            "session.accept",
            item=self.reference.item_id,
            cycles=self.log.n_cycles,
            sim_seconds=self.log.total_seconds,
        )
        return self.reference
