"""Statistics for study analysis.

Thin, explicit wrappers over scipy: paired and independent t-tests,
Wilcoxon signed-rank, bootstrap confidence intervals and Cohen's d — the
tests the user studies in the survey's bibliography actually report.
Every result comes back as a :class:`TestResult` so reporting code can
render any analysis uniformly.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import EvaluationError

__all__ = [
    "TestResult",
    "paired_t",
    "independent_t",
    "wilcoxon_signed_rank",
    "one_sample_t",
    "bootstrap_ci",
    "cohens_d",
    "summarize",
    "ConditionSummary",
]


@dataclass(frozen=True)
class TestResult:
    """One hypothesis test outcome."""

    name: str
    statistic: float
    p_value: float
    n: int
    effect_size: float | None = None

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05 significance."""
        return self.p_value < 0.05

    def describe(self) -> str:
        """A compact report string."""
        effect = (
            f", d={self.effect_size:.2f}" if self.effect_size is not None
            else ""
        )
        marker = "*" if self.significant else ""
        return (
            f"{self.name}: stat={self.statistic:.3f}, "
            f"p={self.p_value:.4f}{marker}, n={self.n}{effect}"
        )


@dataclass(frozen=True)
class ConditionSummary:
    """Descriptive statistics for one experimental condition."""

    name: str
    mean: float
    sd: float
    n: int
    ci_low: float
    ci_high: float


def _check_nonempty(values: Sequence[float], label: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise EvaluationError(f"{label} is empty")
    return array


def paired_t(a: Sequence[float], b: Sequence[float]) -> TestResult:
    """Paired-samples t-test (within-subject designs)."""
    array_a = _check_nonempty(a, "a")
    array_b = _check_nonempty(b, "b")
    if array_a.size != array_b.size:
        raise EvaluationError(
            f"paired test needs equal lengths ({array_a.size} vs "
            f"{array_b.size})"
        )
    statistic, p_value = scipy_stats.ttest_rel(array_a, array_b)
    differences = array_a - array_b
    sd = float(np.std(differences, ddof=1)) if differences.size > 1 else 0.0
    effect = float(np.mean(differences)) / sd if sd > 0 else 0.0
    return TestResult(
        name="paired t",
        statistic=float(statistic),
        p_value=float(p_value),
        n=int(array_a.size),
        effect_size=effect,
    )


def independent_t(a: Sequence[float], b: Sequence[float]) -> TestResult:
    """Welch's independent-samples t-test (between-subject designs)."""
    array_a = _check_nonempty(a, "a")
    array_b = _check_nonempty(b, "b")
    statistic, p_value = scipy_stats.ttest_ind(
        array_a, array_b, equal_var=False
    )
    return TestResult(
        name="independent t (Welch)",
        statistic=float(statistic),
        p_value=float(p_value),
        n=int(array_a.size + array_b.size),
        effect_size=cohens_d(array_a, array_b),
    )


def wilcoxon_signed_rank(a: Sequence[float], b: Sequence[float]) -> TestResult:
    """Wilcoxon signed-rank test (non-parametric paired comparison)."""
    array_a = _check_nonempty(a, "a")
    array_b = _check_nonempty(b, "b")
    if array_a.size != array_b.size:
        raise EvaluationError("wilcoxon needs equal lengths")
    differences = array_a - array_b
    if np.allclose(differences, 0.0):
        return TestResult(
            name="wilcoxon", statistic=0.0, p_value=1.0, n=int(array_a.size)
        )
    statistic, p_value = scipy_stats.wilcoxon(array_a, array_b)
    return TestResult(
        name="wilcoxon",
        statistic=float(statistic),
        p_value=float(p_value),
        n=int(array_a.size),
    )


def one_sample_t(values: Sequence[float], popmean: float = 0.0) -> TestResult:
    """One-sample t-test against a fixed mean (e.g. zero shift)."""
    array = _check_nonempty(values, "values")
    statistic, p_value = scipy_stats.ttest_1samp(array, popmean)
    sd = float(np.std(array, ddof=1)) if array.size > 1 else 0.0
    effect = (float(np.mean(array)) - popmean) / sd if sd > 0 else 0.0
    return TestResult(
        name="one-sample t",
        statistic=float(statistic),
        p_value=float(p_value),
        n=int(array.size),
        effect_size=effect,
    )


def cohens_d(a: Sequence[float], b: Sequence[float]) -> float:
    """Cohen's d with pooled standard deviation."""
    array_a = _check_nonempty(a, "a")
    array_b = _check_nonempty(b, "b")
    n_a, n_b = array_a.size, array_b.size
    if n_a < 2 or n_b < 2:
        return 0.0
    pooled_var = (
        (n_a - 1) * np.var(array_a, ddof=1)
        + (n_b - 1) * np.var(array_b, ddof=1)
    ) / (n_a + n_b - 2)
    pooled_sd = float(np.sqrt(pooled_var))
    if pooled_sd == 0.0:
        return 0.0
    return float((np.mean(array_a) - np.mean(array_b)) / pooled_sd)


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    array = _check_nonempty(values, "values")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    means = np.empty(n_resamples)
    for index in range(n_resamples):
        sample = rng.choice(array, size=array.size, replace=True)
        means[index] = sample.mean()
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def summarize(name: str, values: Sequence[float]) -> ConditionSummary:
    """Descriptives plus bootstrap CI for one condition."""
    array = _check_nonempty(values, name)
    ci_low, ci_high = bootstrap_ci(array)
    return ConditionSummary(
        name=name,
        mean=float(np.mean(array)),
        sd=float(np.std(array, ddof=1)) if array.size > 1 else 0.0,
        n=int(array.size),
        ci_low=ci_low,
        ci_high=ci_high,
    )
