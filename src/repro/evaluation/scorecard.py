"""The criteria scorecard: Section 3.8's "choosing criteria" as code.

"When designing explanations one has to bear in mind the system goal.
For instance, when building a system that sells books one might decide
that user trust is the most important aspect ... For selecting tv-shows,
user satisfaction is probably more important than effectiveness."

Two pieces:

* :data:`GOAL_PROFILES` — the paper's worked examples as weight
  profiles over the seven aims (plus a balanced default);
* :class:`CriteriaScorecard` — collect one score per aim (each evaluator
  produces values in [0, 1]), then rate a configuration against a goal
  profile, exposing both the per-aim breakdown and the weighted total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aims import Aim
from repro.errors import EvaluationError
from repro.render import bar, table

__all__ = ["GOAL_PROFILES", "CriteriaScorecard"]

GOAL_PROFILES: dict[str, dict[Aim, float]] = {
    "balanced": {aim: 1.0 for aim in Aim},
    # "when building a system that sells books one might decide that user
    # trust is the most important aspect, as it leads to user loyalty and
    # increases sales"
    "book seller": {
        Aim.TRUST: 3.0,
        Aim.EFFECTIVENESS: 2.0,
        Aim.PERSUASIVENESS: 1.5,
        Aim.TRANSPARENCY: 1.0,
        Aim.SCRUTABILITY: 1.0,
        Aim.EFFICIENCY: 1.0,
        Aim.SATISFACTION: 1.0,
    },
    # "For selecting tv-shows, user satisfaction is probably more
    # important than effectiveness."
    "tv-show picker": {
        Aim.SATISFACTION: 3.0,
        Aim.EFFICIENCY: 2.0,
        Aim.TRUST: 1.5,
        Aim.TRANSPARENCY: 1.0,
        Aim.SCRUTABILITY: 1.0,
        Aim.PERSUASIVENESS: 1.0,
        Aim.EFFECTIVENESS: 0.5,
    },
    # a high-stakes domain (the paper's PC-purchase caveat): decisions
    # are expensive, so effectiveness and transparency dominate.
    "high-stakes purchases": {
        Aim.EFFECTIVENESS: 3.0,
        Aim.TRANSPARENCY: 2.0,
        Aim.TRUST: 2.0,
        Aim.SCRUTABILITY: 1.5,
        Aim.EFFICIENCY: 1.0,
        Aim.SATISFACTION: 1.0,
        Aim.PERSUASIVENESS: 0.25,
    },
}
"""Aim-weight profiles for the system goals the paper discusses."""


@dataclass
class CriteriaScorecard:
    """Per-aim scores for one explanation-facility configuration.

    Scores are in [0, 1] (each Section 3 evaluator normalises its own
    measure).  Missing aims simply do not contribute; :meth:`coverage`
    reports how complete the card is.
    """

    name: str
    scores: dict[Aim, float] = field(default_factory=dict)

    def record(self, aim: Aim, score: float) -> None:
        """Record one aim's score (clipped into [0, 1])."""
        if not isinstance(aim, Aim):
            raise EvaluationError(f"not an Aim: {aim!r}")
        self.scores[aim] = float(min(1.0, max(0.0, score)))

    def coverage(self) -> float:
        """Fraction of the seven aims that have a recorded score."""
        return len(self.scores) / len(Aim)

    def weighted_total(self, profile: str | dict[Aim, float]) -> float:
        """Weighted mean score under a goal profile (recorded aims only)."""
        if isinstance(profile, str):
            if profile not in GOAL_PROFILES:
                raise EvaluationError(f"unknown goal profile {profile!r}")
            weights = GOAL_PROFILES[profile]
        else:
            weights = profile
        mass = 0.0
        total = 0.0
        for aim, score in self.scores.items():
            weight = weights.get(aim, 0.0)
            mass += weight
            total += weight * score
        if mass == 0.0:
            raise EvaluationError("no recorded aim carries weight")
        return total / mass

    def best_profile(self) -> str:
        """The goal profile this configuration serves best."""
        return max(
            GOAL_PROFILES,
            key=lambda profile: self.weighted_total(profile),
        )

    def render(self, profile: str = "balanced") -> str:
        """A text scorecard with bars and the weighted total."""
        rows = []
        for aim in Aim:
            if aim in self.scores:
                score = self.scores[aim]
                rows.append(
                    (aim.value, f"{score:.2f}", bar(score, 1.0, width=20))
                )
            else:
                rows.append((aim.value, "-", "(not measured)"))
        body = table(("aim", "score", ""), rows)
        total = self.weighted_total(profile)
        return (
            f"Scorecard: {self.name}\n{body}\n"
            f"weighted total under '{profile}' goal: {total:.3f} "
            f"(coverage {self.coverage():.0%})"
        )


def compare_scorecards(
    cards: list[CriteriaScorecard], profile: str = "balanced"
) -> str:
    """Rank several configurations under one goal profile."""
    if not cards:
        raise EvaluationError("no scorecards supplied")
    ranked = sorted(
        cards, key=lambda card: -card.weighted_total(profile)
    )
    rows = [
        (card.name, f"{card.weighted_total(profile):.3f}",
         f"{card.coverage():.0%}")
        for card in ranked
    ]
    return table(("configuration", f"total ({profile})", "coverage"), rows)
