"""Simulated users: the stand-in for the survey's human subjects.

Every study the paper builds its argument on (Herlocker's 21 interfaces,
Cosley's re-rating, Bilgic & Mooney's satisfaction-vs-promotion, the
critiquing time studies, the transparency→trust studies) used human
subjects.  Offline we substitute a population of :class:`SimulatedUser`
objects with an explicit, documented response model:

* a user's *true* opinion of an item comes from the synthetic world's
  ground-truth utility (or a supplied callable);
* their *anticipated* (pre-consumption) rating blends a noisy private
  estimate with any prediction the interface shows, pulled by their
  ``persuadability`` — the mechanism behind Cosley's "seeing is
  believing" effect;
* an explanation's ``fidelity`` (how much real item information it
  conveys) sharpens the private estimate — the mechanism behind Bilgic &
  Mooney's effectiveness result;
* ``trust`` is a state variable updated after each consumption: good
  outcomes raise it, bad outcomes lower it, and — per paper Section 2.3 —
  the loss is softened when the user understood *why* the bad
  recommendation happened.

All parameters are explicit constructor arguments, drawn per-user by
:func:`make_population`, so every study's construction is inspectable.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.recsys.data import RatingScale

__all__ = ["SimulatedUser", "make_population", "ExplanationStimulus"]


@dataclass(frozen=True)
class ExplanationStimulus:
    """What an explanation interface shows a simulated user.

    ``fidelity`` in [0, 1]: how much genuine item information the
    explanation conveys (keyword/influence explanations are high,
    bare "people liked this" is low, no explanation is 0).
    ``persuasive_pull`` in [0, 1]: how strongly the interface pulls the
    user's report towards ``shown_prediction`` (histograms high).
    ``reading_seconds``: time cost of taking the explanation in (the
    transparency/efficiency trade-off of Section 3.8).
    """

    fidelity: float = 0.0
    persuasive_pull: float = 0.0
    shown_prediction: float | None = None
    reading_seconds: float = 0.0


@dataclass
class SimulatedUser:
    """One synthetic study participant.

    Parameters
    ----------
    true_utility:
        ``true_utility(item_id) -> float`` on the rating scale — the
        user's real opinion after consumption.
    persuadability:
        Weight in [0, 1] pulling anticipated ratings towards a shown
        prediction.
    expertise:
        In [0, 1]; reduces private estimation noise (experts guess their
        own taste better from descriptions).
    rating_noise:
        Standard deviation of consumption-report noise.
    trust:
        Initial trust state in [0, 1].
    """

    user_id: str
    true_utility: Callable[[str], float]
    scale: RatingScale
    rng: np.random.Generator
    persuadability: float = 0.3
    expertise: float = 0.5
    rating_noise: float = 0.35
    trust: float = 0.5
    openness: float = 0.5
    interactions: int = 0
    trust_history: list[float] = field(default_factory=list)

    # -- ratings -------------------------------------------------------------

    def estimate_prior(self, item_id: str, fidelity: float = 0.0) -> float:
        """Private pre-consumption estimate of the item's value.

        With zero information the estimate is diffuse around the scale
        midpoint; information (expertise + explanation fidelity) shrinks
        the estimate towards the truth.
        """
        information = min(1.0, 0.35 * self.expertise + 0.65 * fidelity)
        truth = self.true_utility(item_id)
        prior = self.scale.midpoint
        blended = (1.0 - information) * prior + information * truth
        noise_sd = 0.8 * (1.0 - 0.7 * information)
        return self.scale.clip(blended + self.rng.normal(0.0, noise_sd))

    def anticipated_rating(
        self, item_id: str, stimulus: ExplanationStimulus
    ) -> float:
        """Pre-consumption rating under an explanation interface.

        anticipated = private estimate pulled towards the shown
        prediction by ``persuadability * persuasive_pull``.
        """
        estimate = self.estimate_prior(item_id, fidelity=stimulus.fidelity)
        if stimulus.shown_prediction is not None:
            pull = self.persuadability * stimulus.persuasive_pull
            estimate += pull * (stimulus.shown_prediction - estimate)
        return self.scale.clip(estimate)

    def consumption_rating(self, item_id: str) -> float:
        """Post-consumption rating: truth plus report noise."""
        return self.scale.clip(
            self.true_utility(item_id) + self.rng.normal(0.0, self.rating_noise)
        )

    def would_try(
        self, item_id: str, stimulus: ExplanationStimulus
    ) -> bool:
        """Whether the anticipated rating clears the like threshold."""
        return self.scale.is_positive(
            self.anticipated_rating(item_id, stimulus)
        )

    # -- trust dynamics --------------------------------------------------------

    def experience_outcome(
        self,
        item_id: str,
        understood_why: bool,
        learning_rate: float = 0.12,
        expected: float | None = None,
    ) -> float:
        """Update trust after consuming a recommended item.

        Good outcomes raise trust; bad outcomes lower it with
        loss-averse asymmetry (bad experiences weigh heavier, the usual
        behavioural finding), and the loss is halved when the user
        understood why the recommendation was made ("a user may be more
        forgiving ... if they understand why a bad recommendation has
        been made", Section 2.3).  When ``expected`` (the rating the
        interface led the user to anticipate) is given, overselling
        costs additional trust — the persuasion backfire of Section 2.4.
        Returns the new trust value.
        """
        truth = self.true_utility(item_id)
        outcome = self.scale.normalize(truth)
        signal = 2.0 * (outcome - 0.5)  # in [-1, 1]
        if signal < 0.0:
            signal *= 1.6  # loss aversion
            if understood_why:
                signal *= 0.5
        delta = learning_rate * signal
        if expected is not None:
            oversold = expected - truth
            if oversold > 0.8:
                delta -= 0.05 * (oversold - 0.8)
        self.trust = float(np.clip(self.trust + delta, 0, 1))
        self.interactions += 1
        self.trust_history.append(self.trust)
        return self.trust

    def returns_tomorrow(self) -> bool:
        """Loyalty draw: the user logs in again with probability = trust."""
        return bool(self.rng.random() < self.trust)


def make_population(
    user_ids: Sequence[str],
    true_utility_for: Callable[[str], Callable[[str], float]],
    scale: RatingScale,
    seed: int = 0,
    persuadability_range: tuple[float, float] = (0.1, 0.6),
    expertise_range: tuple[float, float] = (0.2, 0.9),
) -> list[SimulatedUser]:
    """Draw a heterogeneous population of simulated users.

    ``true_utility_for(user_id)`` returns that user's true-utility
    function (usually ``lambda uid: partial(world.true_utility, uid)``).
    Per-user traits are drawn uniformly from the supplied ranges.
    """
    rng = np.random.default_rng(seed)
    population = []
    for user_id in user_ids:
        population.append(
            SimulatedUser(
                user_id=user_id,
                true_utility=true_utility_for(user_id),
                scale=scale,
                rng=np.random.default_rng(rng.integers(0, 2**63)),
                persuadability=float(rng.uniform(*persuadability_range)),
                expertise=float(rng.uniform(*expertise_range)),
                trust=float(rng.uniform(0.4, 0.6)),
                openness=float(rng.uniform(0.0, 1.0)),
            )
        )
    return population
