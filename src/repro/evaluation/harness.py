"""The seven-aims evaluation harness.

One call scores one explanation-facility configuration on every aim of
Table 1, using the Section 3 measures over a simulated population, and
returns a :class:`~repro.evaluation.scorecard.CriteriaScorecard` ready
to rank under a goal profile.  This is the survey's prescription —
"when choosing and comparing explanation techniques, it is very
important to agree on what the explanation is trying to achieve" —
packaged as an API: describe your design, get its aim profile, pick by
your goal.

Per-aim measures (all normalised into [0, 1]; see docs/simulation.md):

* **effectiveness** — 1 − mean |pre − post| gap (Bilgic double rating);
* **persuasiveness** — try-rate lift over a no-explanation control;
* **trust** — final trust after a consumption episode (understanding
  softens losses; overselling penalised);
* **transparency** — understanding questionnaire, latent comprehension
  driven by the explanation's fidelity;
* **efficiency** — inverse of per-decision reading cost;
* **scrutability** — declared correction affordances (profile editing,
  rating correction, critique support), weighted;
* **satisfaction** — satisfaction questionnaire, latent = blend of
  product outcomes and process cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.aims import Aim
from repro.evaluation.criteria.effectiveness import double_rating_trial
from repro.evaluation.criteria.transparency import understanding_scores
from repro.evaluation.instruments import satisfaction_scale
from repro.evaluation.scorecard import CriteriaScorecard
from repro.evaluation.users import ExplanationStimulus, make_population

__all__ = ["ExplanationConfiguration", "evaluate_configuration"]


@dataclass(frozen=True)
class ExplanationConfiguration:
    """A design point to evaluate.

    ``fidelity`` / ``persuasive_pull`` / ``reading_seconds`` describe the
    explanation interface exactly as :class:`ExplanationStimulus` does;
    the three ``supports_*`` flags declare which correction affordances
    the surrounding interaction design offers (they drive scrutability).
    """

    name: str
    fidelity: float = 0.5
    persuasive_pull: float = 0.3
    reading_seconds: float = 6.0
    overselling: float = 0.5
    supports_profile_editing: bool = False
    supports_rating_correction: bool = True
    supports_critiquing: bool = False
    notes: dict[str, str] = field(default_factory=dict)


def evaluate_configuration(
    configuration: ExplanationConfiguration,
    world,
    n_users: int = 40,
    items_per_user: int = 6,
    seed: int = 0,
) -> CriteriaScorecard:
    """Score one configuration on all seven aims over a synthetic world.

    ``world`` is any :class:`~repro.domains.SyntheticWorld` (latent-
    factor ground truth required for the effectiveness measure).

    The whole run is traced as an ``eval.configuration`` span; the
    population simulation and each aim's scoring block are individually
    timed into the ``repro_eval_aim_seconds{aim=...}`` histogram (the
    simulation loop under ``aim="simulate"``), so slow aims show up
    directly in ``python -m repro metrics``.
    """
    def aim_timer(aim: str):
        return obs.timed(
            "repro_eval_aim_seconds",
            "Per-aim scoring latency inside evaluate_configuration.",
            aim=aim,
        )

    with obs.span(
        "eval.configuration",
        configuration=configuration.name,
        n_users=n_users,
        items_per_user=items_per_user,
    ):
        return _evaluate(
            configuration, world, n_users, items_per_user, seed, aim_timer
        )


def _evaluate(
    configuration: ExplanationConfiguration,
    world,
    n_users: int,
    items_per_user: int,
    seed: int,
    aim_timer,
) -> CriteriaScorecard:
    dataset = world.dataset
    scale = dataset.scale
    rng = np.random.default_rng(seed)
    users = make_population(
        list(dataset.users)[:n_users],
        true_utility_for=lambda uid: (
            lambda item_id: world.true_utility(uid, item_id)
        ),
        scale=scale,
        seed=seed + 1,
    )
    item_ids = list(dataset.items)

    gaps: list[float] = []
    tried_with = 0
    tried_without = 0
    offered = 0
    product_outcomes: list[float] = []
    with aim_timer("simulate"):
        for user in users:
            order = rng.permutation(len(item_ids))
            for index in order[:items_per_user]:
                item_id = item_ids[index]
                shown = scale.clip(
                    world.true_utility(user.user_id, item_id)
                    + configuration.overselling
                )
                stimulus = ExplanationStimulus(
                    fidelity=configuration.fidelity,
                    persuasive_pull=configuration.persuasive_pull,
                    shown_prediction=shown,
                    reading_seconds=configuration.reading_seconds,
                )
                offered += 1
                # effectiveness: forced-consumption double rating
                trial = double_rating_trial(user, item_id, stimulus)
                gaps.append(abs(trial.gap))
                # persuasion: try decision vs the no-explanation control
                if user.would_try(item_id, stimulus):
                    tried_with += 1
                    # trust: consuming what the interface sold
                    user.experience_outcome(
                        item_id,
                        understood_why=configuration.fidelity >= 0.5,
                        expected=trial.before,
                    )
                    product_outcomes.append(trial.after)
                if user.would_try(item_id, ExplanationStimulus()):
                    tried_without += 1

    card = CriteriaScorecard(configuration.name)

    with aim_timer("effectiveness"):
        mean_gap = float(np.mean(gaps))
        card.record(Aim.EFFECTIVENESS, 1.0 - mean_gap / scale.span * 2.0)

    with aim_timer("persuasiveness"):
        with_rate = tried_with / max(offered, 1)
        without_rate = tried_without / max(offered, 1)
        lift = with_rate - without_rate
        card.record(Aim.PERSUASIVENESS, 0.5 + lift)  # 0.5 = no lift

    with aim_timer("trust"):
        card.record(
            Aim.TRUST, float(np.mean([user.trust for user in users]))
        )

    with aim_timer("transparency"):
        comprehension = [
            float(np.clip(0.25 + 0.65 * configuration.fidelity
                          + rng.normal(0, 0.05), 0, 1))
            for __ in users
        ]
        card.record(
            Aim.TRANSPARENCY,
            float(np.mean(understanding_scores(comprehension, rng))),
        )

    with aim_timer("efficiency"):
        # 0 s reading -> 1.0; 20 s per decision -> 0.0
        card.record(
            Aim.EFFICIENCY,
            1.0 - min(configuration.reading_seconds, 20.0) / 20.0,
        )

    with aim_timer("scrutability"):
        scrutability = (
            0.5 * configuration.supports_profile_editing
            + 0.3 * configuration.supports_rating_correction
            + 0.2 * configuration.supports_critiquing
        )
        card.record(Aim.SCRUTABILITY, scrutability)

    with aim_timer("satisfaction"):
        if product_outcomes:
            product = float(np.mean([scale.normalize(v) for v in
                                     product_outcomes]))
        else:
            product = 0.5
        process_cost = min(configuration.reading_seconds, 20.0) / 20.0
        latent_satisfaction = float(
            np.clip(0.6 * product + 0.4 * (1.0 - process_cost), 0, 1)
        )
        instrument = satisfaction_scale()
        satisfaction = float(
            np.mean(
                [
                    instrument.score(
                        instrument.administer(latent_satisfaction, rng)
                    )
                    for __ in range(len(users))
                ]
            )
        )
        card.record(Aim.SATISFACTION, satisfaction)
    return card
