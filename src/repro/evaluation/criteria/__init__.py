"""One evaluator module per explanation aim (paper Section 3)."""

from repro.evaluation.criteria import (  # noqa: F401  (re-export modules)
    effectiveness,
    efficiency,
    persuasion,
    satisfaction,
    scrutability,
    transparency,
    trust,
)

__all__ = [
    "transparency",
    "scrutability",
    "trust",
    "effectiveness",
    "persuasion",
    "efficiency",
    "satisfaction",
]
