"""Scrutability measures (paper Section 3.2).

The evaluation unit is the *scrutinization task*: "supply users with
task-based scenarios where they are more likely to scrutinize, e.g. stop
receiving recommendations of Disney movies", scored by task correctness
and time — with the paper's caveat that timings mislead when the user
cannot find the scrutability tool (interface issues), which the task
result records explicitly.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

__all__ = ["ScrutinizationResult", "scrutinization_task", "AIM"]

from repro.core.aims import Aim

AIM = Aim.SCRUTABILITY


@dataclass(frozen=True)
class ScrutinizationResult:
    """Outcome of one 'stop recommendations of topic X' task."""

    user_id: str
    banned_topic: str
    correct: bool
    seconds: float
    n_actions: int
    found_tool: bool
    remaining_banned_items: int


def scrutinization_task(
    user_id: str,
    banned_topic: str,
    topics_of: Callable[[str], tuple[str, ...]],
    recommend: Callable[[], list[str]],
    scrutinize: Callable[[], tuple[int, float]],
    found_tool: bool = True,
) -> ScrutinizationResult:
    """Run one scrutinization task.

    ``scrutinize()`` performs the user's corrective actions and returns
    ``(n_actions, seconds)`` — profile edits when the tool was found,
    indirect down-rating otherwise.  Correctness = no banned-topic items
    remain in the post-action top-N.
    """
    actions, seconds = scrutinize()
    after_ids = recommend()
    remaining = sum(
        1 for item_id in after_ids if banned_topic in topics_of(item_id)
    )
    return ScrutinizationResult(
        user_id=user_id,
        banned_topic=banned_topic,
        correct=(remaining == 0),
        seconds=seconds,
        n_actions=actions,
        found_tool=found_tool,
        remaining_banned_items=remaining,
    )


def correctness_rate(results: Sequence[ScrutinizationResult]) -> float:
    """Fraction of tasks completed correctly."""
    if not results:
        return 0.0
    return sum(1 for result in results if result.correct) / len(results)


def timings_reliable(results: Sequence[ScrutinizationResult]) -> bool:
    """Whether timing comparisons are meaningful (paper's caveat).

    "Quantitative measures such as time to complete a scrutinization task
    ... were found to be misleading when interface issues (e.g. not
    finding the scrutability tool) arose."  Timings are flagged
    unreliable when a nontrivial share of users never found the tool.
    """
    if not results:
        return False
    missed = sum(1 for result in results if not result.found_tool)
    return missed / len(results) < 0.2
