"""Persuasiveness measures (paper Section 3.4).

"Persuasion can be measured as the difference in likelihood of selecting
an item ... Another possibility would be to measure how much the user
actually tries or buys items compared to the same user in a system
without an explanation facility."  And, after Cosley et al., the
re-rating design: "persuasive ability was calculated as the difference
between two ratings ... Naturally this also requires a baseline interface
without explanations for re-rating, to control for intra-user differences
over time."
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.aims import Aim
from repro.evaluation.users import ExplanationStimulus, SimulatedUser

__all__ = ["ReRating", "rerating_trial", "rating_shift", "acceptance_rate",
           "AIM"]

AIM = Aim.PERSUASIVENESS


@dataclass(frozen=True)
class ReRating:
    """One re-rating observation: original rating vs. rating-with-interface."""

    user_id: str
    item_id: str
    original: float
    rerated: float
    shown_prediction: float | None

    @property
    def shift(self) -> float:
        """Signed re-rating shift (new minus old)."""
        return self.rerated - self.original

    @property
    def shift_toward_prediction(self) -> float:
        """Movement towards the shown prediction (0 when none shown)."""
        if self.shown_prediction is None:
            return 0.0
        before = abs(self.original - self.shown_prediction)
        after = abs(self.rerated - self.shown_prediction)
        return before - after


def rerating_trial(
    user: SimulatedUser,
    item_id: str,
    original_rating: float,
    stimulus: ExplanationStimulus,
) -> ReRating:
    """One Cosley-style re-rating: show an interface, ask again.

    The user's re-rating anchors on their original opinion, then the
    interface pulls it towards the shown prediction (if any) in
    proportion to persuadability — plus intra-user noise, which is why
    the control arm exists.
    """
    anchored = original_rating + user.rng.normal(0.0, user.rating_noise)
    if stimulus.shown_prediction is not None:
        pull = user.persuadability * stimulus.persuasive_pull
        anchored += pull * (stimulus.shown_prediction - anchored)
    return ReRating(
        user_id=user.user_id,
        item_id=item_id,
        original=original_rating,
        rerated=user.scale.clip(anchored),
        shown_prediction=stimulus.shown_prediction,
    )


def rating_shift(trials: Sequence[ReRating]) -> dict[str, float]:
    """Mean signed shift and mean movement-toward-prediction."""
    if not trials:
        raise ValueError("no trials supplied")
    return {
        "mean_shift": float(np.mean([trial.shift for trial in trials])),
        "mean_toward_prediction": float(
            np.mean([trial.shift_toward_prediction for trial in trials])
        ),
    }


def acceptance_rate(
    users: Sequence[SimulatedUser],
    item_ids: Sequence[str],
    stimulus: ExplanationStimulus,
) -> float:
    """Fraction of (user, item) pairs the user would try under a stimulus.

    The try/buy-rate measure; compare against the same population under
    a no-explanation stimulus for the paper's within-user design.
    """
    if not users or not item_ids:
        raise ValueError("users and item_ids must be non-empty")
    tried = 0
    total = 0
    for user in users:
        for item_id in item_ids:
            tried += int(user.would_try(item_id, stimulus))
            total += 1
    return tried / total
