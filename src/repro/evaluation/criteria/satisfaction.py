"""Satisfaction measures (paper Section 3.7).

Direct preference questionnaires, loyalty (shared with trust, Section
3.3), and the qualitative walk-through tally — with the paper's
distinction "between satisfaction with the recommendation process, and
the recommended products" made explicit in the summary keys.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.aims import Aim
from repro.evaluation.instruments import WalkthroughTally, satisfaction_scale
from repro.evaluation.users import SimulatedUser

__all__ = ["SatisfactionSummary", "satisfaction_questionnaire_scores",
           "summarize_satisfaction", "AIM"]

AIM = Aim.SATISFACTION


@dataclass(frozen=True)
class SatisfactionSummary:
    """Process vs. product satisfaction for one condition."""

    process_score: float
    product_score: float
    walkthrough: dict[str, float]


def satisfaction_questionnaire_scores(
    users: Sequence[SimulatedUser],
    latent_process_satisfaction: Sequence[float],
    rng: np.random.Generator,
) -> list[float]:
    """Administer the satisfaction questionnaire per user.

    ``latent_process_satisfaction`` carries each user's true satisfaction
    with the *process* in [0, 1] (studies compute it from their simulated
    experience); the questionnaire adds psychometric noise.
    """
    if len(users) != len(latent_process_satisfaction):
        raise ValueError("one latent value per user required")
    scale = satisfaction_scale()
    return [
        scale.score(scale.administer(latent, rng))
        for latent in latent_process_satisfaction
    ]


def summarize_satisfaction(
    process_scores: Sequence[float],
    product_ratings: Sequence[float],
    rating_maximum: float = 5.0,
    tally: WalkthroughTally | None = None,
) -> SatisfactionSummary:
    """Combine process questionnaires, product ratings and walk-throughs.

    ``product_ratings`` are post-consumption ratings of chosen items,
    normalised into [0, 1] by ``rating_maximum``.
    """
    if not process_scores or not product_ratings:
        raise ValueError("scores must be non-empty")
    return SatisfactionSummary(
        process_score=float(np.mean(process_scores)),
        product_score=float(np.mean(product_ratings)) / rating_maximum,
        walkthrough=(tally.summary() if tally is not None else {}),
    )
