"""Effectiveness measures (paper Section 3.5).

The core instrument is Bilgic & Mooney's double rating: "users rated a
book twice, once after receiving an explanation, and a second time after
reading the book.  If their opinion on the book did not change much, the
system was considered effective."  Also provided: the with/without
comparison of post-choice happiness, and the precision/recall translation
for easily-consumed items.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.aims import Aim
from repro.evaluation.users import ExplanationStimulus, SimulatedUser
from repro.recsys.metrics import precision_at_n, recall_at_n

__all__ = ["DoubleRating", "double_rating_trial", "effectiveness_gaps",
           "choice_happiness", "AIM", "precision_at_n", "recall_at_n"]

AIM = Aim.EFFECTIVENESS


@dataclass(frozen=True)
class DoubleRating:
    """One pre/post consumption rating pair for one (user, item)."""

    user_id: str
    item_id: str
    before: float
    after: float

    @property
    def gap(self) -> float:
        """Signed gap: positive = the explanation oversold the item."""
        return self.before - self.after


def double_rating_trial(
    user: SimulatedUser,
    item_id: str,
    stimulus: ExplanationStimulus,
) -> DoubleRating:
    """Run one Bilgic & Mooney trial: rate on explanation, then consume."""
    before = user.anticipated_rating(item_id, stimulus)
    after = user.consumption_rating(item_id)
    return DoubleRating(
        user_id=user.user_id, item_id=item_id, before=before, after=after
    )


def effectiveness_gaps(
    trials: Sequence[DoubleRating],
) -> dict[str, float]:
    """Summary of an effectiveness trial set.

    ``mean_signed_gap`` near zero = effective explanations;
    positive = persuasive overselling; ``mean_absolute_gap`` measures
    decision-support precision regardless of direction.
    """
    if not trials:
        raise ValueError("no trials supplied")
    signed = [trial.gap for trial in trials]
    return {
        "mean_signed_gap": float(np.mean(signed)),
        "mean_absolute_gap": float(np.mean(np.abs(signed))),
        "sd_signed_gap": float(np.std(signed, ddof=1)) if len(signed) > 1
        else 0.0,
    }


def choice_happiness(
    user: SimulatedUser,
    candidate_items: Sequence[str],
    stimulus: ExplanationStimulus,
) -> float:
    """Post-consumption rating of the item the user *chooses*.

    "Another possibility would be to test the same system with and
    without an explanation facility, and evaluate if subjects who receive
    explanations are on average happier with the items they selected."
    The user picks the candidate with the highest anticipated rating
    under the given stimulus, then consumes it.
    """
    if not candidate_items:
        raise ValueError("no candidate items supplied")
    anticipated = {
        item_id: user.anticipated_rating(item_id, stimulus)
        for item_id in candidate_items
    }
    chosen = max(anticipated, key=lambda item_id: anticipated[item_id])
    return user.consumption_rating(chosen)
