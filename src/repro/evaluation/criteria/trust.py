"""Trust measures (paper Section 3.3).

Three signals, exactly as the survey lists them:

* the Ohanian-style five-dimension questionnaire;
* loyalty measured "in terms of the number of logins and interactions
  with the system" (McNee et al.);
* increased sales (here: accepted-recommendation count), the indirect
  "desirable bi-product".
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.aims import Aim
from repro.evaluation.instruments import ohanian_trust_scale
from repro.evaluation.users import SimulatedUser

__all__ = ["LoyaltyResult", "trust_questionnaire_scores", "simulate_loyalty",
           "AIM"]

AIM = Aim.TRUST


@dataclass(frozen=True)
class LoyaltyResult:
    """Loyalty observation for one user over a simulated period."""

    user_id: str
    logins: int
    interactions: int
    items_tried: int


def trust_questionnaire_scores(
    users: Sequence[SimulatedUser],
    rng: np.random.Generator,
) -> list[float]:
    """Administer the Ohanian scale; latent construct = each user's trust."""
    scale = ohanian_trust_scale()
    return [
        scale.score(scale.administer(user.trust, rng)) for user in users
    ]


def simulate_loyalty(
    user: SimulatedUser,
    n_days: int = 14,
    interactions_per_login: int = 5,
) -> LoyaltyResult:
    """Simulate return visits: each day the user returns w.p. = trust.

    Items tried per login follows the user's current trust as well (a
    trusting user acts on more recommendations — the sales proxy).
    """
    logins = 0
    interactions = 0
    items_tried = 0
    for __ in range(n_days):
        if not user.returns_tomorrow():
            continue
        logins += 1
        interactions += interactions_per_login
        items_tried += sum(
            1
            for __ in range(interactions_per_login)
            if user.rng.random() < user.trust
        )
    return LoyaltyResult(
        user_id=user.user_id,
        logins=logins,
        interactions=interactions,
        items_tried=items_tried,
    )
