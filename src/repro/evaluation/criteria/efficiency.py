"""Efficiency measures (paper Section 3.6).

Aggregates over :class:`~repro.interaction.session.InteractionLog`:
completion time (Pu & Chen), number of interaction cycles (Thompson et
al.), and the indirect measures — "number of inspected explanations, and
number of activations of repair actions".
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.aims import Aim
from repro.interaction.session import InteractionLog

__all__ = ["EfficiencySummary", "summarize_sessions", "AIM"]

AIM = Aim.EFFICIENCY


@dataclass(frozen=True)
class EfficiencySummary:
    """Mean efficiency measures over a batch of sessions."""

    n_sessions: int
    mean_seconds: float
    mean_cycles: float
    mean_interactions: float
    mean_explanations_inspected: float
    mean_repairs: float


def summarize_sessions(logs: Sequence[InteractionLog]) -> EfficiencySummary:
    """Aggregate the Section 3.6 measures over session logs."""
    if not logs:
        raise ValueError("no session logs supplied")
    return EfficiencySummary(
        n_sessions=len(logs),
        mean_seconds=float(np.mean([log.total_seconds for log in logs])),
        mean_cycles=float(np.mean([log.n_cycles for log in logs])),
        mean_interactions=float(
            np.mean([log.n_interactions for log in logs])
        ),
        mean_explanations_inspected=float(
            np.mean([log.count("read_explanation") for log in logs])
        ),
        mean_repairs=float(np.mean([log.count("repair") for log in logs])),
    )
