"""Transparency measures (paper Section 3.1).

Two instruments: a do-users-understand questionnaire, and the paper's
behavioural task — "users can also be given the task of influencing the
system so that it 'learns' a preference for a particular type of item,
e.g. comedies ... task correctness and time to complete such a task would
then be relevant quantitative measures."
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.aims import Aim
from repro.evaluation.instruments import transparency_scale

__all__ = ["TeachingTaskResult", "teaching_task", "understanding_scores", "AIM"]

AIM = Aim.TRANSPARENCY


@dataclass(frozen=True)
class TeachingTaskResult:
    """Outcome of one 'teach the system a preference' task."""

    user_id: str
    topic: str
    share_before: float
    share_after: float
    correct: bool
    seconds: float
    n_actions: int


def _topic_share(item_topics: Sequence[tuple[str, ...]], topic: str) -> float:
    if not item_topics:
        return 0.0
    hits = sum(1 for topics in item_topics if topic in topics)
    return hits / len(item_topics)


def teaching_task(
    user_id: str,
    topic: str,
    topics_of: Callable[[str], tuple[str, ...]],
    recommend: Callable[[], list[str]],
    teach_action: Callable[[int], None],
    n_actions: int = 5,
    seconds_per_action: float = 10.0,
    success_margin: float = 0.15,
) -> TeachingTaskResult:
    """Run one teaching task and score correctness and time.

    ``recommend()`` returns current top-N item ids; ``teach_action(i)``
    performs the user's i-th teaching action (rating a topic item highly,
    editing the profile, ...).  The task counts as correct when the
    topic's share of the top-N rises by at least ``success_margin``.
    """
    before_ids = recommend()
    share_before = _topic_share([topics_of(i) for i in before_ids], topic)
    for action_index in range(n_actions):
        teach_action(action_index)
    after_ids = recommend()
    share_after = _topic_share([topics_of(i) for i in after_ids], topic)
    return TeachingTaskResult(
        user_id=user_id,
        topic=topic,
        share_before=share_before,
        share_after=share_after,
        correct=(share_after - share_before) >= success_margin,
        seconds=n_actions * seconds_per_action,
        n_actions=n_actions,
    )


def understanding_scores(
    latent_understandings: Sequence[float],
    rng: np.random.Generator,
) -> list[float]:
    """Administer the transparency questionnaire to a population.

    ``latent_understandings`` holds each user's true comprehension in
    [0, 1]; the returned scores are the noisy questionnaire measurements
    of it.
    """
    scale = transparency_scale()
    return [
        scale.score(scale.administer(latent, rng))
        for latent in latent_understandings
    ]
