"""Uniform study reporting.

Every study harness in :mod:`repro.evaluation.studies` returns a
:class:`StudyReport`: the paper's qualitative claim, the measured
condition summaries, the statistical tests, and whether the claimed
*shape* (who wins, which direction) held in this run.  Benchmarks render
these reports; EXPERIMENTS.md records them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.stats import ConditionSummary, TestResult
from repro.render import table

__all__ = ["StudyReport"]


@dataclass
class StudyReport:
    """The complete result of one simulated study."""

    study_id: str
    title: str
    paper_claim: str
    conditions: list[ConditionSummary] = field(default_factory=list)
    tests: list[TestResult] = field(default_factory=list)
    shape_holds: bool = False
    finding: str = ""
    extras: dict[str, str] = field(default_factory=dict)

    def condition(self, name: str) -> ConditionSummary:
        """Lookup one condition summary by name."""
        for summary in self.conditions:
            if summary.name == name:
                return summary
        raise KeyError(name)

    def render(self) -> str:
        """A fixed-width report block."""
        lines = [
            f"[{self.study_id}] {self.title}",
            f"paper claim: {self.paper_claim}",
            "",
        ]
        if self.conditions:
            rows = [
                (
                    summary.name,
                    f"{summary.mean:.3f}",
                    f"{summary.sd:.3f}",
                    summary.n,
                    f"[{summary.ci_low:.3f}, {summary.ci_high:.3f}]",
                )
                for summary in self.conditions
            ]
            lines.append(
                table(("condition", "mean", "sd", "n", "95% CI"), rows)
            )
            lines.append("")
        for test in self.tests:
            lines.append(f"  {test.describe()}")
        if self.tests:
            lines.append("")
        status = "HOLDS" if self.shape_holds else "DOES NOT HOLD"
        lines.append(f"shape: {status} — {self.finding}")
        for key in sorted(self.extras):
            lines.append("")
            lines.append(self.extras[key])
        return "\n".join(lines)
