"""Studies E11 & E12 — the paper's two methodological warnings.

**E11 — the design-look confound (Section 2.3).**  "In a study of
factors determining web page credibility, the largest proportion of
users' comments (46.1%) referred to the 'design look' ... So design is a
possible confounding factor and it is one to be seriously considered."
We run the same transparency→trust comparison twice: once with equal
design quality across arms (clean) and once where the transparent arm
also happens to look better (confounded).  The confounded run
overestimates the explanation effect — quantifying the warning.

**E12 — explicit vs. implicit inconsistency (Section 3.3).**
"Although questionnaires are very focused, they suffer from the fact
that explicit preferences are not always consistent with implicit user
behavior."  We measure, over a simulated population, the correlation
between questionnaire-reported trust and behavioural loyalty, and show
it is positive but far from perfect — so studies need both instruments,
exactly as the survey prescribes.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.criteria.trust import simulate_loyalty
from repro.evaluation.instruments import ohanian_trust_scale
from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import independent_t, summarize
from repro.evaluation.users import SimulatedUser, make_population
from repro.recsys.data import RatingScale

__all__ = ["run_design_confound_study", "run_explicit_implicit_study"]


def _population(n_users: int, seed: int) -> list[SimulatedUser]:
    return make_population(
        [f"u{i:03d}" for i in range(n_users)],
        true_utility_for=lambda uid: (lambda item_id: 3.5),
        scale=RatingScale(),
        seed=seed,
    )


def _trust_scores(
    users: list[SimulatedUser],
    explanation_lift: float,
    design_lift: float,
    rng: np.random.Generator,
) -> list[float]:
    """Questionnaire scores when latent trust mixes explanation and look.

    latent trust = base + explanation effect + design-look effect — the
    design term is what a careless between-subject comparison absorbs
    into its estimate.
    """
    scale = ohanian_trust_scale()
    scores = []
    for user in users:
        latent = float(
            np.clip(user.trust + explanation_lift + design_lift, 0, 1)
        )
        scores.append(scale.score(scale.administer(latent, rng)))
    return scores


def run_design_confound_study(
    n_users: int = 80,
    explanation_lift: float = 0.08,
    design_lift: float = 0.10,
    seed: int = 47,
) -> StudyReport:
    """E11: the same comparison, clean vs. design-confounded."""
    rng = np.random.default_rng(seed)

    # Clean design: both arms share the same look (no design term).
    control_clean = _trust_scores(
        _population(n_users, seed + 1), 0.0, 0.0, rng
    )
    treated_clean = _trust_scores(
        _population(n_users, seed + 2), explanation_lift, 0.0, rng
    )
    # Confounded: the transparent arm also looks better.
    control_confounded = _trust_scores(
        _population(n_users, seed + 3), 0.0, 0.0, rng
    )
    treated_confounded = _trust_scores(
        _population(n_users, seed + 4), explanation_lift, design_lift, rng
    )

    clean_effect = float(np.mean(treated_clean) - np.mean(control_clean))
    confounded_effect = float(
        np.mean(treated_confounded) - np.mean(control_confounded)
    )
    overestimate = confounded_effect - clean_effect

    conditions = [
        summarize("trust: control (clean)", control_clean),
        summarize("trust: transparent (clean)", treated_clean),
        summarize("trust: control (confounded)", control_confounded),
        summarize(
            "trust: transparent+better-look (confounded)",
            treated_confounded,
        ),
    ]
    tests = [
        independent_t(treated_clean, control_clean),
        independent_t(treated_confounded, control_confounded),
    ]
    shape = (
        confounded_effect > clean_effect + design_lift * 0.4
        and clean_effect > 0.0
    )
    return StudyReport(
        study_id="E11",
        title="The design-look confound in trust studies",
        paper_claim=(
            "design look affects perceived credibility, so unequal design "
            "between arms inflates measured explanation effects"
        ),
        conditions=conditions,
        tests=tests,
        shape_holds=shape,
        finding=(
            f"measured explanation effect: clean {clean_effect:+.3f} vs "
            f"confounded {confounded_effect:+.3f} — the better-looking "
            f"interface inflates the estimate by {overestimate:+.3f}"
        ),
    )


def run_explicit_implicit_study(
    n_users: int = 120,
    seed: int = 48,
) -> StudyReport:
    """E12: questionnaires and behaviour correlate, imperfectly."""
    rng = np.random.default_rng(seed)
    users = _population(n_users, seed + 1)
    # spread latent trust so a correlation is estimable
    for user in users:
        user.trust = float(rng.uniform(0.1, 0.9))

    scale = ohanian_trust_scale()
    explicit = [
        scale.score(scale.administer(user.trust, rng)) for user in users
    ]
    implicit = [
        float(simulate_loyalty(user, n_days=14).logins) for user in users
    ]
    correlation = float(np.corrcoef(explicit, implicit)[0, 1])

    # Behavioural disagreement rate: users whose questionnaire places
    # them in the trusting half but whose logins fall in the disloyal
    # half (or vice versa).
    explicit_median = float(np.median(explicit))
    implicit_median = float(np.median(implicit))
    disagree = sum(
        1
        for e, i in zip(explicit, implicit)
        if (e >= explicit_median) != (i >= implicit_median)
    )
    disagreement_rate = disagree / n_users

    conditions = [
        summarize("explicit trust (questionnaire)", explicit),
        summarize("implicit trust (logins)", implicit),
    ]
    shape = 0.2 < correlation < 0.95 and disagreement_rate > 0.1
    return StudyReport(
        study_id="E12",
        title="Explicit vs. implicit preference consistency",
        paper_claim=(
            "explicit preferences are not always consistent with implicit "
            "user behavior — questionnaires and behavioural measures must "
            "be combined"
        ),
        conditions=conditions,
        shape_holds=shape,
        finding=(
            f"explicit-implicit correlation r={correlation:.2f}; "
            f"{disagreement_rate:.0%} of users land on opposite sides of "
            f"the median under the two instruments"
        ),
    )
