"""Study E7 — the scrutinization task (paper Section 3.2).

"In an evaluation setting it is therefore important to supply users with
task-based scenarios where they are more likely to scrutinize, e.g. stop
receiving recommendations of Disney movies."

Design: every user's profile has (correctly) inferred that they like a
target topic; the task is to stop recommendations of that topic.  Arms:

* **with scrutability tool** — the user opens the profile page, finds the
  inferred ``likes:<topic>`` attribute and corrects it (one action) —
  *when they find the tool*: a findability parameter models Czarkowski's
  interface issue, and users who miss the tool fall back to down-rating;
* **without tool** — only indirect feedback: down-rate topic items one
  at a time and hope the profile inference flips.

Measured: task correctness and completion time, plus the paper's caveat
flag (timings are marked unreliable when many users missed the tool).
"""

from __future__ import annotations

import numpy as np

from repro.domains import make_movies
from repro.evaluation.criteria.scrutability import (
    ScrutinizationResult,
    correctness_rate,
    scrutinization_task,
    timings_reliable,
)
from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import independent_t, summarize
from repro.interaction.profile import (
    ProfileRecommender,
    ScrutableProfile,
    infer_topic_interests,
)
from repro.recsys.data import Rating

__all__ = ["run_scrutability_study"]

_SECONDS_TOOL_SEARCH = 20.0
_SECONDS_PROFILE_EDIT = 8.0
_SECONDS_PER_DOWNRATE = 12.0


def _setup_user(world, user_id: str):
    """Build an isolated (dataset copy, profile, recommender) per task.

    Each task gets its own dataset copy so one arm's down-rating cannot
    contaminate the other arm for the same user.
    """
    dataset = world.dataset.copy()
    profile = ScrutableProfile(user_id)
    infer_topic_interests(profile, dataset, min_observations=2)
    recommender = ProfileRecommender(profile).fit(dataset)
    return dataset, profile, recommender


def _banned_topic(profile: ScrutableProfile) -> str | None:
    """A topic the profile believes the user likes (the 'Disney' stand-in)."""
    for attribute in profile.attributes():
        if attribute.name.startswith("likes:") and attribute.value is True:
            return attribute.name.split(":", 1)[1]
    return None


def run_scrutability_study(
    n_users: int = 50,
    findability: float = 0.85,
    n_downrates: int = 4,
    seed: int = 11,
) -> StudyReport:
    """Run the two-arm scrutinization experiment on the movie world."""
    world = make_movies(n_users=n_users, n_items=120, seed=seed)
    rng = np.random.default_rng(seed + 1)

    results: dict[str, list[ScrutinizationResult]] = {
        "with scrutability tool": [],
        "without tool (down-rating only)": [],
    }
    for user_id in list(world.dataset.users):
        for arm in results:
            dataset, profile, recommender = _setup_user(world, user_id)
            topic = _banned_topic(profile)
            if topic is None:
                continue

            def recommend(recommender=recommender, user_id=user_id) -> list[str]:
                return [
                    r.item_id for r in recommender.recommend(user_id, n=10)
                ]

            def topics_of(item_id: str, dataset=dataset) -> tuple[str, ...]:
                return dataset.item(item_id).topics

            if arm == "with scrutability tool":
                found = bool(rng.random() < findability)
            else:
                found = False

            # Per-user timing jitter: humans vary, and constant-valued
            # timing arms degenerate the downstream t-test.
            jitter = float(rng.normal(0.0, 3.0))

            def scrutinize(
                dataset=dataset,
                profile=profile,
                topic=topic,
                found=found,
                user_id=user_id,
                jitter=jitter,
            ) -> tuple[int, float]:
                if found:
                    profile.correct(f"likes:{topic}", False)
                    return 1, max(
                        5.0,
                        _SECONDS_TOOL_SEARCH + _SECONDS_PROFILE_EDIT + jitter,
                    )
                # Indirect: down-rate topic items, then re-infer.
                topic_items = [
                    item.item_id
                    for item in dataset.items.values()
                    if topic in item.topics
                ][:n_downrates]
                for item_id in topic_items:
                    dataset.add_rating(
                        Rating(
                            user_id=user_id,
                            item_id=item_id,
                            value=dataset.scale.minimum,
                        )
                    )
                infer_topic_interests(profile, dataset, min_observations=2)
                searched = 2 * _SECONDS_TOOL_SEARCH  # looked for a tool first
                return (
                    len(topic_items),
                    max(
                        10.0,
                        searched
                        + len(topic_items) * _SECONDS_PER_DOWNRATE
                        + jitter,
                    ),
                )

            results[arm].append(
                scrutinization_task(
                    user_id=user_id,
                    banned_topic=topic,
                    topics_of=topics_of,
                    recommend=recommend,
                    scrutinize=scrutinize,
                    found_tool=found,
                )
            )

    conditions = []
    seconds: dict[str, list[float]] = {}
    for arm, arm_results in results.items():
        seconds[arm] = [result.seconds for result in arm_results]
        conditions.append(summarize(f"seconds: {arm}", seconds[arm]))
    correctness = {
        arm: correctness_rate(arm_results)
        for arm, arm_results in results.items()
    }
    tests = [
        independent_t(
            seconds["without tool (down-rating only)"],
            seconds["with scrutability tool"],
        )
    ]
    tool = correctness["with scrutability tool"]
    no_tool = correctness["without tool (down-rating only)"]
    # The robust shape: the tool is never less correct and is much
    # faster (indirect down-rating can also succeed eventually — it just
    # costs far more actions and time).
    shape = tool >= no_tool and tests[0].significant
    reliable = timings_reliable(results["with scrutability tool"])
    return StudyReport(
        study_id="E7",
        title="Scrutinization task (stop topic-X recommendations)",
        paper_claim=(
            "users can correct the system's assumptions when a scrutable "
            "profile exists; timings mislead when the tool is hard to find"
        ),
        conditions=conditions,
        tests=tests,
        shape_holds=shape,
        finding=(
            f"task correctness — with tool {tool:.0%} vs without "
            f"{no_tool:.0%}; timing comparison "
            f"{'reliable' if reliable else 'UNRELIABLE (interface issues)'}"
        ),
        extras={
            "correctness": "\n".join(
                f"{arm}: correctness {rate:.0%}"
                for arm, rate in correctness.items()
            )
        },
    )
