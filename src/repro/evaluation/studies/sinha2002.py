"""Study E5 — transparency → trust → loyalty (paper Sections 2.3, 3.3).

"Previous studies indicate that transparency and the possibility of
interaction with recommender systems increases user trust [14, 31]", and
"users intend to return to recommender systems which they find
trustworthy [9]"; loyalty is measured "in terms of the number of logins
and interactions with the system [22]".

Design (between-subject): users live with a recommender for a simulated
period, consuming its recommendations.  Arms differ only in the
interface:

* **opaque** — no explanations: bad recommendations are unexplained;
* **transparent** — explanations reveal why each item was recommended,
  which (a) softens the trust loss on bad outcomes (the user is "more
  forgiving ... if they understand why a bad recommendation has been
  made") and (b) helps the user skip some bad items before consuming.

Measured: Ohanian trust questionnaire, then loyalty (logins over a
follow-up period).
"""

from __future__ import annotations

import numpy as np

from repro.domains import make_movies
from repro.evaluation.criteria.trust import (
    simulate_loyalty,
    trust_questionnaire_scores,
)
from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import independent_t, summarize
from repro.evaluation.users import ExplanationStimulus, make_population
from repro.recsys.cf_user import UserBasedCF

__all__ = ["run_trust_study"]


def run_trust_study(
    n_users: int = 100,
    n_consumptions: int = 18,
    seed: int = 31,
) -> StudyReport:
    """Run the two-arm trust/loyalty experiment on the movie world."""
    world = make_movies(n_users=n_users, n_items=150, seed=seed)
    dataset = world.dataset
    recommender = UserBasedCF().fit(dataset)
    population = make_population(
        list(dataset.users),
        true_utility_for=lambda uid: (
            lambda item_id: world.true_utility(uid, item_id)
        ),
        scale=dataset.scale,
        seed=seed + 1,
    )
    rng = np.random.default_rng(seed + 2)
    order = rng.permutation(len(population))
    half = len(population) // 2
    arms = {
        "opaque": [population[index] for index in order[:half]],
        "transparent": [population[index] for index in order[half:]],
    }
    transparent_stimulus = ExplanationStimulus(fidelity=0.7)

    for arm, users in arms.items():
        for user in users:
            recommendations = recommender.recommend(
                user.user_id, n=n_consumptions * 2
            )
            consumed = 0
            for recommendation in recommendations:
                if consumed >= n_consumptions:
                    break
                if arm == "transparent":
                    # The explanation lets the user pre-screen: clearly
                    # unappealing items (anticipated below midpoint) are
                    # skipped instead of consumed.
                    anticipated = user.anticipated_rating(
                        recommendation.item_id, transparent_stimulus
                    )
                    if anticipated < dataset.scale.midpoint - 0.5:
                        continue
                user.experience_outcome(
                    recommendation.item_id,
                    understood_why=(arm == "transparent"),
                )
                consumed += 1

    questionnaire_rng = np.random.default_rng(seed + 3)
    trust_scores = {
        arm: trust_questionnaire_scores(users, questionnaire_rng)
        for arm, users in arms.items()
    }
    loyalty = {
        arm: [float(simulate_loyalty(user).logins) for user in users]
        for arm, users in arms.items()
    }

    conditions = [
        summarize("trust questionnaire: opaque", trust_scores["opaque"]),
        summarize(
            "trust questionnaire: transparent", trust_scores["transparent"]
        ),
        summarize("logins (14 days): opaque", loyalty["opaque"]),
        summarize("logins (14 days): transparent", loyalty["transparent"]),
    ]
    tests = [
        independent_t(trust_scores["transparent"], trust_scores["opaque"]),
        independent_t(loyalty["transparent"], loyalty["opaque"]),
    ]
    trust_gap = float(
        np.mean(trust_scores["transparent"]) - np.mean(trust_scores["opaque"])
    )
    loyalty_gap = float(
        np.mean(loyalty["transparent"]) - np.mean(loyalty["opaque"])
    )
    shape = trust_gap > 0.0 and loyalty_gap > 0.0 and tests[0].significant
    return StudyReport(
        study_id="E5",
        title="Transparency raises trust and loyalty",
        paper_claim=(
            "transparency increases user trust; trustworthy systems see "
            "users return (loyalty: logins and interactions)"
        ),
        conditions=conditions,
        tests=tests,
        shape_holds=shape,
        finding=(
            f"trust gap {trust_gap:+.3f} (questionnaire units), loyalty "
            f"gap {loyalty_gap:+.1f} logins over 14 days"
        ),
    )
