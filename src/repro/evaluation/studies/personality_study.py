"""Study E8 — recommender personality (paper Section 4.6).

"The recommender may have an affirming personality, supplying the user
with recommendations of items they might already know about ... Or, on
the contrary, it may aim to offer more novel and positively surprising
(serendipitous) recommendations ... A recommender system can be bold and
recommend items more strongly than it normally would, or it could simply
state its true confidence."

Arms: honest (control), bold, frank, affirming, serendipitous.  Each arm
serves the same population from the same CF substrate, differing only in
the personality wrapper.  Measured per arm:

* try-rate (persuasion): how many recommendations users act on;
* final trust after consuming what they tried (bold personalities create
  expectation gaps that cost trust — the Section 2.4 backfire);
* novelty of consumed items (the serendipity side).

Expected shape: bold wins try-rate but loses trust to frank; the
serendipitous arm consumes the most novel items.
"""

from __future__ import annotations

import numpy as np

from repro.core import ExplainedRecommender, PreferenceBasedExplainer
from repro.domains import make_movies
from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import independent_t, summarize
from repro.evaluation.users import ExplanationStimulus, make_population
from repro.presentation.personality import (
    AFFIRMING,
    BOLD,
    FRANK,
    SERENDIPITOUS,
    Personality,
    PersonalityRecommender,
)
from repro.recsys.cf_user import UserBasedCF
from repro.recsys.metrics import novelty

__all__ = ["run_personality_study"]

HONEST = Personality(name="honest")


def run_personality_study(
    n_users: int = 50,
    n_recommendations: int = 8,
    seed: int = 46,
) -> StudyReport:
    """Run the five-arm personality experiment on the movie world."""
    world = make_movies(n_users=n_users, n_items=150, seed=seed)
    dataset = world.dataset
    pipeline = ExplainedRecommender(
        UserBasedCF(), PreferenceBasedExplainer()
    ).fit(dataset)

    personalities = {
        "honest": HONEST,
        "bold": BOLD,
        "frank": FRANK,
        "affirming": AFFIRMING,
        "serendipitous": SERENDIPITOUS,
    }
    try_rates: dict[str, list[float]] = {name: [] for name in personalities}
    final_trust: dict[str, list[float]] = {name: [] for name in personalities}
    novelty_scores: dict[str, list[float]] = {
        name: [] for name in personalities
    }

    for arm, personality in personalities.items():
        users = make_population(
            list(dataset.users),
            true_utility_for=lambda uid: (
                lambda item_id: world.true_utility(uid, item_id)
            ),
            scale=dataset.scale,
            seed=seed + 1,  # identical population in every arm
        )
        wrapped = PersonalityRecommender(pipeline, personality)
        for user in users:
            recommendations = wrapped.recommend(
                user.user_id, n=n_recommendations
            )
            if not recommendations:
                continue
            tried = 0
            for explained in recommendations:
                stimulus = ExplanationStimulus(
                    fidelity=0.5 if personality.frank else 0.2,
                    persuasive_pull=0.7,
                    shown_prediction=explained.score,
                )
                if not user.would_try(explained.item_id, stimulus):
                    continue
                tried += 1
                novelty_scores[arm].append(
                    novelty([explained.item_id], dataset)
                )
                user.experience_outcome(
                    explained.item_id,
                    understood_why=personality.frank,
                )
                # Expectation gap: a displayed score far above the true
                # outcome costs extra trust (persuasion backfires,
                # Section 2.4).
                gap = explained.score - user.true_utility(explained.item_id)
                if gap > 1.0:
                    user.trust = max(0.0, user.trust - 0.04 * (gap - 1.0))
            try_rates[arm].append(tried / len(recommendations))
            final_trust[arm].append(user.trust)

    conditions = []
    for arm in personalities:
        conditions.append(summarize(f"try-rate: {arm}", try_rates[arm]))
        conditions.append(summarize(f"final trust: {arm}", final_trust[arm]))

    tests = [
        independent_t(final_trust["frank"], final_trust["bold"]),
        independent_t(try_rates["bold"], try_rates["honest"]),
    ]
    mean_novelty = {
        arm: (float(np.mean(values)) if values else 0.0)
        for arm, values in novelty_scores.items()
    }
    shape = (
        float(np.mean(final_trust["frank"]))
        > float(np.mean(final_trust["bold"]))
        and float(np.mean(try_rates["bold"]))
        > float(np.mean(try_rates["honest"]))
        and mean_novelty["serendipitous"] > mean_novelty["affirming"]
    )
    return StudyReport(
        study_id="E8",
        title="Recommender personality: bold / frank / affirming / "
        "serendipitous",
        paper_claim=(
            "bold strength shading persuades but backfires on trust; "
            "frank confidence preserves trust; serendipitous item choice "
            "surfaces novel items where affirming stays familiar"
        ),
        conditions=conditions,
        tests=tests,
        shape_holds=shape,
        finding=(
            f"try-rate bold {float(np.mean(try_rates['bold'])):.2f} vs "
            f"honest {float(np.mean(try_rates['honest'])):.2f}; trust "
            f"frank {float(np.mean(final_trust['frank'])):.2f} vs bold "
            f"{float(np.mean(final_trust['bold'])):.2f}; novelty "
            f"serendipitous {mean_novelty['serendipitous']:.2f} vs "
            f"affirming {mean_novelty['affirming']:.2f}"
        ),
    )
