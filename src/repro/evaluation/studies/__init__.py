"""Simulated reproductions of the studies the survey builds on (E1–E9)."""

from repro.evaluation.studies.bilgic2005 import run_bilgic_study
from repro.evaluation.studies.confounds import (
    run_design_confound_study,
    run_explicit_implicit_study,
)
from repro.evaluation.studies.cosley2003 import run_cosley_study
from repro.evaluation.studies.critiquing import run_critiquing_study
from repro.evaluation.studies.diversification import (
    run_diversification_study,
)
from repro.evaluation.studies.herlocker2000 import (
    INTERFACES,
    run_herlocker_study,
)
from repro.evaluation.studies.modality_study import run_modality_study
from repro.evaluation.studies.personality_study import run_personality_study
from repro.evaluation.studies.scrutability_study import run_scrutability_study
from repro.evaluation.studies.sinha2002 import run_trust_study
from repro.evaluation.studies.tradeoffs import run_tradeoff_study

__all__ = [
    "run_herlocker_study",
    "INTERFACES",
    "run_cosley_study",
    "run_bilgic_study",
    "run_critiquing_study",
    "run_trust_study",
    "run_tradeoff_study",
    "run_scrutability_study",
    "run_personality_study",
    "run_diversification_study",
    "run_modality_study",
    "run_design_confound_study",
    "run_explicit_implicit_study",
]
