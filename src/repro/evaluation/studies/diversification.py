"""Study E9 — topic diversification (paper Section 1, ref [39]).

Ziegler et al. found that diversifying recommendation lists lowers
list-level accuracy metrics but *improves* user satisfaction — one of
the survey's motivating examples of "accuracy metrics can only partially
evaluate a recommender system".

Design: sweep the diversification factor theta over CF top-10 lists;
measure precision@10 against ground-truth relevant sets, intra-list
topic diversity, and a documented user-satisfaction model

    satisfaction(list) = 0.75 * mean normalised true utility
                       + 0.25 * topic coverage

whose accuracy term falls and coverage term rises with theta, so the
blend peaks at an intermediate theta — Ziegler's shape.
"""

from __future__ import annotations

import numpy as np

from repro.domains import make_movies
from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import summarize
from repro.recsys.cf_user import UserBasedCF
from repro.recsys.diversify import diversify
from repro.recsys.metrics import intra_list_diversity, precision_at_n
from repro.render import table

__all__ = ["run_diversification_study"]


def _topic_similarity(dataset):
    """Pairwise similarity = primary-genre match (1.0 same, 0.0 else)."""

    def similarity(item_a: str, item_b: str) -> float:
        topics_a = dataset.item(item_a).topics
        topics_b = dataset.item(item_b).topics
        if not topics_a or not topics_b:
            return 0.0
        return 1.0 if topics_a[0] == topics_b[0] else 0.0

    return similarity


def run_diversification_study(
    n_users: int = 40,
    list_size: int = 10,
    pool_size: int = 50,
    thetas: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8),
    seed: int = 39,
) -> StudyReport:
    """Sweep theta over CF top-N lists on the movie world."""
    world = make_movies(n_users=n_users, n_items=150, seed=seed)
    dataset = world.dataset
    recommender = UserBasedCF().fit(dataset)
    similarity = _topic_similarity(dataset)
    scale = dataset.scale

    rows = []
    satisfaction_by_theta: dict[float, list[float]] = {}
    precision_by_theta: dict[float, list[float]] = {}
    diversity_by_theta: dict[float, list[float]] = {}
    for theta in thetas:
        precisions: list[float] = []
        diversities: list[float] = []
        satisfactions: list[float] = []
        for user_id in dataset.users:
            pool = recommender.recommend(user_id, n=pool_size)
            if len(pool) < list_size:
                continue
            ranked = diversify(pool, similarity, theta=theta, n=list_size)
            item_ids = [recommendation.item_id for recommendation in ranked]
            relevant = world.relevant_items(user_id)
            precisions.append(precision_at_n(item_ids, relevant))
            diversities.append(intra_list_diversity(item_ids, similarity))
            utilities = [
                scale.normalize(world.true_utility(user_id, item_id))
                for item_id in item_ids
            ]
            coverage = len(
                {dataset.item(item_id).topics[0] for item_id in item_ids}
            ) / len(item_ids)
            satisfactions.append(
                0.75 * float(np.mean(utilities)) + 0.25 * coverage
            )
        precision_by_theta[theta] = precisions
        diversity_by_theta[theta] = diversities
        satisfaction_by_theta[theta] = satisfactions
        rows.append(
            (
                f"{theta:.1f}",
                f"{float(np.mean(precisions)):.3f}",
                f"{float(np.mean(diversities)):.3f}",
                f"{float(np.mean(satisfactions)):.3f}",
            )
        )

    mean_precision = {
        theta: float(np.mean(values))
        for theta, values in precision_by_theta.items()
    }
    mean_diversity = {
        theta: float(np.mean(values))
        for theta, values in diversity_by_theta.items()
    }
    mean_satisfaction = {
        theta: float(np.mean(values))
        for theta, values in satisfaction_by_theta.items()
    }
    best_theta = max(mean_satisfaction, key=lambda t: mean_satisfaction[t])
    shape = (
        mean_precision[thetas[-1]] <= mean_precision[thetas[0]] + 1e-9
        and mean_diversity[thetas[-1]] > mean_diversity[thetas[0]]
        and best_theta > 0.0
    )
    conditions = [
        summarize(f"satisfaction@theta={theta:.1f}", values)
        for theta, values in satisfaction_by_theta.items()
    ]
    return StudyReport(
        study_id="E9",
        title="Topic diversification (Ziegler et al. 2005)",
        paper_claim=(
            "diversification lowers accuracy metrics but improves "
            "user satisfaction at intermediate strength"
        ),
        conditions=conditions,
        shape_holds=shape,
        finding=(
            f"precision {mean_precision[thetas[0]]:.3f}->"
            f"{mean_precision[thetas[-1]]:.3f}, diversity "
            f"{mean_diversity[thetas[0]]:.3f}->"
            f"{mean_diversity[thetas[-1]]:.3f}; satisfaction peaks at "
            f"theta={best_theta:.1f}"
        ),
        extras={
            "sweep": table(
                ("theta", "precision@10", "diversity", "satisfaction"), rows
            )
        },
    )
