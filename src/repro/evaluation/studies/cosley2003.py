"""Study E2 — "Is seeing believing?" re-rating (paper Sections 2.4, 3.4).

Cosley et al. [10] showed "that users can be manipulated to give a rating
closer to the system's prediction, whether this prediction is accurate or
not".  Design (within-subject, as the paper requires): users re-rate
movies they rated before under three interfaces —

* **control** — no prediction shown (controls intra-user noise);
* **accurate** — the shown prediction equals their original rating;
* **inflated** — the shown prediction is one point above the original.

Measured: mean signed re-rating shift per arm.  Expected shape: the
inflated arm shifts ratings significantly upward relative to control;
the accurate arm does not.
"""

from __future__ import annotations

import numpy as np

from repro.domains import make_movies
from repro.evaluation.criteria.persuasion import ReRating, rerating_trial
from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import independent_t, one_sample_t, summarize
from repro.evaluation.users import ExplanationStimulus, make_population

__all__ = ["run_cosley_study"]


def run_cosley_study(
    n_users: int = 60,
    items_per_user: int = 6,
    inflation: float = 1.0,
    seed: int = 10,
) -> StudyReport:
    """Run the three-arm re-rating experiment on the movie world."""
    world = make_movies(n_users=n_users, n_items=120, seed=seed)
    dataset = world.dataset
    users = make_population(
        list(dataset.users),
        true_utility_for=lambda uid: (
            lambda item_id: world.true_utility(uid, item_id)
        ),
        scale=dataset.scale,
        seed=seed + 1,
    )

    arms: dict[str, list[ReRating]] = {
        "control": [],
        "accurate prediction": [],
        "inflated prediction": [],
    }
    rng = np.random.default_rng(seed + 2)
    for user in users:
        rated = list(dataset.ratings_by(user.user_id).items())
        if len(rated) < 3:
            continue
        order = rng.permutation(len(rated))
        chosen = [rated[index] for index in order[:items_per_user]]
        for position, (item_id, rating) in enumerate(chosen):
            arm = ("control", "accurate prediction", "inflated prediction")[
                position % 3
            ]
            if arm == "control":
                stimulus = ExplanationStimulus()
            elif arm == "accurate prediction":
                stimulus = ExplanationStimulus(
                    persuasive_pull=0.8,
                    shown_prediction=rating.value,
                )
            else:
                stimulus = ExplanationStimulus(
                    persuasive_pull=0.8,
                    shown_prediction=dataset.scale.clip(
                        rating.value + inflation
                    ),
                )
            arms[arm].append(
                rerating_trial(user, item_id, rating.value, stimulus)
            )

    shifts = {
        name: [trial.shift for trial in trials]
        for name, trials in arms.items()
    }
    conditions = [
        summarize(f"shift: {name}", values)
        for name, values in shifts.items()
    ]
    inflated_vs_control = independent_t(
        shifts["inflated prediction"], shifts["control"]
    )
    inflated_nonzero = one_sample_t(shifts["inflated prediction"], 0.0)

    mean_control = float(np.mean(shifts["control"]))
    mean_inflated = float(np.mean(shifts["inflated prediction"]))
    mean_accurate = float(np.mean(shifts["accurate prediction"]))
    shape = (
        mean_inflated > mean_control + 0.1
        and inflated_vs_control.significant
        and abs(mean_accurate - mean_control) < abs(
            mean_inflated - mean_control
        )
    )
    return StudyReport(
        study_id="E2",
        title="Re-rating manipulation (Cosley et al. 2003)",
        paper_claim=(
            "users can be manipulated to give a rating closer to the "
            "system's prediction, whether this prediction is accurate or "
            "not"
        ),
        conditions=conditions,
        tests=[inflated_vs_control, inflated_nonzero],
        shape_holds=shape,
        finding=(
            f"mean shift — control {mean_control:+.3f}, accurate "
            f"{mean_accurate:+.3f}, inflated {mean_inflated:+.3f}"
        ),
    )
