"""Study E10 — complementary modalities (paper Section 6, future work).

The survey closes by proposing to test how text and graphical
explanations "can complement each other" rather than assuming one is
preferable.  This forward-looking probe runs that proposed experiment
over simulated users:

* **text** explanations carry the *reasons* (high why-comprehension) but
  are slow to read;
* **chart** explanations carry the *evidence distribution* (fast, good
  what-comprehension, weaker why-comprehension);
* **combined** presentations let each channel serve the question it is
  good at.

Response model: each user has a verbal/visual processing balance; a
modality's comprehension is the coverage of (why, what) content weighted
by that balance, with combined presentations covering both channels.
Measured: comprehension score and reading time per modality.  Expected
(the complement hypothesis): combined beats both single modalities on
comprehension while costing only marginally more time than text.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import paired_t, summarize
from repro.presentation.modality import Modality

__all__ = ["run_modality_study"]

# (why-coverage, what-coverage, base reading seconds) per modality.
_MODALITY_PROFILE: dict[Modality, tuple[float, float, float]] = {
    Modality.TEXT: (0.85, 0.45, 11.0),
    Modality.CHART: (0.35, 0.85, 4.5),
    Modality.COMBINED: (0.9, 0.9, 13.0),
}


def run_modality_study(
    n_users: int = 80,
    seed: int = 60,
) -> StudyReport:
    """Run the within-subject modality comparison."""
    rng = np.random.default_rng(seed)
    verbal_bias = rng.uniform(0.3, 0.7, size=n_users)  # 1 = fully verbal

    comprehension: dict[Modality, np.ndarray] = {}
    seconds: dict[Modality, np.ndarray] = {}
    for modality, (why, what, base_seconds) in _MODALITY_PROFILE.items():
        # A verbal user extracts more from prose; a visual user from
        # charts; combined serves both channels.
        scores = verbal_bias * why + (1.0 - verbal_bias) * what
        scores = np.clip(scores + rng.normal(0.0, 0.07, size=n_users), 0, 1)
        comprehension[modality] = scores
        seconds[modality] = base_seconds + rng.normal(
            0.0, 1.0, size=n_users
        )

    conditions = []
    for modality in Modality:
        conditions.append(
            summarize(
                f"comprehension: {modality.value}",
                comprehension[modality].tolist(),
            )
        )
        conditions.append(
            summarize(f"seconds: {modality.value}", seconds[modality].tolist())
        )

    combined_vs_text = paired_t(
        comprehension[Modality.COMBINED].tolist(),
        comprehension[Modality.TEXT].tolist(),
    )
    combined_vs_chart = paired_t(
        comprehension[Modality.COMBINED].tolist(),
        comprehension[Modality.CHART].tolist(),
    )
    mean_combined = float(np.mean(comprehension[Modality.COMBINED]))
    mean_text = float(np.mean(comprehension[Modality.TEXT]))
    mean_chart = float(np.mean(comprehension[Modality.CHART]))
    time_overhead = float(
        np.mean(seconds[Modality.COMBINED]) - np.mean(seconds[Modality.TEXT])
    )
    shape = (
        mean_combined > mean_text
        and mean_combined > mean_chart
        and combined_vs_text.significant
        and combined_vs_chart.significant
        and time_overhead < 5.0
    )
    return StudyReport(
        study_id="E10",
        title="Complementary explanation modalities (future-work probe)",
        paper_claim=(
            "text and graphical explanations complement each other: a "
            "combined presentation should beat either alone on "
            "comprehension at modest extra reading cost"
        ),
        conditions=conditions,
        tests=[combined_vs_text, combined_vs_chart],
        shape_holds=shape,
        finding=(
            f"comprehension — text {mean_text:.2f}, chart {mean_chart:.2f}, "
            f"combined {mean_combined:.2f}; combined costs "
            f"{time_overhead:+.1f}s over text"
        ),
    )
