"""Study E3 — satisfaction vs. promotion (paper Sections 3.5, 6).

Bilgic & Mooney [5] had users rate a book twice — "once after receiving
an explanation, and a second time after reading the book.  If their
opinion on the book did not change much, the system was considered
effective."  Their finding, which the survey's conclusion leans on:
the persuasive histogram interface *promotes* (pre-consumption ratings
overshoot the post-consumption truth), while content-grounded
keyword/influence explanations are *effective* (pre ≈ post).

Arms map to our explainer stimuli:

* **histogram** — high persuasive pull, low item information;
* **influence/keyword** — high item information, low pull;
* **no explanation** — the control.

Measured: mean signed gap (before − after) per arm.
"""

from __future__ import annotations

import numpy as np

from repro.domains import make_books
from repro.evaluation.criteria.effectiveness import (
    DoubleRating,
    double_rating_trial,
    effectiveness_gaps,
)
from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import independent_t, one_sample_t, summarize
from repro.evaluation.users import ExplanationStimulus, make_population

__all__ = ["run_bilgic_study", "STIMULI"]

STIMULI: dict[str, ExplanationStimulus] = {
    "histogram (promotion)": ExplanationStimulus(
        fidelity=0.15, persuasive_pull=0.9, reading_seconds=5.0
    ),
    "influence/keyword (satisfaction)": ExplanationStimulus(
        fidelity=0.85, persuasive_pull=0.2, reading_seconds=9.0
    ),
    "no explanation": ExplanationStimulus(),
}
"""Interface stimuli for the three arms.

The shown prediction is set per-trial (the system's inflated estimate),
so it is not part of the static descriptors.
"""


def run_bilgic_study(
    n_users: int = 60,
    items_per_user: int = 4,
    overshoot: float = 0.8,
    seed: int = 5,
) -> StudyReport:
    """Run the double-rating experiment on the book world.

    ``overshoot`` is how far above the truth the system's shown
    prediction sits for recommended items (recommenders recommend what
    they overestimate — the selection bias Bilgic & Mooney's histogram
    then amplifies).
    """
    world = make_books(n_users=n_users, n_items=120, seed=seed)
    dataset = world.dataset
    users = make_population(
        list(dataset.users),
        true_utility_for=lambda uid: (
            lambda item_id: world.true_utility(uid, item_id)
        ),
        scale=dataset.scale,
        seed=seed + 1,
    )

    rng = np.random.default_rng(seed + 2)
    trials: dict[str, list[DoubleRating]] = {name: [] for name in STIMULI}
    item_ids = list(dataset.items)
    for user in users:
        unrated = [
            item_id
            for item_id in item_ids
            if dataset.rating(user.user_id, item_id) is None
        ]
        order = rng.permutation(len(unrated))
        chosen = [unrated[index] for index in order[: items_per_user * 3]]
        for position, item_id in enumerate(chosen):
            arm = list(STIMULI)[position % 3]
            base = STIMULI[arm]
            shown = dataset.scale.clip(
                world.true_utility(user.user_id, item_id) + overshoot
            )
            stimulus = ExplanationStimulus(
                fidelity=base.fidelity,
                persuasive_pull=base.persuasive_pull,
                shown_prediction=(
                    shown if base.persuasive_pull > 0 else None
                ),
                reading_seconds=base.reading_seconds,
            )
            trials[arm].append(double_rating_trial(user, item_id, stimulus))

    conditions = []
    gaps: dict[str, list[float]] = {}
    for arm, arm_trials in trials.items():
        gaps[arm] = [trial.gap for trial in arm_trials]
        conditions.append(summarize(f"signed gap: {arm}", gaps[arm]))

    histogram_gap = float(np.mean(gaps["histogram (promotion)"]))
    keyword_gap = float(np.mean(gaps["influence/keyword (satisfaction)"]))
    tests = [
        independent_t(
            gaps["histogram (promotion)"],
            gaps["influence/keyword (satisfaction)"],
        ),
        one_sample_t(gaps["histogram (promotion)"], 0.0),
    ]
    keyword_abs = float(
        np.mean(np.abs(gaps["influence/keyword (satisfaction)"]))
    )
    histogram_abs = float(np.mean(np.abs(gaps["histogram (promotion)"])))
    shape = (
        histogram_gap > keyword_gap + 0.1
        and abs(keyword_gap) < abs(histogram_gap)
        and keyword_abs < histogram_abs
        and tests[0].significant
    )
    summary = {
        arm: effectiveness_gaps(arm_trials)
        for arm, arm_trials in trials.items()
    }
    return StudyReport(
        study_id="E3",
        title="Satisfaction vs. promotion (Bilgic & Mooney 2005)",
        paper_claim=(
            "persuasive histogram explanations oversell (pre-consumption "
            "ratings overshoot post-consumption truth); content-grounded "
            "influence/keyword explanations are effective (pre ~= post)"
        ),
        conditions=conditions,
        tests=tests,
        shape_holds=shape,
        finding=(
            f"mean signed gap — histogram {histogram_gap:+.3f}, "
            f"influence/keyword {keyword_gap:+.3f}, control "
            f"{float(np.mean(gaps['no explanation'])):+.3f}"
        ),
        extras={
            "detail": "\n".join(
                f"{arm}: {values}" for arm, values in summary.items()
            )
        },
    )
