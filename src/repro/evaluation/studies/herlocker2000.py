"""Study E1 — the 21 explanation interfaces (paper Section 3.4).

"In a study of a collaborative filtering- and ratings-based recommender
system for movies, participants were given different explanation
interfaces [18].  This study inquired how likely users were to see one
particular movie for 21 different explanation interfaces.  The best
response was for a histogram of how similar users had rated the item,
with the 'good' ratings clustered together and the 'bad' ratings
clustered together."

Herlocker et al.'s other headline result is that some data-heavy
interfaces scored *below* the no-explanation baseline.

Substitution note: the original 21 stimuli are paraphrased here as
:class:`InterfaceDescriptor` records with four interpretable parameters —
information content, comprehensibility, personal relevance and overload.
Simulated users rate "how likely are you to see this movie" (1–7) from a
response model that rewards comprehensible information and penalises
overload.  The *parameters* encode only interface properties, never
target rankings; the published ordering shape (clustered histogram on
top, data-heavy interfaces below baseline) emerges from the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import paired_t, summarize

__all__ = ["InterfaceDescriptor", "INTERFACES", "run_herlocker_study"]


@dataclass(frozen=True)
class InterfaceDescriptor:
    """One explanation interface as a point in property space.

    All parameters in [0, 1]:

    * ``information``: how much decision-relevant signal it conveys;
    * ``comprehensibility``: how easily a casual user decodes it;
    * ``relevance``: how personal the framing is ("your neighbours",
      "your favourite actor" vs. global statistics);
    * ``overload``: visual/cognitive clutter.
    """

    name: str
    information: float
    comprehensibility: float
    relevance: float
    overload: float
    is_baseline: bool = False


INTERFACES: tuple[InterfaceDescriptor, ...] = (
    InterfaceDescriptor(
        "histogram of neighbours' ratings (good/bad clustered)",
        information=0.90, comprehensibility=0.90, relevance=0.85,
        overload=0.10,
    ),
    InterfaceDescriptor(
        "histogram of neighbours' ratings (raw bars)",
        information=0.85, comprehensibility=0.70, relevance=0.85,
        overload=0.25,
    ),
    InterfaceDescriptor(
        "past performance ('correct for you 80% of the time')",
        information=0.70, comprehensibility=0.95, relevance=0.90,
        overload=0.05,
    ),
    InterfaceDescriptor(
        "similarity to other items you rated",
        information=0.75, comprehensibility=0.85, relevance=0.80,
        overload=0.10,
    ),
    InterfaceDescriptor(
        "favourite actor or actress appears",
        information=0.60, comprehensibility=0.95, relevance=0.85,
        overload=0.05,
    ),
    InterfaceDescriptor(
        "overall average rating of all users",
        information=0.50, comprehensibility=0.90, relevance=0.30,
        overload=0.05,
    ),
    InterfaceDescriptor(
        "quote from a film critic's review",
        information=0.55, comprehensibility=0.85, relevance=0.35,
        overload=0.15,
    ),
    InterfaceDescriptor(
        "film awards won",
        information=0.45, comprehensibility=0.95, relevance=0.25,
        overload=0.05,
    ),
    InterfaceDescriptor(
        "recommender's stated confidence in the prediction",
        information=0.50, comprehensibility=0.80, relevance=0.55,
        overload=0.10,
    ),
    InterfaceDescriptor(
        "genre match with your profile",
        information=0.55, comprehensibility=0.90, relevance=0.70,
        overload=0.05,
    ),
    InterfaceDescriptor(
        "'one of our top-10 picks for you' badge",
        information=0.35, comprehensibility=0.95, relevance=0.70,
        overload=0.05,
    ),
    InterfaceDescriptor(
        "users of your age group liked this movie",
        information=0.45, comprehensibility=0.90, relevance=0.60,
        overload=0.05,
    ),
    InterfaceDescriptor(
        "strength-of-recommendation bar",
        information=0.40, comprehensibility=0.85, relevance=0.55,
        overload=0.10,
    ),
    InterfaceDescriptor(
        "neighbour comments about the movie",
        information=0.55, comprehensibility=0.70, relevance=0.65,
        overload=0.35,
    ),
    InterfaceDescriptor(
        "number of similar users who rated it",
        information=0.35, comprehensibility=0.75, relevance=0.55,
        overload=0.15,
    ),
    InterfaceDescriptor(
        "no explanation (baseline)",
        information=0.00, comprehensibility=1.00, relevance=0.00,
        overload=0.00, is_baseline=True,
    ),
    InterfaceDescriptor(
        "table of each neighbour's numeric rating",
        information=0.80, comprehensibility=0.45, relevance=0.75,
        overload=0.60,
    ),
    InterfaceDescriptor(
        "neighbour count with standard deviation",
        information=0.55, comprehensibility=0.35, relevance=0.50,
        overload=0.55,
    ),
    InterfaceDescriptor(
        "detailed correlation graph of neighbours",
        information=0.70, comprehensibility=0.15, relevance=0.55,
        overload=0.85,
    ),
    InterfaceDescriptor(
        "multi-panel raw data display",
        information=0.75, comprehensibility=0.10, relevance=0.45,
        overload=0.95,
    ),
    InterfaceDescriptor(
        "how long MovieLens has known you",
        information=0.15, comprehensibility=0.80, relevance=0.40,
        overload=0.10,
    ),
)
"""The 21 interface descriptors (paraphrased from Herlocker et al. 2000)."""


def _mean_appeal(interface: InterfaceDescriptor) -> float:
    """Latent mean 'likelihood to see' in [0, 1] for an interface.

    Comprehensible information and personal relevance raise appeal over
    an indifferent 0.5 base; overload of hard-to-decode displays lowers
    it.  The baseline sits at the base by construction.
    """
    gain = (
        0.28 * interface.information * interface.comprehensibility
        + 0.12 * interface.relevance
    )
    loss = 0.30 * interface.overload * (1.0 - interface.comprehensibility)
    return float(np.clip(0.5 + gain - loss, 0.0, 1.0))


def _make_publisher(chaos_rate: float, chaos_seed: int):
    """The (possibly flaky) step that lands one interface's responses.

    Chaos off: the identity function.  Chaos on: each publish fails with
    probability ``chaos_rate`` from a seeded plan, retried with zero
    backoff; exhaustion degrades the condition to the indifferent
    midpoint and is counted in ``repro_fallbacks_total``.
    """
    if chaos_rate <= 0.0:
        return lambda name, measured, points, n_users: measured

    from repro import obs
    from repro.errors import InjectedFaultError, RetryExhaustedError
    from repro.resilience import FaultPlan, Retry

    plan = FaultPlan(failure_rate=chaos_rate, seed=chaos_seed)
    retry = Retry(max_attempts=4, base_delay=0.0, seed=chaos_seed)

    def count_retry(attempt, delay, error):
        obs.get_registry().counter(
            "repro_retries_total",
            "Retries scheduled by resilience policies per substrate.",
            labelnames=("substrate",),
        ).inc(substrate="herlocker_harness")

    def publish(name, measured, points, n_users):
        def attempt():
            fail, __ = plan.roll()
            if fail:
                raise InjectedFaultError(
                    f"chaos: flaky measurement channel for {name!r}"
                )
            return measured

        try:
            return retry.call(
                attempt, name=f"E1:{name}", on_retry=count_retry
            )
        except RetryExhaustedError:
            obs.get_registry().counter(
                "repro_fallbacks_total",
                "Fallback decisions: a component failed and the next "
                "was tried.",
                labelnames=("substrate", "reason"),
            ).inc(
                substrate="herlocker_harness", reason="RetryExhaustedError"
            )
            return np.full(n_users, (1.0 + points) / 2.0)

    return publish


def run_herlocker_study(
    n_users: int = 80,
    seed: int = 18,
    points: int = 7,
    chaos_rate: float = 0.0,
    chaos_seed: int = 0,
) -> StudyReport:
    """Within-subject study: every user rates all 21 interfaces (1–7).

    ``chaos_rate > 0`` makes the measurement channel flaky: collecting
    each interface's responses fails with that (seeded) probability and
    is retried under a :class:`~repro.resilience.Retry` policy; an
    interface whose retries exhaust degrades to an indifferent-midpoint
    response vector instead of aborting the study, so the report always
    comes back with all 21 conditions.  The simulated responses
    themselves are computed before the flaky publish step, so a chaos
    run that never exhausts its retries reproduces the chaos-free
    numbers exactly.
    """
    rng = np.random.default_rng(seed)
    user_bias = rng.normal(0.0, 0.5, size=n_users)
    publish = _make_publisher(chaos_rate, chaos_seed)
    responses: dict[str, np.ndarray] = {}
    for interface in INTERFACES:
        mean = 1.0 + _mean_appeal(interface) * (points - 1)
        raw = mean + user_bias + rng.normal(0.0, 0.8, size=n_users)
        measured = np.clip(np.round(raw), 1, points)
        responses[interface.name] = publish(
            interface.name, measured, points, n_users
        )

    conditions = [
        summarize(name, values.tolist())
        for name, values in responses.items()
    ]
    conditions.sort(key=lambda summary: -summary.mean)

    baseline_name = next(i.name for i in INTERFACES if i.is_baseline)
    best = conditions[0]
    histogram_name = INTERFACES[0].name
    baseline_mean = next(
        c.mean for c in conditions if c.name == baseline_name
    )
    below_baseline = [
        c.name for c in conditions if c.mean < baseline_mean - 0.05
    ]

    tests = [
        paired_t(
            responses[histogram_name].tolist(),
            responses[baseline_name].tolist(),
        )
    ]
    shape = (
        best.name == histogram_name and len(below_baseline) >= 2
    )
    return StudyReport(
        study_id="E1",
        title="21 explanation interfaces (Herlocker et al. 2000)",
        paper_claim=(
            "best response for a histogram of how similar users rated the "
            "item, good and bad ratings clustered; some interfaces fall "
            "below the no-explanation baseline"
        ),
        conditions=conditions,
        tests=tests,
        shape_holds=shape,
        finding=(
            f"top interface: {best.name} (mean {best.mean:.2f}); "
            f"{len(below_baseline)} interfaces score below baseline"
        ),
    )
