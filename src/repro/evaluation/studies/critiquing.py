"""Study E4 — conversational efficiency of critiquing (paper Section 3.6).

The survey's efficiency evidence: Thompson et al. [35] found "a
significant decrease in the total amount of time, and number of
interactions needed to find a satisfactory item" for conversational
recommenders; Reilly/McCarthy's dynamic compound critiques ("Less Memory
and Lower Resolution and Cheaper") let users "find what they want
quicker" than single-attribute critiques.

Design: simulated camera shoppers with a *hidden* ideal camera and only a
partially stated preference.  Three arms:

* **browse ranked list** — no conversation: scan the utility-ranked list
  until an acceptable camera appears;
* **unit critiques** — converse one attribute at a time;
* **unit + dynamic compound** — compound critiques are offered each cycle
  and taken when they cover several mismatched attributes at once.

Measured: simulated completion seconds and interaction cycles per arm.
Expected shape: compound < unit on cycles; both conversational arms beat
browsing on time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.domains import make_cameras
from repro.errors import ReproError
from repro.evaluation.criteria.efficiency import summarize_sessions
from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import independent_t, summarize
from repro.interaction.critiques import CompoundCritique, UnitCritique
from repro.interaction.session import CritiqueSession, InteractionLog, TimeModel
from repro.recsys.data import Item
from repro.recsys.knowledge import (
    Catalog,
    KnowledgeBasedRecommender,
    Preference,
    UserRequirements,
)

__all__ = ["Shopper", "run_critiquing_study"]

_NUMERIC_ATTRIBUTES = ("price", "resolution", "memory", "zoom", "weight")


@dataclass
class Shopper:
    """A simulated shopper with a hidden ideal camera.

    ``ideal`` holds target values per numeric attribute; satisfaction
    with an item is one minus the weighted normalised distance to the
    ideal.  The shopper accepts anything scoring at least
    ``accept_threshold``.
    """

    ideal: dict[str, float]
    weights: dict[str, float]
    catalog: Catalog
    accept_threshold: float = 0.82
    mismatch_tolerance: float = 0.12

    def utility(self, item: Item) -> float:
        """1 - weighted normalised distance to the hidden ideal."""
        total_weight = sum(self.weights.values())
        distance = 0.0
        for name, target in self.ideal.items():
            spec = self.catalog.spec(name)
            value = float(item.attribute(name, spec.low))  # type: ignore[arg-type]
            gap = abs(value - target) / max(spec.span, 1e-12)
            distance += self.weights[name] * gap
        return 1.0 - distance / total_weight

    def mismatches(self, item: Item) -> list[tuple[str, str, float]]:
        """(attribute, desired direction, weighted gap), worst first."""
        found = []
        for name, target in self.ideal.items():
            spec = self.catalog.spec(name)
            value = float(item.attribute(name, spec.low))  # type: ignore[arg-type]
            gap = (value - target) / max(spec.span, 1e-12)
            if abs(gap) < self.mismatch_tolerance:
                continue
            direction = "less" if gap > 0 else "more"
            found.append((name, direction, self.weights[name] * abs(gap)))
        found.sort(key=lambda entry: -entry[2])
        return found

    def pick_compound(
        self, offered: list[CompoundCritique], item: Item
    ) -> CompoundCritique | None:
        """The best offered compound: covers >= 2 desired directions,
        contradicts none."""
        desired = {
            (name, direction) for name, direction, __ in self.mismatches(item)
        }
        best: CompoundCritique | None = None
        best_cover = 0
        for compound in offered:
            cover = 0
            contradiction = False
            for part in compound.parts:
                key = (part.attribute, part.direction)
                opposite = (
                    part.attribute,
                    "less" if part.direction == "more" else "more",
                )
                if key in desired:
                    cover += 1
                elif opposite in desired:
                    contradiction = True
                    break
            if not contradiction and cover >= 2 and cover > best_cover:
                best = compound
                best_cover = cover
        return best


def _run_session(
    shopper: Shopper,
    recommender: KnowledgeBasedRecommender,
    requirements: UserRequirements,
    use_compound: bool,
    time_model: TimeModel,
    max_cycles: int = 30,
) -> InteractionLog:
    """One conversational session under one arm; returns its log."""
    session = CritiqueSession(
        recommender,
        requirements,
        offer_compound=use_compound,
        time_model=time_model,
    )
    tried: set[str] = set()
    while session.cycle <= max_cycles:
        reference = session.reference
        if reference is None:
            if not session.requirements.constraints:
                break
            session.relax()
            continue
        session.read_explanation()
        if shopper.utility(reference) >= shopper.accept_threshold:
            session.accept()
            break
        compound = (
            shopper.pick_compound(session.compound_critiques, reference)
            if use_compound
            else None
        )
        if compound is not None:
            session.critique(compound)
            continue
        mismatches = [
            (name, direction)
            for name, direction, __ in shopper.mismatches(reference)
            if (name, direction) not in tried
        ]
        if not mismatches:
            session.accept()
            break
        name, direction = mismatches[0]
        before = session.reference
        session.critique(UnitCritique(name, direction))
        if session.reference is before:
            # Critique was rolled back (dead end); do not retry it.
            tried.add((name, direction))
    if session.accepted is None and session.reference is not None:
        session.accept()
    return session.log


def _browse_log(
    shopper: Shopper,
    recommender: KnowledgeBasedRecommender,
    requirements: UserRequirements,
    time_model: TimeModel,
) -> InteractionLog:
    """The no-conversation control: scan the ranked list top-down."""
    log = InteractionLog()
    ranked = recommender.rank(requirements)
    seconds_base = time_model.per_cycle
    for position, (item, __, __) in enumerate(ranked, start=1):
        log.add(1, "scan", item.item_id, time_model.per_full_evaluation)
        if shopper.utility(item) >= shopper.accept_threshold:
            log.add(1, "accept", item.item_id, seconds_base)
            return log
    if ranked:
        log.add(1, "accept", ranked[0][0].item_id, seconds_base)
    return log


def _degraded_log(time_model: TimeModel) -> InteractionLog:
    """The log of a shopper whose session was lost to faults.

    Resilience guarantee: a study arm never loses a shopper — if even
    the fallback path fails, the shopper is recorded as one full manual
    evaluation and the study carries on.
    """
    log = InteractionLog()
    log.add(1, "degraded", "resilience fallback", time_model.per_full_evaluation)
    return log


def run_critiquing_study(
    n_shoppers: int = 40,
    n_cameras: int = 120,
    seed: int = 4,
    chaos_rate: float = 0.0,
    chaos_seed: int = 0,
) -> StudyReport:
    """Run the three-arm efficiency experiment on the camera world.

    ``chaos_rate > 0`` wraps the knowledge-based recommender in a
    seeded :class:`~repro.resilience.ChaosRecommender` injecting faults
    into ``rank``/``matching_items`` (the calls every conversational
    cycle makes), protected by a zero-backoff
    :class:`~repro.resilience.Retry`; a shopper whose session still dies
    degrades to a minimal log instead of aborting the study, so the
    report always covers every shopper in every arm.
    """
    dataset, catalog = make_cameras(n_items=n_cameras, seed=seed)
    recommender = KnowledgeBasedRecommender(catalog).fit(dataset)
    if chaos_rate > 0.0:
        from repro.resilience import ChaosRecommender, ResilientRecommender, Retry

        recommender = ResilientRecommender(
            ChaosRecommender(
                recommender,
                failure_rate=chaos_rate,
                seed=chaos_seed,
                fail_on=("rank", "matching_items"),
            ),
            retry=Retry(max_attempts=5, base_delay=0.0, seed=chaos_seed),
            protect=("rank", "matching_items"),
        )
    rng = np.random.default_rng(seed + 1)
    time_model = TimeModel()
    items = list(dataset.items.values())

    arms: dict[str, list[InteractionLog]] = {
        "browse ranked list": [],
        "unit critiques": [],
        "unit + dynamic compound": [],
    }
    for __ in range(n_shoppers):
        # The hidden ideal is an existing camera, jittered — reachable
        # but unknown to the system.
        anchor = items[int(rng.integers(0, len(items)))]
        ideal = {}
        weights = {}
        for name in _NUMERIC_ATTRIBUTES:
            spec = catalog.spec(name)
            value = float(anchor.attribute(name))  # type: ignore[arg-type]
            ideal[name] = float(
                np.clip(
                    value + rng.normal(0.0, 0.05) * spec.span,
                    spec.low,
                    spec.high,
                )
            )
            weights[name] = float(rng.uniform(0.5, 2.0))
        shopper = Shopper(ideal=ideal, weights=weights, catalog=catalog)
        # Partial initial statement: only the shopper's single most
        # important attribute is given as a directional preference.
        top_attribute = max(weights, key=lambda name: weights[name])
        requirements = UserRequirements(
            preferences=[Preference(attribute=top_attribute, weight=1.0)]
        )
        for arm, run in (
            (
                "browse ranked list",
                lambda: _browse_log(
                    shopper, recommender, requirements, time_model
                ),
            ),
            (
                "unit critiques",
                lambda: _run_session(
                    shopper, recommender, requirements, False, time_model
                ),
            ),
            (
                "unit + dynamic compound",
                lambda: _run_session(
                    shopper, recommender, requirements, True, time_model
                ),
            ),
        ):
            try:
                log = run()
            except ReproError:
                # One shopper's session died despite retries: degrade
                # that observation, never the whole study.
                obs.get_registry().counter(
                    "repro_fallbacks_total",
                    "Fallback decisions: a component failed and the "
                    "next was tried.",
                    labelnames=("substrate", "reason"),
                ).inc(substrate="critiquing_harness", reason="session_lost")
                log = _degraded_log(time_model)
            arms[arm].append(log)

    conditions = []
    seconds: dict[str, list[float]] = {}
    cycles: dict[str, list[float]] = {}
    for arm, logs in arms.items():
        seconds[arm] = [log.total_seconds for log in logs]
        cycles[arm] = [float(log.n_cycles) for log in logs]
        conditions.append(summarize(f"seconds: {arm}", seconds[arm]))
    for arm in ("unit critiques", "unit + dynamic compound"):
        conditions.append(summarize(f"cycles: {arm}", cycles[arm]))

    tests = [
        independent_t(
            cycles["unit critiques"], cycles["unit + dynamic compound"]
        ),
        independent_t(
            seconds["browse ranked list"], seconds["unit + dynamic compound"]
        ),
    ]
    mean_unit = float(np.mean(cycles["unit critiques"]))
    mean_compound = float(np.mean(cycles["unit + dynamic compound"]))
    mean_browse_seconds = float(np.mean(seconds["browse ranked list"]))
    mean_compound_seconds = float(
        np.mean(seconds["unit + dynamic compound"])
    )
    shape = (
        mean_compound < mean_unit
        and mean_compound_seconds < mean_browse_seconds
    )
    summaries = {
        arm: summarize_sessions(logs) for arm, logs in arms.items()
    }
    return StudyReport(
        study_id="E4",
        title="Conversational efficiency of critiquing",
        paper_claim=(
            "conversational recommenders reduce time and interactions to "
            "a satisfactory item; compound critiques beat unit critiques"
        ),
        conditions=conditions,
        tests=tests,
        shape_holds=shape,
        finding=(
            f"mean cycles — unit {mean_unit:.1f} vs compound "
            f"{mean_compound:.1f}; mean seconds — browse "
            f"{mean_browse_seconds:.0f} vs compound "
            f"{mean_compound_seconds:.0f}"
        ),
        extras={
            "sessions": "\n".join(
                f"{arm}: cycles={summary.mean_cycles:.1f} "
                f"seconds={summary.mean_seconds:.0f} "
                f"repairs={summary.mean_repairs:.1f}"
                for arm, summary in summaries.items()
            )
        },
    )
