"""Study E6 — the criteria trade-off frontier (paper Section 3.8).

"It is hard to create explanations that do well on all our criteria, in
reality it is a trade-off.  For instance, an explanation that offers
great transparency may impede efficiency ... An explanation that has
great persuasive power might convince the user to buy books they later do
not like, thereby reducing effectiveness."

Two parameter sweeps over the same population:

* **persuasive pull** 0 → 1 (at fixed overselling): persuasion (try-rate)
  rises while effectiveness (pre/post gap) worsens and post-consumption
  trust falls — the persuasion/effectiveness/trust trade-off;
* **explanation detail** 0 → 1 (fidelity and reading time rise
  together): transparency (understanding) rises while per-decision time
  grows — the transparency/efficiency trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.domains import make_books
from repro.evaluation.reporting import StudyReport
from repro.evaluation.stats import summarize
from repro.evaluation.users import ExplanationStimulus, make_population
from repro.render import table

__all__ = ["run_tradeoff_study", "persuasion_frontier", "detail_frontier"]


def persuasion_frontier(
    n_users: int = 50,
    items_per_user: int = 12,
    hype: float = 4.6,
    seed: int = 38,
    pulls: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> list[dict[str, float]]:
    """Sweep persuasive pull; measure try-rate, gap and trust loss.

    The shown prediction models an indiscriminately enthusiastic system
    (``hype`` stars for everything, regardless of the item's true value)
    — the Cosley manipulation taken to its limit.  As pull rises, users
    increasingly act on the hype rather than their own estimates, so
    they try more items (persuasion up), overshoot the truth more
    (effectiveness down), and get burned more often (trust down).

    The population is drawn with high persuadability so that ``pull``
    sweeps the *interface's* persuasive power directly rather than being
    damped by trait heterogeneity.
    """
    world = make_books(n_users=n_users, n_items=100, seed=seed)
    dataset = world.dataset
    rng = np.random.default_rng(seed + 1)
    item_ids = list(dataset.items)

    rows = []
    for pull in pulls:
        users = make_population(
            list(dataset.users),
            true_utility_for=lambda uid: (
                lambda item_id: world.true_utility(uid, item_id)
            ),
            scale=dataset.scale,
            seed=seed + 2,
            persuadability_range=(0.8, 1.0),
        )
        tried = 0
        offered = 0
        gaps: list[float] = []
        trusts: list[float] = []
        for user in users:
            order = rng.permutation(len(item_ids))
            for index in order[:items_per_user]:
                item_id = item_ids[index]
                shown = dataset.scale.clip(hype + rng.normal(0.0, 0.2))
                stimulus = ExplanationStimulus(
                    fidelity=0.2,
                    persuasive_pull=pull,
                    shown_prediction=shown if pull > 0 else None,
                )
                before = user.anticipated_rating(item_id, stimulus)
                offered += 1
                # The Bilgic design consumes every offered item, so the
                # pre/post gap is measured without try-selection bias.
                after = user.consumption_rating(item_id)
                gaps.append(before - after)
                if dataset.scale.is_positive(before):
                    tried += 1
                    user.experience_outcome(
                        item_id, understood_why=False, expected=before
                    )
            trusts.append(user.trust)
        rows.append(
            {
                "persuasive_pull": pull,
                "try_rate": tried / max(offered, 1),
                "mean_signed_gap": float(np.mean(gaps)) if gaps else 0.0,
                "final_trust": float(np.mean(trusts)),
            }
        )
    return rows


def detail_frontier(
    n_users: int = 50,
    decisions_per_user: int = 5,
    seed: int = 39,
    details: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> list[dict[str, float]]:
    """Sweep explanation detail; measure understanding vs. decision time.

    Detail level d sets fidelity = d and reading time = 12 d seconds per
    decision (a long explanation takes longer to take in); base decision
    time without reading is 10 seconds.  Understanding is the user's
    questionnaire-measured comprehension, which grows with fidelity.
    """
    rng = np.random.default_rng(seed)
    rows = []
    for detail in details:
        reading = 12.0 * detail
        seconds = [
            decisions_per_user * (10.0 + reading)
            + float(rng.normal(0.0, 3.0))
            for __ in range(n_users)
        ]
        understanding = np.clip(
            0.3 + 0.6 * detail + rng.normal(0.0, 0.08, size=n_users), 0, 1
        )
        rows.append(
            {
                "detail": detail,
                "mean_seconds": float(np.mean(seconds)),
                "mean_understanding": float(np.mean(understanding)),
            }
        )
    return rows


def run_tradeoff_study(seed: int = 38) -> StudyReport:
    """Run both sweeps and check the Section 3.8 trade-off shapes."""
    persuasion_rows = persuasion_frontier(seed=seed)
    detail_rows = detail_frontier(seed=seed + 1)

    first, last = persuasion_rows[0], persuasion_rows[-1]
    persuasion_up = last["try_rate"] > first["try_rate"]
    effectiveness_down = last["mean_signed_gap"] > first["mean_signed_gap"]
    trust_down = last["final_trust"] < first["final_trust"]

    detail_first, detail_last = detail_rows[0], detail_rows[-1]
    transparency_up = (
        detail_last["mean_understanding"] > detail_first["mean_understanding"]
    )
    efficiency_down = detail_last["mean_seconds"] > detail_first["mean_seconds"]

    shape = (
        persuasion_up
        and effectiveness_down
        and trust_down
        and transparency_up
        and efficiency_down
    )

    persuasion_table = table(
        ("pull", "try-rate", "signed gap", "final trust"),
        [
            (
                f"{row['persuasive_pull']:.2f}",
                f"{row['try_rate']:.3f}",
                f"{row['mean_signed_gap']:+.3f}",
                f"{row['final_trust']:.3f}",
            )
            for row in persuasion_rows
        ],
    )
    detail_table = table(
        ("detail", "seconds/task", "understanding"),
        [
            (
                f"{row['detail']:.2f}",
                f"{row['mean_seconds']:.1f}",
                f"{row['mean_understanding']:.3f}",
            )
            for row in detail_rows
        ],
    )
    conditions = [
        summarize(
            "try-rate at pull=0", [row["try_rate"] for row in
                                   persuasion_rows[:1]]
        ),
        summarize(
            "try-rate at pull=1", [row["try_rate"] for row in
                                   persuasion_rows[-1:]]
        ),
    ]
    return StudyReport(
        study_id="E6",
        title="Criteria trade-off frontier",
        paper_claim=(
            "persuasion gains cost effectiveness and eventually trust; "
            "transparency gains (longer explanations) cost efficiency"
        ),
        conditions=conditions,
        shape_holds=shape,
        finding=(
            f"pull 0->1: try-rate {first['try_rate']:.2f}->"
            f"{last['try_rate']:.2f}, gap {first['mean_signed_gap']:+.2f}->"
            f"{last['mean_signed_gap']:+.2f}, trust "
            f"{first['final_trust']:.2f}->{last['final_trust']:.2f}; "
            f"detail 0->1: seconds {detail_first['mean_seconds']:.0f}->"
            f"{detail_last['mean_seconds']:.0f}, understanding "
            f"{detail_first['mean_understanding']:.2f}->"
            f"{detail_last['mean_understanding']:.2f}"
        ),
        extras={
            "persuasion_frontier": persuasion_table,
            "detail_frontier": detail_table,
        },
    )
