"""Evaluation methodology (paper Section 3) over simulated users."""

from repro.evaluation.harness import (
    ExplanationConfiguration,
    evaluate_configuration,
)
from repro.evaluation.instruments import (
    LikertItem,
    Questionnaire,
    QuestionnaireResponse,
    WalkthroughTally,
    ohanian_trust_scale,
    satisfaction_scale,
    transparency_scale,
)
from repro.evaluation.reporting import StudyReport
from repro.evaluation.scorecard import (
    GOAL_PROFILES,
    CriteriaScorecard,
    compare_scorecards,
)
from repro.evaluation.stats import (
    ConditionSummary,
    TestResult,
    bootstrap_ci,
    cohens_d,
    independent_t,
    one_sample_t,
    paired_t,
    summarize,
    wilcoxon_signed_rank,
)
from repro.evaluation.users import (
    ExplanationStimulus,
    SimulatedUser,
    make_population,
)

__all__ = [
    "SimulatedUser",
    "ExplanationStimulus",
    "make_population",
    "Questionnaire",
    "QuestionnaireResponse",
    "LikertItem",
    "ohanian_trust_scale",
    "satisfaction_scale",
    "transparency_scale",
    "WalkthroughTally",
    "StudyReport",
    "CriteriaScorecard",
    "ExplanationConfiguration",
    "evaluate_configuration",
    "GOAL_PROFILES",
    "compare_scorecards",
    "TestResult",
    "ConditionSummary",
    "paired_t",
    "independent_t",
    "one_sample_t",
    "wilcoxon_signed_rank",
    "bootstrap_ci",
    "cohens_d",
    "summarize",
]
