"""Questionnaire instruments (paper Sections 3.3, 3.7).

"Questionnaires can be used to determine the degree of trust a user
places in a system.  An overview of trust questionnaires can be found in
[26] which also suggests and validates a five dimensional scale of
trust."  This module implements Likert instruments generically and the
Ohanian-style five-dimension trust scale specifically, plus a
satisfaction questionnaire and the walk-through tally sheet of
Section 3.7.

Simulated respondents answer from a latent construct value plus response
noise — the standard psychometric generating model — so studies can
administer the same instrument to every arm.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.errors import EvaluationError

__all__ = [
    "LikertItem",
    "Questionnaire",
    "QuestionnaireResponse",
    "ohanian_trust_scale",
    "satisfaction_scale",
    "transparency_scale",
    "WalkthroughTally",
]


@dataclass(frozen=True)
class LikertItem:
    """One Likert-scale questionnaire item.

    ``reverse_coded`` items phrase the construct negatively; scoring
    flips them back.
    """

    prompt: str
    dimension: str
    reverse_coded: bool = False


@dataclass(frozen=True)
class QuestionnaireResponse:
    """One respondent's answers, keyed like the questionnaire's items."""

    answers: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.answers)


class Questionnaire:
    """A Likert questionnaire with latent-construct simulation support."""

    def __init__(
        self,
        name: str,
        items: Sequence[LikertItem],
        points: int = 7,
    ) -> None:
        if not items:
            raise EvaluationError("a questionnaire needs at least one item")
        if points < 2:
            raise EvaluationError(f"points must be >= 2, got {points}")
        self.name = name
        self.items = list(items)
        self.points = points

    def administer(
        self,
        latent: float,
        rng: np.random.Generator,
        response_noise: float = 0.6,
    ) -> QuestionnaireResponse:
        """Simulate one respondent with latent construct value in [0, 1].

        Each item's answer is the latent value mapped onto the Likert
        range plus Gaussian response noise, rounded and clipped; reverse
        coded items are answered flipped.
        """
        if not 0.0 <= latent <= 1.0:
            raise EvaluationError(f"latent must be in [0, 1], got {latent}")
        answers = []
        for item in self.items:
            target = latent if not item.reverse_coded else 1.0 - latent
            raw = 1.0 + target * (self.points - 1)
            noisy = raw + rng.normal(0.0, response_noise)
            answers.append(int(np.clip(round(noisy), 1, self.points)))
        return QuestionnaireResponse(answers=tuple(answers))

    def score(self, response: QuestionnaireResponse) -> float:
        """Mean score in [0, 1], reverse-coded items flipped back."""
        if len(response) != len(self.items):
            raise EvaluationError(
                f"response has {len(response)} answers, expected "
                f"{len(self.items)}"
            )
        total = 0.0
        for item, answer in zip(self.items, response.answers):
            unit = (answer - 1) / (self.points - 1)
            total += (1.0 - unit) if item.reverse_coded else unit
        return total / len(self.items)

    def dimension_scores(
        self, response: QuestionnaireResponse
    ) -> dict[str, float]:
        """Per-dimension mean scores in [0, 1]."""
        sums: dict[str, list[float]] = {}
        for item, answer in zip(self.items, response.answers):
            unit = (answer - 1) / (self.points - 1)
            if item.reverse_coded:
                unit = 1.0 - unit
            sums.setdefault(item.dimension, []).append(unit)
        return {
            dimension: float(np.mean(values))
            for dimension, values in sums.items()
        }


def ohanian_trust_scale() -> Questionnaire:
    """A five-dimension trust scale after Ohanian (paper ref [26]).

    Ohanian validated semantic-differential scales for perceived
    trustworthiness; the five trust anchors are dependable / honest /
    reliable / sincere / trustworthy.  The paper warns the original
    validation covered celebrity endorsements, so "additional validation
    may be required" — which is why this instrument is one signal among
    several in the trust evaluator, not the only one.
    """
    anchors = ("dependable", "honest", "reliable", "sincere", "trustworthy")
    return Questionnaire(
        name="ohanian-trust",
        items=[
            LikertItem(
                prompt=f"This recommender is {anchor}.",
                dimension=anchor,
            )
            for anchor in anchors
        ],
    )


def satisfaction_scale() -> Questionnaire:
    """Satisfaction questionnaire (paper Section 3.7)."""
    return Questionnaire(
        name="satisfaction",
        items=[
            LikertItem("The system is fun to use.", "enjoyment"),
            LikertItem("I would prefer this system with explanations.",
                       "preference"),
            LikertItem("The system is easy to use.", "ease"),
            LikertItem("Using the system is tedious.", "enjoyment",
                       reverse_coded=True),
        ],
    )


def transparency_scale() -> Questionnaire:
    """Understanding-of-personalization questionnaire (Section 3.1)."""
    return Questionnaire(
        name="transparency",
        items=[
            LikertItem(
                "I understand why the system recommends what it does.",
                "understanding",
            ),
            LikertItem(
                "I understand what my past behaviour changes in the system.",
                "understanding",
            ),
            LikertItem(
                "The system's reasoning is a mystery to me.",
                "understanding",
                reverse_coded=True,
            ),
        ],
    )


@dataclass
class WalkthroughTally:
    """The qualitative walk-through tally sheet of Section 3.7.

    "...the ratio of positive to negative comments; the number of times
    the evaluator was frustrated; the number of times the evaluator was
    delighted; the number of times and where the evaluator worked around
    a usability problem."
    """

    positive_comments: int = 0
    negative_comments: int = 0
    frustrations: int = 0
    delights: int = 0
    workarounds: list[str] = field(default_factory=list)

    def comment_ratio(self) -> float:
        """Positive-to-negative comment ratio (inf-safe)."""
        if self.negative_comments == 0:
            return float(self.positive_comments)
        return self.positive_comments / self.negative_comments

    def summary(self) -> dict[str, float]:
        """All tallies as a flat mapping."""
        return {
            "positive_comments": float(self.positive_comments),
            "negative_comments": float(self.negative_comments),
            "comment_ratio": self.comment_ratio(),
            "frustrations": float(self.frustrations),
            "delights": float(self.delights),
            "workarounds": float(len(self.workarounds)),
        }
