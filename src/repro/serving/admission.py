"""Admission control: decide at the door, not in the queue.

Two pluggable mechanisms, applied at different points of a request's
life:

* :class:`TokenBucket` — a classic rate limiter checked at **submit**
  time.  Sustained arrival above ``rate`` requests/second is rejected
  with :class:`~repro.errors.RejectedError` carrying a computed
  ``retry_after_seconds`` hint, instead of letting a burst pile up in
  the queue and time out for everyone.
* :class:`DeadlineAwareShedder` — adaptive load shedding checked at
  **dequeue** time, when the queue wait is known.  A request whose wait
  has already consumed its deadline budget — or whose *remaining*
  budget is smaller than the shedder's running estimate of service time
  — is dropped before any substrate work is spent on it.  Shedding a
  doomed request early is what keeps p99 bounded for the admitted ones.

Both are deterministic under test: clocks are injectable, and the
service-time estimate is a plain exponentially weighted moving average
with no hidden randomness.
"""

from __future__ import annotations

import abc
import threading
import time
from collections.abc import Callable

from repro.errors import RejectedError

__all__ = ["AdmissionPolicy", "TokenBucket", "DeadlineAwareShedder"]


class AdmissionPolicy(abc.ABC):
    """Submit-time gate: raise :class:`RejectedError` or let through."""

    @abc.abstractmethod
    def admit(self) -> None:
        """Raise :class:`~repro.errors.RejectedError` to refuse entry."""


class TokenBucket(AdmissionPolicy):
    """Token-bucket rate limiter with a retry-after hint.

    ``rate`` tokens are refilled per second up to ``burst``; each
    admitted request spends one.  An empty bucket rejects with
    ``reason="rate_limited"`` and ``retry_after_seconds`` set to the
    exact time until the next token exists — the client can back off
    precisely instead of guessing.
    """

    def __init__(
        self,
        rate: float,
        burst: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0 tokens/second, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1, int(rate)))
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        """Tokens available right now."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def admit(self) -> None:
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return
            retry_after = (1.0 - self._tokens) / self.rate
        raise RejectedError(
            reason="rate_limited", retry_after_seconds=retry_after
        )


class DeadlineAwareShedder:
    """Drop queued requests whose deadline budget is already lost.

    The decision at dequeue time, given a request that waited
    ``queue_wait`` seconds of a ``budget``-second deadline:

    * budget spent (``queue_wait >= budget``) → shed, reason
      ``"deadline"``;
    * remaining budget below the EWMA service-time estimate scaled by
      ``safety_factor`` → shed, reason ``"predicted_timeout"`` — the
      adaptive part: the faster the backend actually is, the closer to
      the wire a request may be admitted.

    ``observe(service_seconds)`` feeds the estimate after every
    completed request; with no observations yet the shedder only
    enforces the hard budget.
    """

    def __init__(
        self,
        alpha: float = 0.2,
        safety_factor: float = 1.0,
        initial_estimate: float | None = None,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if safety_factor < 0.0:
            raise ValueError(
                f"safety_factor must be >= 0, got {safety_factor}"
            )
        self.alpha = alpha
        self.safety_factor = safety_factor
        self._lock = threading.Lock()
        self._estimate = initial_estimate

    @property
    def estimated_service_seconds(self) -> float | None:
        """Current EWMA service-time estimate (``None`` before data)."""
        with self._lock:
            return self._estimate

    def observe(self, service_seconds: float) -> None:
        """Feed one completed request's service time into the EWMA."""
        value = max(0.0, float(service_seconds))
        with self._lock:
            if self._estimate is None:
                self._estimate = value
            else:
                self._estimate += self.alpha * (value - self._estimate)

    def shed_reason(
        self, queue_wait: float, budget: float | None
    ) -> str | None:
        """Why this request should be shed, or ``None`` to proceed."""
        if budget is None:
            return None
        remaining = budget - queue_wait
        if remaining <= 0.0:
            return "deadline"
        with self._lock:
            estimate = self._estimate
        if (
            estimate is not None
            and remaining < estimate * self.safety_factor
        ):
            return "predicted_timeout"
        return None
