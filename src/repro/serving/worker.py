"""Shard worker process: one shard's serving loop and its wire protocol.

A worker is a child process that owns *one shard*: its own world
(dataset + pipelines), its own :class:`~repro.cache.ShardedTTLCache`,
its own :class:`~repro.eventlog.EventLog` directory, and an internal
:class:`~repro.serving.server.RecommendationServer` gated by the
existing recovery-readiness machinery (``recovery=`` replays the shard's
log before the shard admits anyone).  The parent talks to it over two
unidirectional pipes with picklable tuples, every one built by a
:mod:`repro.serving.wire` constructor and validated with
:func:`~repro.serving.wire.parse_command` on receipt (a malformed
command kills the worker — crash-only — and the supervisor restarts
it):

parent → worker (command pipe)::

    ("req",  req_id, user_id, n, lane, deadline_seconds)
    ("rate", req_id, user_id, item_id, value)
    ("inval", user_id)          # cross-shard invalidation bus delivery
    ("stop",)                   # graceful drain

worker → parent (event pipe)::

    ("hb", payload)             # liveness heartbeat + health snapshot
    ("ready", incarnation, info)
    ("res", req_id, payload)    # serve / rate response
    ("recovery-failed", message)
    ("stopped", drain_summary)

The worker is **crash-only**: it catches taxonomy errors it can answer
for (a rejected request, a failed append) and lets anything unexpected
kill the process — the supervisor's restart-and-replay path is the
recovery story, not in-process heroics.  A genuine ``kill -9`` needs no
cooperation: the parent sees EOF on the event pipe and a dead process.

Everything here must stay picklable under the ``spawn`` start method:
:class:`ShardSpec` crosses the process boundary, so ``world_factory``
must be a module-level callable.
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from multiprocessing.connection import Connection

from repro.cache import ShardedTTLCache
from repro.errors import (
    DataError,
    EventLogError,
    RejectedError,
    ServingError,
)
from repro.eventlog import EventLog, replay
from repro.eventlog.events import InteractionEvent
from repro.interaction import RatingChannel
from repro.resilience.chaos import ShardFaultPlan, ShardFaultSchedule
from repro.serving import wire
from repro.serving.server import RecommendationServer, ServeResult

__all__ = [
    "ShardSpec",
    "WireRecommendation",
    "movie_world",
    "result_to_wire",
    "shard_main",
    "to_wire",
]


@dataclass(frozen=True)
class WireRecommendation:
    """One recommendation flattened for the pipe.

    The explanation is carried as its final render, not the object
    graph: the byte-identity acceptance check (“a recovered shard
    answers exactly what it answered before the crash”) compares these
    strings, and a string survives pickling without depending on every
    explanation class being stable under it.
    """

    item_id: str
    score: float
    degraded: bool
    render: str | None


def to_wire(recommendations: tuple) -> tuple[WireRecommendation, ...]:
    """Flatten a pipeline's recommendation batch for the pipe."""
    wired = []
    for rec in recommendations:
        explanation = getattr(rec, "explanation", None)
        wired.append(
            WireRecommendation(
                item_id=rec.item_id,
                score=float(rec.score),
                degraded=bool(getattr(rec, "degraded", False)),
                render=(
                    explanation.render(include_details=True)
                    if explanation is not None
                    else None
                ),
            )
        )
    return tuple(wired)


def result_to_wire(result: ServeResult) -> dict:
    """A :class:`ServeResult` as a picklable payload dict."""
    return {
        "outcome": result.outcome,
        "recommendations": to_wire(result.recommendations),
        "shed_reason": result.shed_reason,
        "error": result.error,
        "queue_wait_s": result.queue_wait_s,
        "service_s": result.service_s,
        "cached": result.cached,
    }


def movie_world(seed: int) -> tuple[object, dict[str, object]]:
    """The default shard world: a deterministic movie catalog.

    Every shard builds the *same* catalog from the same seed — sharding
    partitions users, not items — so any shard can compute for any user
    and two workers that replayed the same log answer byte-identically.
    Returns ``(dataset, lanes)``.
    """
    from repro.core import ExplainedRecommender, NeighborHistogramExplainer
    from repro.domains import make_movies
    from repro.recsys import UserBasedCF

    world = make_movies(n_users=40, n_items=80, seed=seed, density=0.25)
    pipeline = ExplainedRecommender(
        UserBasedCF(), NeighborHistogramExplainer()
    ).fit(world.dataset)
    return world.dataset, {"default": pipeline}


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to boot one shard (picklable)."""

    shard_id: int
    incarnation: int
    name: str
    log_dir: str
    world_factory: Callable[[int], tuple[object, dict[str, object]]]
    seed: int = 7
    workers: int = 2
    queue_size: int = 32
    default_deadline_seconds: float | None = None
    cache_capacity: int = 512
    cache_ttl_seconds: float = 60.0
    heartbeat_seconds: float = 0.05
    drain_seconds: float = 2.0
    fsync_policy: str = "always"
    fault_plan: ShardFaultPlan | None = None

    @property
    def shard_name(self) -> str:
        """The worker's display name (``fleet-shard-2``)."""
        return f"{self.name}-shard-{self.shard_id}"


def _absorbing_substrates(lanes: Mapping[str, object]) -> list[object]:
    """The lane substrates that can absorb rating events incrementally."""
    substrates = []
    for pipeline in lanes.values():
        recommender = getattr(pipeline, "recommender", None)
        if recommender is not None and hasattr(recommender, "absorb"):
            substrates.append(recommender)
    return substrates


def _health_payload(server: RecommendationServer, completed: int) -> dict:
    """The snapshot a heartbeat carries (fleet ``health()`` raw material)."""
    health = server.health()
    return {
        "status": health.status,
        "ready": health.ready,
        "queue_depth": health.queue_depth,
        "inflight": health.inflight,
        "breaker_states": dict(health.breaker_states),
        "bulkhead_active": dict(health.bulkhead_active),
        "completed": completed,
    }


def _send(evt: Connection, message: tuple) -> bool:
    """Best-effort send to the parent; ``False`` means the parent died."""
    try:
        evt.send(message)
    except (BrokenPipeError, OSError):
        return False
    return True


def _apply_fault(schedule: ShardFaultSchedule | None) -> None:
    """Roll and apply the next injected fault, if any."""
    if schedule is None:
        return
    action = schedule.on_request()
    if action == "kill":
        # A genuine kill -9 of ourselves: no flush, no goodbye.  The
        # parent learns about it exactly the way it learns about an OOM
        # kill — EOF on the event pipe and a dead process.
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        # Stall inside the serving loop: the process stays alive but
        # heartbeats stop, which is what the supervisor's stale-
        # heartbeat detection exists for.
        time.sleep(schedule.hang_seconds)


def _serve_payload(
    server: RecommendationServer,
    user_id: str,
    n: int,
    lane: str | None,
    deadline_seconds: float | None,
) -> dict:
    try:
        result = server.serve(
            user_id, n=n, lane=lane, deadline_seconds=deadline_seconds
        )
    except RejectedError as error:
        # Submit-time backpressure inside the shard (queue full, still
        # recovering): carried distinctly so the parent re-raises it as
        # RejectedError, keeping the retry-after contract end to end.
        return {
            "rejected": True,
            "reason": error.reason,
            "retry_after": error.retry_after_seconds,
        }
    except ServingError as error:
        return {
            "outcome": "failed",
            "recommendations": (),
            "shed_reason": None,
            "error": f"{type(error).__name__}: {error}",
            "queue_wait_s": 0.0,
            "service_s": 0.0,
            "cached": False,
        }
    return result_to_wire(result)


def _rate_payload(
    channel: RatingChannel, user_id: str, item_id: str, value: float
) -> dict:
    try:
        event: InteractionEvent = channel.rate(user_id, item_id, value)
    except (DataError, EventLogError) as error:
        # Explicitly NOT acked, so the parent must not invalidate other
        # shards or report durability to the client.  EventLogError:
        # the append failed before any mutation.  DataError (unknown
        # item, bad value): a malformed client request must not crash
        # the shard — and replay skips such events by the same rule.
        return {
            "acked": False,
            "error": f"{type(error).__name__}: {error}",
        }
    return {"acked": True, "sequence": event.sequence, "kind": event.kind}


def shard_main(spec: ShardSpec, cmd: Connection, evt: Connection) -> None:
    """Worker process entry point: boot the shard, then serve the pipes.

    Boot order is the durability story: fault schedule (slow-start
    injection happens *before* any heartbeat), world build, cache, event
    log, rating channel wired to journal-before-ack, then an internal
    :class:`RecommendationServer` whose ``recovery=`` hook replays the
    shard's log — the worker heartbeats *during* replay (so a hung
    recovery is detectable) and announces ``("ready", ...)`` only once
    ``await_recovery`` succeeds.
    """
    schedule = (
        spec.fault_plan.schedule(spec.shard_id, spec.incarnation)
        if spec.fault_plan is not None
        else None
    )
    if schedule is not None and schedule.startup_delay > 0.0:
        time.sleep(schedule.startup_delay)
    dataset, lanes = spec.world_factory(spec.seed)
    cache = ShardedTTLCache(
        name=f"{spec.shard_name}-cache",
        capacity=spec.cache_capacity,
        ttl_seconds=spec.cache_ttl_seconds,
    )
    log = EventLog(
        spec.log_dir,
        fsync_policy=spec.fsync_policy,
        name=spec.shard_name,
    )
    substrates = _absorbing_substrates(lanes)
    channel = RatingChannel(dataset, event_log=log)
    channel.subscribe(lambda event: cache.invalidate_user(event.user_id))
    for substrate in substrates:
        channel.subscribe(substrate.absorb)

    def recovery() -> object:
        return replay(log, dataset, caches=[cache], substrates=substrates)

    server = RecommendationServer(
        lanes,
        workers=spec.workers,
        queue_size=spec.queue_size,
        default_deadline_seconds=spec.default_deadline_seconds,
        cache=cache,
        recovery=recovery,
        name=spec.shard_name,
    )
    completed = 0
    ready_sent = False
    last_heartbeat = 0.0
    alive = True
    while alive:
        if not ready_sent:
            try:
                if server.await_recovery(timeout=0):
                    ready_sent = True
                    alive = _send(
                        evt,
                        wire.ready_message(
                            spec.incarnation,
                            {
                                "recovery": getattr(
                                    server.recovery_report, "as_dict", dict
                                )(),
                                "next_sequence": log.next_sequence,
                            },
                        ),
                    )
            except ServingError as error:
                # Failed recovery pins the shard unready; tell the
                # parent (which marks the shard failed instead of
                # crash-looping a replay that cannot succeed) and die.
                _send(evt, wire.recovery_failed_message(str(error)))
                break
        now = time.monotonic()
        if now - last_heartbeat >= spec.heartbeat_seconds:
            last_heartbeat = now
            alive = _send(
                evt, wire.hb_message(_health_payload(server, completed))
            )
            if not alive:
                break
        if not cmd.poll(spec.heartbeat_seconds):
            continue
        try:
            message = cmd.recv()
        except (EOFError, OSError):
            break  # the parent is gone; nothing left to serve
        # Crash-only: a malformed command raises WireProtocolError and
        # kills the worker; the supervisor restarts it from the log.
        message = wire.parse_command(message)
        kind = message[0]
        if kind == "req":
            __, req_id, user_id, n, lane, deadline_seconds = message
            _apply_fault(schedule)
            payload = _serve_payload(
                server, user_id, n, lane, deadline_seconds
            )
            completed += 1
            alive = _send(evt, wire.res_message(req_id, payload))
        elif kind == "rate":
            __, req_id, user_id, item_id, value = message
            _apply_fault(schedule)
            alive = _send(
                evt,
                wire.res_message(
                    req_id, _rate_payload(channel, user_id, item_id, value)
                ),
            )
        elif kind == "inval":
            cache.invalidate_user(message[1])
        elif kind == "stop":
            drain = server.close(spec.drain_seconds)
            log.close()
            _send(
                evt,
                wire.stopped_message(
                    {
                        "completed_total": drain.completed_total,
                        "shed_queued": drain.shed_queued,
                        "workers_timed_out": drain.workers_timed_out,
                        "duration_s": drain.duration_s,
                    }
                ),
            )
            break
