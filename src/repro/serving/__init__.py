"""Overload-robust concurrent serving for explained recommendations.

PR 2's resilience layer protects the pipeline against *component
failures*; this package protects it against *load*.  The paper's
efficiency aim (Section 3.6) is about how quickly users get their
recommendations and explanations — an overloaded server that queues
unboundedly fails that aim for everyone, while one that sheds the
requests it cannot serve in time degrades for a few and stays fast for
the rest.  Five mechanisms, composed in
:class:`~repro.serving.server.RecommendationServer`:

* **bounded admission queue** — a full queue rejects with
  :class:`~repro.errors.RejectedError` and a retry-after hint
  (explicit backpressure, never unbounded buffering);
* **admission policies** (``repro.serving.admission``) — token-bucket
  rate limiting at submit time, adaptive deadline-aware shedding at
  dequeue time (drop requests whose queue wait already spent their
  :class:`~repro.resilience.policies.Deadline`-style budget);
* **bulkheads** (``repro.serving.bulkhead``) — per-substrate
  semaphore-bounded concurrency, so one slow substrate cannot starve
  the others;
* **health probes** (``repro.serving.health``) — liveness/readiness
  derived from breaker states, queue depth, and drain state;
* **graceful drain** — :meth:`RecommendationServer.close` stops
  admission, completes in-flight requests within a drain deadline,
  sheds the rest with ``reason="draining"``, and reports what it did.

Observability: ``repro_requests_total{outcome}``, ``repro_queue_depth``,
``repro_shed_total{reason}``, ``repro_inflight``,
``repro_serve_seconds{outcome}`` and ``serving.*`` trace events.
Surfaced via ``python -m repro serve`` (closed-loop synthetic traffic,
``repro.serving.driver``) and the ``benchmarks/run_bench.py`` load
sweep.  See ``docs/serving.md``.
"""

from repro.serving.admission import (
    AdmissionPolicy,
    DeadlineAwareShedder,
    TokenBucket,
)
from repro.serving.bulkhead import Bulkhead
from repro.serving.driver import TrafficReport, run_traffic
from repro.serving.health import (
    HealthReport,
    collect_breaker_states,
    derive_status,
)
from repro.serving.server import (
    OUTCOMES,
    DrainReport,
    RecommendationServer,
    ServeRequest,
    ServeResult,
    register_serving_metrics,
)

__all__ = [
    "AdmissionPolicy",
    "TokenBucket",
    "DeadlineAwareShedder",
    "Bulkhead",
    "HealthReport",
    "collect_breaker_states",
    "derive_status",
    "RecommendationServer",
    "ServeRequest",
    "ServeResult",
    "DrainReport",
    "OUTCOMES",
    "register_serving_metrics",
    "TrafficReport",
    "run_traffic",
]
