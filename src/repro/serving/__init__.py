"""Overload-robust concurrent serving for explained recommendations.

PR 2's resilience layer protects the pipeline against *component
failures*; this package protects it against *load*.  The paper's
efficiency aim (Section 3.6) is about how quickly users get their
recommendations and explanations — an overloaded server that queues
unboundedly fails that aim for everyone, while one that sheds the
requests it cannot serve in time degrades for a few and stays fast for
the rest.  Five mechanisms, composed in
:class:`~repro.serving.server.RecommendationServer`:

* **bounded admission queue** — a full queue rejects with
  :class:`~repro.errors.RejectedError` and a retry-after hint
  (explicit backpressure, never unbounded buffering);
* **admission policies** (``repro.serving.admission``) — token-bucket
  rate limiting at submit time, adaptive deadline-aware shedding at
  dequeue time (drop requests whose queue wait already spent their
  :class:`~repro.resilience.policies.Deadline`-style budget);
* **bulkheads** (``repro.serving.bulkhead``) — per-substrate
  semaphore-bounded concurrency, so one slow substrate cannot starve
  the others;
* **health probes** (``repro.serving.health``) — liveness/readiness
  derived from breaker states, queue depth, and drain state;
* **graceful drain** — :meth:`RecommendationServer.close` stops
  admission, completes in-flight requests within a drain deadline,
  sheds the rest with ``reason="draining"``, and reports what it did.

On top of the single-process server sits the sharded topology
(``repro.serving.sharding`` / ``supervisor`` / ``router`` /
``worker``): :class:`~repro.serving.sharding.ShardedServer` partitions
users across N worker *processes* by consistent hashing, each shard
owning its own cache and event-log directory; a supervisor thread
detects crashed/hung workers (including ``kill -9``) and restarts them
through the recovery-readiness gate — the replacement replays its
shard's log before re-admitting traffic — while the router rejects with
retry-after hints or serves parent-local degraded answers so callers
never hang.  See ``docs/sharding.md``.

Observability: ``repro_requests_total{outcome}``, ``repro_queue_depth``,
``repro_shed_total{reason}``, ``repro_inflight``,
``repro_serve_seconds{outcome}`` and ``serving.*`` trace events.
Surfaced via ``python -m repro serve`` (closed-loop synthetic traffic,
``repro.serving.driver``) and the ``benchmarks/run_bench.py`` load
sweep.  See ``docs/serving.md``.
"""

from repro.serving.admission import (
    AdmissionPolicy,
    DeadlineAwareShedder,
    TokenBucket,
)
from repro.serving.bulkhead import Bulkhead
from repro.serving.driver import TrafficReport, run_traffic
from repro.serving.health import (
    HealthReport,
    collect_breaker_states,
    derive_status,
)
from repro.serving.router import HashRing, ShardRouter
from repro.serving.server import (
    OUTCOMES,
    DrainReport,
    RecommendationServer,
    ServeRequest,
    ServeResult,
    register_serving_metrics,
)
from repro.serving.sharding import (
    STATE_CODES,
    FleetDrainReport,
    FleetHealthReport,
    RebalanceReport,
    ShardedServer,
    ShardHealth,
    register_shard_metrics,
)
from repro.serving.supervisor import (
    TERMINAL_STATES,
    ShardHandle,
    ShardSupervisor,
)
from repro.serving.worker import (
    ShardSpec,
    WireRecommendation,
    movie_world,
    shard_main,
)

__all__ = [
    "AdmissionPolicy",
    "TokenBucket",
    "DeadlineAwareShedder",
    "Bulkhead",
    "HealthReport",
    "collect_breaker_states",
    "derive_status",
    "RecommendationServer",
    "ServeRequest",
    "ServeResult",
    "DrainReport",
    "OUTCOMES",
    "register_serving_metrics",
    "TrafficReport",
    "run_traffic",
    "HashRing",
    "ShardRouter",
    "ShardedServer",
    "ShardHealth",
    "FleetHealthReport",
    "FleetDrainReport",
    "RebalanceReport",
    "STATE_CODES",
    "register_shard_metrics",
    "ShardHandle",
    "ShardSupervisor",
    "TERMINAL_STATES",
    "ShardSpec",
    "WireRecommendation",
    "movie_world",
    "shard_main",
]
