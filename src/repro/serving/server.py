"""The overload-robust recommendation server.

:class:`RecommendationServer` puts an explained-recommendation pipeline
behind a worker pool with explicit, bounded buffering at every stage:

* a **bounded admission queue** — when it is full, :meth:`submit`
  raises :class:`~repro.errors.RejectedError` with a retry-after hint
  instead of buffering unboundedly (backpressure the client can act on);
* pluggable **admission policies** (:class:`TokenBucket` rate limiting
  at the door) and **deadline-aware load shedding** at dequeue time
  (:class:`DeadlineAwareShedder`): a request whose queue wait already
  spent its deadline budget is dropped before any substrate work;
* per-lane **bulkheads** (:class:`Bulkhead`) so a slow substrate
  saturates its own compartment instead of every worker thread;
* **health/readiness probes** derived from breaker states, queue depth
  and drain state (:mod:`repro.serving.health`);
* an optional per-lane **cache** (:class:`~repro.cache.core.ShardedTTLCache`):
  hits resolve at submit time, bypassing the queue, shedder, bulkhead
  and every substrate — and never touch a circuit breaker;
* **graceful shutdown**: :meth:`close` stops admission, lets in-flight
  requests finish within a drain deadline, sheds everything still
  queued with ``reason="draining"``, and reports exactly what happened.

Every admitted request resolves to a :class:`ServeResult` with outcome
``served`` / ``degraded`` / ``shed`` / ``failed`` — never silently
lost — and the four outcomes partition ``repro_requests_total`` so the
accounting is checkable: submitted == rejected + resolved.
"""

from __future__ import annotations

import contextvars
import queue
import threading
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro import obs
from repro.cache.core import ShardedTTLCache
from repro.errors import RejectedError, ReproError, ServerClosedError, ServingError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serving.admission import AdmissionPolicy, DeadlineAwareShedder
from repro.serving.bulkhead import Bulkhead
from repro.serving.health import (
    HealthReport,
    collect_breaker_states,
    derive_status,
)

__all__ = [
    "ServeRequest",
    "ServeResult",
    "DrainReport",
    "RecommendationServer",
    "register_serving_metrics",
    "OUTCOMES",
]

#: The four terminal outcomes partitioning ``repro_requests_total``.
OUTCOMES = ("served", "degraded", "shed", "failed")

_SENTINEL = object()


def register_serving_metrics(
    registry: MetricsRegistry | None = None,
) -> tuple[Counter, Counter, Gauge, Gauge, Histogram]:
    """Ensure every serving instrument exists in the registry.

    Returns ``(requests_total, shed_total, queue_depth, inflight,
    latency)``.  Idempotent — the server calls it at construction and
    the CLI metrics workload calls it so the exposition is complete
    even before any traffic has flowed.
    """
    registry = registry if registry is not None else obs.get_registry()
    requests_total = registry.counter(
        "repro_requests_total",
        "Serving requests by terminal outcome "
        "(served/degraded/shed/failed).",
        labelnames=("outcome",),
    )
    shed_total = registry.counter(
        "repro_shed_total",
        "Requests shed by the serving layer, by reason.",
        labelnames=("reason",),
    )
    queue_depth = registry.gauge(
        "repro_queue_depth",
        "Admitted requests waiting in the serving queue.",
    )
    inflight = registry.gauge(
        "repro_inflight",
        "Requests currently executing in a substrate.",
    )
    latency = registry.histogram(
        "repro_serve_seconds",
        "End-to-end latency of admitted requests (queue wait + service).",
        labelnames=("outcome",),
    )
    return requests_total, shed_total, queue_depth, inflight, latency


@dataclass(frozen=True)
class ServeRequest:
    """One client request for an explained recommendation list.

    ``lane`` names the pipeline/bulkhead to route through (``None``
    targets the server's sole lane); ``deadline_seconds`` is this
    request's end-to-end budget, overriding the server default.
    """

    user_id: str
    n: int = 3
    lane: str | None = None
    deadline_seconds: float | None = None


@dataclass(frozen=True)
class ServeResult:
    """The terminal state of one admitted request."""

    request: ServeRequest
    outcome: str  # one of OUTCOMES
    recommendations: tuple = ()
    shed_reason: str | None = None
    error: str | None = None
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    cached: bool = False

    @property
    def total_s(self) -> float:
        """Queue wait plus service time."""
        return self.queue_wait_s + self.service_s

    @property
    def degraded(self) -> bool:
        """Whether this answer came from a fallback path.

        True for ``outcome="degraded"`` — the batch carried at least
        one fallback-substrate or fallback-explainer item, or it was a
        cache hit on an entry stored under the degraded TTL.  Clients
        use this to badge results; caches use it to pick the shorter
        TTL.
        """
        return self.outcome == "degraded"


@dataclass(frozen=True)
class DrainReport:
    """What :meth:`RecommendationServer.close` actually did."""

    completed_total: int
    shed_queued: int
    workers_timed_out: int
    duration_s: float

    @property
    def clean(self) -> bool:
        """Whether every worker finished within the drain deadline."""
        return self.workers_timed_out == 0


class _ResultSlot:
    """A minimal single-value future: set once, read with ``result()``."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: ServeResult | None = None

    def set(self, result: ServeResult) -> None:
        self._result = result
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServeResult:
        if not self._event.wait(timeout):
            raise ServingError("timed out waiting for a serve result")
        assert self._result is not None
        return self._result


@dataclass
class _Job:
    request: ServeRequest
    future: _ResultSlot = field(default_factory=_ResultSlot)
    enqueued_at: float = 0.0
    context: contextvars.Context = field(
        default_factory=contextvars.copy_context
    )
    #: The user's cache generation captured at admission, so a result
    #: computed across an invalidation is stored unreachably stale
    #: instead of resurrecting pre-critique data under the new
    #: generation.
    cache_generation: int | None = None


class RecommendationServer:
    """Concurrent serving wrapper around explained-recommendation pipelines.

    Parameters
    ----------
    pipelines:
        One pipeline (anything with ``recommend(user_id, n=...)``, e.g.
        :class:`~repro.resilience.pipeline.ResilientExplainedRecommender`)
        or a mapping of lane name → pipeline for multi-substrate serving.
    workers:
        Size of the shared worker pool.  Keep it at or above the sum of
        bulkhead limits so one saturated lane cannot occupy every worker.
    queue_size:
        Capacity of the bounded admission queue.
    admission:
        Submit-time :class:`AdmissionPolicy` gates (e.g. a
        :class:`~repro.serving.admission.TokenBucket`), checked in order.
    shedder:
        Dequeue-time load shedding; defaults to a fresh
        :class:`DeadlineAwareShedder`.  Pass ``None`` explicitly via
        ``shed=False`` semantics is not supported — use a shedder with
        ``safety_factor=0`` to keep only the hard deadline check.
    bulkheads:
        Lane name → max concurrent executions.  Lanes not named get
        ``default_bulkhead`` slots.
    default_deadline_seconds:
        Budget applied to requests that do not carry their own.
    cache:
        One :class:`~repro.cache.core.ShardedTTLCache` shared by every
        lane, or a mapping of lane name → cache for per-lane caches
        (lanes absent from the mapping serve uncached).  Hits resolve
        at :meth:`submit` time — bypassing the queue, the shedder and
        the bulkhead, and never touching a substrate or its breaker —
        with ``ServeResult.cached=True``.  Keys include the lane, so a
        shared cache never crosses answers between lanes.
    recovery:
        Optional zero-argument callable that rebuilds state from the
        durable event log (typically a closure over
        :func:`repro.eventlog.replay`).  It runs on a background thread
        started at construction; until it returns, the server is
        **live but not ready** (``status="recovering"``) and
        :meth:`submit` rejects with ``reason="recovering"`` — a replica
        must never answer from pre-crash state.  The callable's return
        value is kept as :attr:`recovery_report`; an exception marks
        recovery failed and the server stays unready (the operator
        decides whether stale answers are acceptable via a fresh
        server without a recovery hook).
    """

    def __init__(
        self,
        pipelines: Mapping[str, object] | object,
        *,
        workers: int = 4,
        queue_size: int = 64,
        admission: Sequence[AdmissionPolicy] = (),
        shedder: DeadlineAwareShedder | None = None,
        bulkheads: Mapping[str, int] | None = None,
        default_bulkhead: int = 2,
        bulkhead_max_wait: float = 0.05,
        default_deadline_seconds: float | None = None,
        cache: ShardedTTLCache | Mapping[str, ShardedTTLCache] | None = None,
        recovery: Callable[[], object] | None = None,
        name: str = "repro-server",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if isinstance(pipelines, Mapping):
            if not pipelines:
                raise ValueError("need at least one pipeline")
            self.pipelines: dict[str, object] = dict(pipelines)
        else:
            self.pipelines = {"default": pipelines}
        self.name = name
        self.queue_size = queue_size
        self.default_deadline_seconds = default_deadline_seconds
        self.admission = tuple(admission)
        self.shedder = (
            shedder if shedder is not None else DeadlineAwareShedder()
        )
        self._clock = clock
        if cache is None:
            self._caches: dict[str, ShardedTTLCache] = {}
        elif isinstance(cache, Mapping):
            unknown = sorted(set(cache) - set(self.pipelines))
            if unknown:
                raise ServingError(
                    f"cache lanes {unknown} have no pipeline; "
                    f"lanes: {sorted(self.pipelines)}"
                )
            self._caches = dict(cache)
        else:
            self._caches = {lane: cache for lane in self.pipelines}
        bulkheads = dict(bulkheads or {})
        self.bulkheads: dict[str, Bulkhead] = {
            lane: Bulkhead(
                lane,
                bulkheads.get(lane, default_bulkhead),
                max_wait_seconds=bulkhead_max_wait,
            )
            for lane in self.pipelines
        }
        (
            self._requests_total,
            self._shed_total,
            self._queue_depth,
            self._inflight,
            self._latency,
        ) = register_serving_metrics()

        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._state_lock = threading.Lock()
        self._draining = False
        self._closed = False
        self._drain_report: DrainReport | None = None
        self._completed = 0
        self._completed_lock = threading.Lock()
        self._recovered = threading.Event()
        self._recovery_done = threading.Event()
        self._recovery_error: str | None = None
        self.recovery_report: object | None = None
        self._recovery_thread: threading.Thread | None = None
        if recovery is None:
            self._recovered.set()
            self._recovery_done.set()
        self._recovery_started_at: float | None = None
        if recovery is not None:
            self._recovery_started_at = self._clock()
            self._recovery_thread = threading.Thread(
                target=self._run_recovery,
                args=(recovery,),
                name=f"{name}-recovery",
                daemon=True,
            )
            self._recovery_thread.start()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"{name}-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- recovery ---------------------------------------------------------

    def _run_recovery(self, recovery: Callable[[], object]) -> None:
        try:
            with obs.span("serving.recovery", server=self.name):
                try:
                    self.recovery_report = recovery()
                except ReproError as error:
                    self._recovery_error = (
                        f"{type(error).__name__}: {error}"
                    )
                    obs.event(
                        "serving.recovery_failed",
                        server=self.name,
                        error=type(error).__name__,
                    )
                    return
                except Exception as error:
                    # A programming error (not a taxonomy failure) still
                    # pins the replica unready; re-raise so the thread
                    # excepthook surfaces the traceback.
                    self._recovery_error = (
                        f"{type(error).__name__}: {error}"
                    )
                    raise
            self._recovered.set()
            obs.event("serving.recovered", server=self.name)
        finally:
            self._recovery_done.set()

    @property
    def recovering(self) -> bool:
        """Whether event-log recovery is still gating readiness."""
        return not self._recovered.is_set()

    @property
    def recovery_error(self) -> str | None:
        """The failure that stalled recovery, or ``None``."""
        return self._recovery_error

    def await_recovery(self, timeout: float | None = None) -> bool:
        """Block until recovery finishes; ``True`` once state is rebuilt.

        Returns ``False`` on timeout.  A *failed* recovery raises
        :class:`~repro.errors.ServingError` instead — the replica must
        not be put into rotation against pre-crash state.
        """
        done = self._recovery_done.wait(timeout)
        if self._recovery_error is not None:
            raise ServingError(
                f"recovery failed on {self.name}: {self._recovery_error}"
            )
        return done

    # -- submission -------------------------------------------------------

    def _reject(self, reason: str, retry_after: float | None) -> None:
        self._shed_total.inc(reason=reason)
        self._requests_total.inc(outcome="shed")
        obs.event("serving.shed", reason=reason, stage="submit")
        raise RejectedError(reason=reason, retry_after_seconds=retry_after)

    def _queue_full_retry_after(self) -> float | None:
        estimate = self.shedder.estimated_service_seconds
        if estimate is None:
            return None
        return self.queue_size * estimate / max(1, len(self._workers))

    def _recovery_retry_after(self) -> float:
        """Backoff hint for requests rejected while replay runs.

        The recovery callable gives no completion estimate, so the hint
        is derived from elapsed replay time: a recovery that has already
        run for ``t`` seconds is told to come back in ``t/2`` (clamped
        to [0.05s, 5s]).  Short recoveries keep clients close; a long
        replay pushes them out instead of letting them hot-loop against
        a replica that cannot admit anyone yet.
        """
        started = self._recovery_started_at
        if started is None:
            return 0.05
        elapsed = max(0.0, self._clock() - started)
        return min(max(0.05, 0.5 * elapsed), 5.0)

    def submit(self, request: ServeRequest) -> _ResultSlot:
        """Admit one request; returns a slot resolving to a ServeResult.

        Raises :class:`~repro.errors.ServerClosedError` on a closed
        server and :class:`~repro.errors.RejectedError` when admission
        control or the bounded queue refuses the request.  With a lane
        cache configured, a hit resolves here — no queue, no shedder,
        no bulkhead, no substrate — and still lands in the
        ``repro_requests_total`` outcome partition.
        """
        if request.lane is not None and request.lane not in self.pipelines:
            raise ServingError(
                f"unknown lane {request.lane!r}; "
                f"lanes: {sorted(self.pipelines)}"
            )
        if not self._recovered.is_set():
            # Even a cache hit is pre-crash state until replay finishes.
            self._reject("recovering", self._recovery_retry_after())
        lane = request.lane or next(iter(self.pipelines))
        cache = self._caches.get(lane)
        generation: int | None = None
        if cache is not None:
            with self._state_lock:
                closed, draining = self._closed, self._draining
            if closed:
                raise ServerClosedError(self.name)
            if not draining:
                hit = cache.lookup(
                    request.user_id, ("serve", lane, request.n)
                )
                if hit is not None:
                    outcome = "degraded" if hit.degraded else "served"
                    job = _Job(request=request)
                    obs.event(
                        "cache.serve_hit",
                        cache=cache.name,
                        user=request.user_id,
                        lane=lane,
                        outcome=outcome,
                    )
                    self._resolve(
                        job,
                        ServeResult(
                            request=request,
                            outcome=outcome,
                            recommendations=tuple(hit.value),
                            cached=True,
                        ),
                        record_latency=True,
                    )
                    return job.future
                # Capture the generation *before* the computation is
                # queued; _execute stores under it so a mid-flight
                # invalidation makes the stored entry unreachable.
                generation = cache.generation(request.user_id)
        for policy in self.admission:
            try:
                policy.admit()
            except RejectedError as error:
                self._shed_total.inc(reason=error.reason)
                self._requests_total.inc(outcome="shed")
                obs.event(
                    "serving.shed", reason=error.reason, stage="submit"
                )
                raise
        job = _Job(request=request, cache_generation=generation)
        # The state check and the enqueue are one atomic step against
        # close(): a job can never slip in behind the drain sweep.
        with self._state_lock:
            if self._closed:
                raise ServerClosedError(self.name)
            if self._draining:
                self._reject("draining", None)
            job.enqueued_at = self._clock()
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self._reject("queue_full", self._queue_full_retry_after())
        self._queue_depth.set(self._queue.qsize())
        obs.event(
            "serving.admit",
            user=request.user_id,
            lane=lane,
            queue_depth=self._queue.qsize(),
        )
        return job.future

    def serve(
        self,
        user_id: str,
        n: int = 3,
        *,
        lane: str | None = None,
        deadline_seconds: float | None = None,
        timeout: float | None = None,
    ) -> ServeResult:
        """Blocking convenience: submit and wait for the result."""
        request = ServeRequest(
            user_id=user_id,
            n=n,
            lane=lane,
            deadline_seconds=deadline_seconds,
        )
        return self.submit(request).result(timeout)

    # -- worker side ------------------------------------------------------

    def _budget(self, request: ServeRequest) -> float | None:
        if request.deadline_seconds is not None:
            return request.deadline_seconds
        return self.default_deadline_seconds

    def _resolve(
        self, job: _Job, result: ServeResult, *, record_latency: bool
    ) -> None:
        self._requests_total.inc(outcome=result.outcome)
        if record_latency:
            self._latency.observe(result.total_s, outcome=result.outcome)
        with self._completed_lock:
            self._completed += 1
        job.future.set(result)

    def _shed(self, job: _Job, reason: str, queue_wait: float) -> None:
        self._shed_total.inc(reason=reason)
        obs.event(
            "serving.shed",
            reason=reason,
            stage="dequeue",
            user=job.request.user_id,
            queue_wait_s=round(queue_wait, 6),
        )
        self._resolve(
            job,
            ServeResult(
                request=job.request,
                outcome="shed",
                shed_reason=reason,
                queue_wait_s=queue_wait,
            ),
            record_latency=False,
        )

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _SENTINEL:
                return
            try:
                self._process(job)
            except BaseException as error:  # noqa: B036 - a worker must survive
                # A programming error in a handler must not kill the
                # worker or strand the client: resolve as failed.
                if not job.future.done():
                    self._resolve(
                        job,
                        ServeResult(
                            request=job.request,
                            outcome="failed",
                            error=type(error).__name__,
                        ),
                        record_latency=False,
                    )
            finally:
                self._queue_depth.set(self._queue.qsize())

    def _process(self, job: _Job) -> None:
        request = job.request
        queue_wait = max(0.0, self._clock() - job.enqueued_at)
        budget = self._budget(request)
        reason = self.shedder.shed_reason(queue_wait, budget)
        if reason is not None:
            self._shed(job, reason, queue_wait)
            return
        lane = request.lane or next(iter(self.pipelines))
        bulkhead = self.bulkheads[lane]
        wait_budget = None
        if budget is not None:
            wait_budget = max(0.0, budget - queue_wait)
        if not bulkhead.try_acquire(wait_budget):
            self._shed(job, "bulkhead_saturated", queue_wait)
            return
        try:
            # Run inside the submitter's contextvar snapshot so the
            # serving span parents to the client's active span even
            # though we are on a worker thread.
            job.context.run(self._execute, job, lane, queue_wait)
        finally:
            bulkhead.release()

    def _execute(self, job: _Job, lane: str, queue_wait: float) -> None:
        request = job.request
        pipeline = self.pipelines[lane]
        self._inflight.inc()
        started = self._clock()
        try:
            with obs.span(
                "serving.handle",
                user=request.user_id,
                lane=lane,
                n=request.n,
                queue_wait_s=round(queue_wait, 6),
            ):
                try:
                    recommendations = pipeline.recommend(
                        request.user_id, n=request.n
                    )
                    error_name = None
                except ReproError as error:
                    recommendations = []
                    error_name = type(error).__name__
        finally:
            self._inflight.dec()
        service_s = max(0.0, self._clock() - started)
        self.shedder.observe(service_s)
        if error_name is not None:
            outcome = "failed"
        elif any(
            getattr(item, "degraded", False) for item in recommendations
        ):
            outcome = "degraded"
        else:
            outcome = "served"
        cache = self._caches.get(lane)
        if cache is not None and error_name is None:
            # Degraded batches go in under the short TTL; failures are
            # never cached at all (no negative caching).
            cache.put(
                request.user_id,
                ("serve", lane, request.n),
                tuple(recommendations),
                degraded=(outcome == "degraded"),
                generation=job.cache_generation,
            )
        self._resolve(
            job,
            ServeResult(
                request=request,
                outcome=outcome,
                recommendations=tuple(recommendations),
                error=error_name,
                queue_wait_s=queue_wait,
                service_s=service_s,
            ),
            record_latency=True,
        )

    # -- probes -----------------------------------------------------------

    @property
    def completed(self) -> int:
        """Requests resolved so far (all outcomes)."""
        with self._completed_lock:
            return self._completed

    @property
    def caches(self) -> dict[str, ShardedTTLCache]:
        """Lane → cache mapping (empty when serving uncached)."""
        return dict(self._caches)

    def breaker_states(self) -> dict[str, str]:
        """Per-substrate breaker states across every lane."""
        states: dict[str, str] = {}
        for pipeline in self.pipelines.values():
            states.update(collect_breaker_states(pipeline))
        return states

    def health(self) -> HealthReport:
        """Liveness + readiness snapshot (see :mod:`repro.serving.health`)."""
        with self._state_lock:
            closed, draining = self._closed, self._draining
        breaker_states = self.breaker_states()
        depth = self._queue.qsize()
        live, ready, status = derive_status(
            closed=closed,
            draining=draining,
            queue_depth=depth,
            queue_capacity=self.queue_size,
            breaker_states=breaker_states,
            recovering=not self._recovered.is_set(),
        )
        return HealthReport(
            live=live,
            ready=ready,
            status=status,
            queue_depth=depth,
            queue_capacity=self.queue_size,
            inflight=sum(b.active for b in self.bulkheads.values()),
            breaker_states=breaker_states,
            bulkhead_active={
                lane: bulkhead.active
                for lane, bulkhead in self.bulkheads.items()
            },
        )

    def ready(self) -> bool:
        """Readiness probe: should this replica receive new traffic?"""
        return self.health().ready

    # -- lifecycle --------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed."""
        with self._state_lock:
            return self._closed

    def close(self, drain_seconds: float = 5.0) -> DrainReport:
        """Stop admission, drain in-flight work, shed the queue.

        Idempotent: the first call performs the drain and later calls
        return the same report.  Order of operations:

        1. flip to draining (new :meth:`submit` calls are rejected with
           ``reason="draining"``);
        2. sweep the queue — every admitted-but-unstarted job resolves
           as ``shed`` with ``reason="draining"``;
        3. wake the workers with sentinels and join them within the
           remaining drain budget; in-flight requests complete normally;
        4. mark closed — further :meth:`submit`/:meth:`serve` raise
           :class:`~repro.errors.ServerClosedError`.
        """
        started = self._clock()
        with self._state_lock:
            if self._drain_report is not None:
                return self._drain_report
            self._draining = True
            shed_jobs: list[_Job] = []
            while True:
                try:
                    shed_jobs.append(self._queue.get_nowait())
                except queue.Empty:
                    break
        # The sentinel puts can block when workers are slow to drain the
        # queue; doing them outside the state lock keeps submit/health
        # responsive.  Safe: once _draining is set no new job enqueues,
        # so the sentinels cannot be starved by fresh traffic.
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for job in shed_jobs:
            self._shed(
                job, "draining", max(0.0, self._clock() - job.enqueued_at)
            )
        timed_out = 0
        deadline = started + drain_seconds
        for thread in self._workers:
            remaining = max(0.0, deadline - self._clock())
            thread.join(timeout=remaining)
            if thread.is_alive():
                timed_out += 1
        # Reclaim the recovery thread within the same budget.  A replay
        # still running at close keeps the daemon flag as backstop; it
        # does not count against workers_timed_out — it never held a
        # request.
        if self._recovery_thread is not None:
            self._recovery_thread.join(
                timeout=max(0.0, deadline - self._clock())
            )
        duration = self._clock() - started
        report = DrainReport(
            completed_total=self.completed,
            shed_queued=len(shed_jobs),
            workers_timed_out=timed_out,
            duration_s=duration,
        )
        with self._state_lock:
            self._closed = True
            self._drain_report = report
        self._queue_depth.set(0)
        obs.event(
            "serving.drain",
            shed_queued=report.shed_queued,
            workers_timed_out=report.workers_timed_out,
            duration_s=round(duration, 6),
        )
        return report

    def __enter__(self) -> "RecommendationServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
