"""The shard fleet's wire protocol: typed, versioned pipe messages.

The fleet parent and its shard workers talk over two unidirectional
pipes (:mod:`repro.serving.worker` documents the traffic).  Before this
module, every send site built its tuple by hand and every receive site
unpacked by position — the protocol existed only as an implicit
agreement scattered across three modules, so adding or reordering a
field was invisible until a worker mis-dispatched in production.

Now there is exactly one definition.  Constructors validate field
types and return the (unchanged, still-picklable) tuple shapes;
:func:`parse_command` / :func:`parse_event` validate on receipt and
raise :class:`~repro.errors.WireProtocolError` on anything malformed.
RR011 (:mod:`repro.analysis.payloads`) enforces that no fleet send
site bypasses the constructors with a bare tuple literal.

``WIRE_VERSION`` rides in the ``ready`` announcement's info dict — the
one message every incarnation sends exactly once — so a parent can
detect a version-skewed worker at handshake instead of mid-traffic.

parent → worker (command pipe)::

    ("req",  req_id, user_id, n, lane, deadline_seconds)
    ("rate", req_id, user_id, item_id, value)
    ("inval", user_id)
    ("stop",)

worker → parent (event pipe)::

    ("hb", payload)
    ("ready", incarnation, info)          # info["wire_version"] stamped
    ("res", req_id, payload)
    ("recovery-failed", reason)
    ("stopped", drain_summary)
"""

from __future__ import annotations

from repro.errors import WireProtocolError

__all__ = [
    "WIRE_VERSION",
    "req_message",
    "rate_message",
    "inval_message",
    "stop_message",
    "hb_message",
    "ready_message",
    "res_message",
    "recovery_failed_message",
    "stopped_message",
    "parse_command",
    "parse_event",
]

#: Bump on any change to a message's shape or field meaning.
WIRE_VERSION = 1


def _require(condition: bool, direction: str, detail: str) -> None:
    if not condition:
        raise WireProtocolError(direction, detail)


# -- command constructors (parent → worker) -------------------------------


def req_message(
    req_id: int,
    user_id: str,
    n: int,
    lane: str | None,
    deadline_seconds: float | None,
) -> tuple:
    """A recommendation request for one shard-local user."""
    _require(isinstance(req_id, int), "command", f"req_id {req_id!r}")
    _require(isinstance(user_id, str), "command", f"user_id {user_id!r}")
    _require(isinstance(n, int) and n > 0, "command", f"n {n!r}")
    _require(
        lane is None or isinstance(lane, str), "command", f"lane {lane!r}"
    )
    _require(
        deadline_seconds is None
        or isinstance(deadline_seconds, (int, float)),
        "command",
        f"deadline_seconds {deadline_seconds!r}",
    )
    return ("req", req_id, user_id, n, lane, deadline_seconds)


def rate_message(
    req_id: int, user_id: str, item_id: str, value: float
) -> tuple:
    """A durable rating write for the user's home shard."""
    _require(isinstance(req_id, int), "command", f"req_id {req_id!r}")
    _require(isinstance(user_id, str), "command", f"user_id {user_id!r}")
    _require(isinstance(item_id, str), "command", f"item_id {item_id!r}")
    _require(
        isinstance(value, (int, float)), "command", f"value {value!r}"
    )
    return ("rate", req_id, user_id, item_id, value)


def inval_message(user_id: str) -> tuple:
    """A cross-shard invalidation-bus delivery."""
    _require(isinstance(user_id, str), "command", f"user_id {user_id!r}")
    return ("inval", user_id)


def stop_message() -> tuple:
    """The graceful-drain command."""
    return ("stop",)


# -- event constructors (worker → parent) ---------------------------------


def hb_message(payload: dict) -> tuple:
    """A liveness heartbeat carrying the shard's health snapshot."""
    _require(isinstance(payload, dict), "event", f"hb payload {payload!r}")
    return ("hb", payload)


def ready_message(incarnation: int, info: dict) -> tuple:
    """The post-recovery readiness announcement.

    Stamps ``info["wire_version"]`` so version skew between a parent
    and a freshly spawned worker is detectable at handshake.
    """
    _require(
        isinstance(incarnation, int), "event", f"incarnation {incarnation!r}"
    )
    _require(isinstance(info, dict), "event", f"ready info {info!r}")
    return ("ready", incarnation, {**info, "wire_version": WIRE_VERSION})


def res_message(req_id: int, payload: dict) -> tuple:
    """A serve / rate response for one pending request."""
    _require(isinstance(req_id, int), "event", f"req_id {req_id!r}")
    _require(isinstance(payload, dict), "event", f"res payload {payload!r}")
    return ("res", req_id, payload)


def recovery_failed_message(reason: str) -> tuple:
    """The worker's last words when log replay cannot succeed."""
    _require(isinstance(reason, str), "event", f"reason {reason!r}")
    return ("recovery-failed", reason)


def stopped_message(summary: dict) -> tuple:
    """The drain summary acknowledging a ``stop`` command."""
    _require(isinstance(summary, dict), "event", f"summary {summary!r}")
    return ("stopped", summary)


# -- receive-side validation ----------------------------------------------

#: kind → expected total tuple length, per direction.
_COMMAND_ARITY = {"req": 6, "rate": 5, "inval": 2, "stop": 1}
_EVENT_ARITY = {
    "hb": 2,
    "ready": 3,
    "res": 3,
    "recovery-failed": 2,
    "stopped": 2,
}


def _parse(message: object, direction: str, arity: dict[str, int]) -> tuple:
    _require(
        isinstance(message, tuple) and len(message) > 0,
        direction,
        f"not a tagged tuple: {message!r}",
    )
    assert isinstance(message, tuple)
    kind = message[0]
    _require(
        isinstance(kind, str) and kind in arity,
        direction,
        f"unknown kind {kind!r}",
    )
    _require(
        len(message) == arity[kind],
        direction,
        f"{kind!r} carries {len(message) - 1} field(s), "
        f"expected {arity[kind] - 1}",
    )
    return message


def parse_command(message: object) -> tuple:
    """Validate one parent → worker message; returns it unchanged."""
    return _parse(message, "command", _COMMAND_ARITY)


def parse_event(message: object) -> tuple:
    """Validate one worker → parent message; returns it unchanged."""
    return _parse(message, "event", _EVENT_ARITY)
