"""Closed-loop synthetic traffic for the serving layer.

Drives a :class:`~repro.serving.server.RecommendationServer` with a
fixed number of client threads, each issuing its next request as soon
as the previous one resolves (closed-loop: offered load tracks service
capacity, so sweeps over the client count trace out the throughput /
latency / shed-rate curve without an open-loop arrival model).

Used by ``python -m repro serve`` and the ``benchmarks/run_bench.py``
stress section; tests drive it directly with small request counts.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import RejectedError
from repro.serving.server import RecommendationServer

if TYPE_CHECKING:
    from repro.serving.sharding import ShardedServer

__all__ = ["TrafficReport", "run_traffic"]


def _percentile(values: Sequence[float], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class TrafficReport:
    """Aggregate of one closed-loop run."""

    requests: int
    clients: int
    wall_s: float
    outcomes: dict[str, int] = field(default_factory=dict)
    shed_reasons: dict[str, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        """Resolved requests per second of wall-clock."""
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def p50_s(self) -> float:
        """Median end-to-end latency of admitted requests."""
        return _percentile(self.latencies_s, 0.50)

    @property
    def p99_s(self) -> float:
        """99th-percentile end-to-end latency of admitted requests."""
        return _percentile(self.latencies_s, 0.99)

    @property
    def shed_rate(self) -> float:
        """Fraction of requests shed (at submit or dequeue)."""
        shed = self.outcomes.get("shed", 0)
        return shed / self.requests if self.requests else 0.0

    def render(self) -> str:
        """Human-readable summary, one stat per line."""
        lines = [
            f"requests       {self.requests} over {self.clients} client(s)",
            f"wall           {self.wall_s:.3f} s "
            f"({self.throughput_rps:.1f} req/s)",
            f"latency        p50 {self.p50_s * 1000:.2f} ms   "
            f"p99 {self.p99_s * 1000:.2f} ms (admitted)",
            f"shed rate      {self.shed_rate * 100:.1f}%",
        ]
        for outcome in sorted(self.outcomes):
            lines.append(f"  {outcome:<12} {self.outcomes[outcome]}")
        if self.shed_reasons:
            lines.append("shed reasons:")
            for reason in sorted(self.shed_reasons):
                lines.append(
                    f"  {reason:<20} {self.shed_reasons[reason]}"
                )
        return "\n".join(lines)


def run_traffic(
    server: RecommendationServer | ShardedServer,
    user_ids: Sequence[str],
    *,
    requests: int = 100,
    clients: int = 8,
    n: int = 3,
    lanes: Sequence[str] | None = None,
    deadline_seconds: float | None = None,
    seed: int = 0,
) -> TrafficReport:
    """Run a closed-loop load test against a live server.

    ``server`` is anything with the blocking ``serve`` surface — the
    single-process :class:`RecommendationServer` or a whole
    :class:`~repro.serving.sharding.ShardedServer` fleet (whose routing
    rejections surface here as shed, exactly like queue backpressure).

    Every request resolves to exactly one bucket in ``outcomes``:
    ``served`` / ``degraded`` / ``failed`` / ``shed`` (submit-time
    rejections count as shed, keyed by their reason) — the report's
    buckets always sum to ``requests``.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    counter = {"next": 0}
    counter_lock = threading.Lock()
    outcomes: dict[str, int] = {}
    shed_reasons: dict[str, int] = {}
    latencies: list[float] = []
    tally_lock = threading.Lock()

    def _tally(outcome: str, reason: str | None, latency: float | None):
        with tally_lock:
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            if reason is not None:
                shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
            if latency is not None:
                latencies.append(latency)

    def _client(client_index: int) -> None:
        rng = random.Random(seed * 7919 + client_index)
        while True:
            with counter_lock:
                if counter["next"] >= requests:
                    return
                counter["next"] += 1
            user_id = user_ids[rng.randrange(len(user_ids))]
            lane = (
                lanes[rng.randrange(len(lanes))]
                if lanes
                else None
            )
            started = time.perf_counter()
            try:
                result = server.serve(
                    user_id,
                    n=n,
                    lane=lane,
                    deadline_seconds=deadline_seconds,
                )
            except RejectedError as error:
                _tally("shed", error.reason, None)
                if error.retry_after_seconds is not None:
                    # Honour the server's hint (capped so a sweep at
                    # heavy overload still terminates promptly).
                    time.sleep(min(error.retry_after_seconds, 0.05))
                continue
            latency = time.perf_counter() - started
            _tally(
                result.outcome,
                result.shed_reason,
                latency if result.outcome != "shed" else None,
            )

    threads = [
        threading.Thread(target=_client, args=(index,), daemon=True)
        for index in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    return TrafficReport(
        requests=requests,
        clients=clients,
        wall_s=wall_s,
        outcomes=outcomes,
        shed_reasons=shed_reasons,
        latencies_s=latencies,
    )
