"""Per-substrate bulkheads: semaphore-bounded concurrency compartments.

A bulkhead caps how many requests may run *inside one substrate* at
once, so a slow collaborative substrate saturates its own compartment
instead of soaking up every worker thread and starving content-based
traffic — the ship-compartment metaphor the pattern is named after.

The wait for a slot is bounded (``max_wait_seconds``, further clipped by
the request's own deadline budget), never unbounded: a worker that
cannot get a slot in time sheds the request rather than queueing
invisibly on the semaphore.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

__all__ = ["Bulkhead"]


class Bulkhead:
    """A named concurrency compartment around one substrate.

    Parameters
    ----------
    name:
        Label for metrics and health reporting (usually the substrate
        or pipeline name).
    max_concurrent:
        Slots in the compartment — the maximum number of requests
        executing in the guarded substrate at once.
    max_wait_seconds:
        Longest a worker may block waiting for a slot.  Keep this small
        relative to worker count: the whole point is that waiting on a
        saturated compartment must not become the new unbounded queue.
    """

    def __init__(
        self,
        name: str,
        max_concurrent: int,
        max_wait_seconds: float = 0.05,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_wait_seconds < 0.0:
            raise ValueError(
                f"max_wait_seconds must be >= 0, got {max_wait_seconds}"
            )
        self.name = name
        self.max_concurrent = max_concurrent
        self.max_wait_seconds = max_wait_seconds
        self._semaphore = threading.BoundedSemaphore(max_concurrent)
        self._lock = threading.Lock()
        self._active = 0

    @property
    def active(self) -> int:
        """Requests currently holding a slot."""
        with self._lock:
            return self._active

    @property
    def saturated(self) -> bool:
        """Whether every slot is taken right now."""
        with self._lock:
            return self._active >= self.max_concurrent

    def try_acquire(self, timeout: float | None = None) -> bool:
        """Take a slot, waiting at most ``timeout`` (default: the
        configured ``max_wait_seconds``).  Returns ``False`` on timeout."""
        wait = self.max_wait_seconds if timeout is None else timeout
        wait = max(0.0, min(wait, self.max_wait_seconds))
        acquired = (
            self._semaphore.acquire(blocking=False)
            if wait == 0.0
            else self._semaphore.acquire(timeout=wait)
        )
        if acquired:
            with self._lock:
                self._active += 1
        return acquired

    def release(self) -> None:
        """Give the slot back."""
        with self._lock:
            self._active -= 1
        self._semaphore.release()

    def run(
        self,
        operation: Callable[[], object],
        timeout: float | None = None,
    ) -> tuple[bool, object | None]:
        """Run ``operation`` inside the compartment.

        Returns ``(True, result)`` when a slot was obtained, or
        ``(False, None)`` when the compartment stayed saturated for the
        whole bounded wait — the caller decides whether that means
        shedding or falling back.
        """
        if not self.try_acquire(timeout):
            return False, None
        try:
            return True, operation()
        finally:
            self.release()
