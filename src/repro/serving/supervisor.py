"""Parent-side shard supervision: handles, liveness, restart policy.

Three pieces:

* :class:`ShardHandle` — the parent's view of one shard: the worker
  process, both pipe ends, the pending-request table, and the liveness
  state machine (``starting → ok → down → starting → …``, with ``failed``
  and ``stopping``/``stopped`` as terminal states);
* :func:`reader_loop` — one daemon thread per worker *incarnation*
  draining its event pipe: heartbeats and readiness update the handle,
  responses resolve pending slots, and EOF — the fastest crash signal —
  fails every in-flight request immediately so a ``kill -9`` never
  strands a caller;
* :class:`ShardSupervisor` — the monitor thread: a dead process
  (``is_alive()`` false, EOF) is a **crash**; a live process whose
  heartbeat is older than ``hang_timeout`` is a **hang** (it gets
  ``SIGKILL``); a worker that never heartbeats within ``start_timeout``
  is a **slow start**.  All three converge on the same path: fail the
  shard's in-flight requests, mark it down, and respawn it after a
  deterministic linear backoff — the replacement re-admits traffic only
  after replaying the shard's event log (the worker's ``recovery=``
  gate), so a restart can never answer from pre-crash state.

Locking: each handle has three small leaf locks (state, pending table,
pipe sends) and no code path holds two at once, so the RR006 lock-order
graph stays edge-free.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess

from repro import obs
from repro.errors import ShardError, WireProtocolError
from repro.serving import wire
from repro.serving.worker import ShardSpec

__all__ = ["ShardHandle", "ShardSupervisor", "reader_loop"]

#: Handle states that accept no further traffic and no restarts.
TERMINAL_STATES = ("failed", "stopping", "stopped")


class _PendingSlot:
    """A single-value future for one dispatched shard request."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self._event = threading.Event()
        self._payload: dict | None = None
        self._error: Exception | None = None

    def deliver(self, payload: dict) -> None:
        self._payload = payload
        self._event.set()

    def fail(self, error: Exception) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> dict:
        if not self._event.wait(timeout):
            raise ShardError(
                self.shard_id, "timeout", "no response within timeout"
            )
        if self._error is not None:
            raise self._error
        assert self._payload is not None
        return self._payload


class ShardHandle:
    """The parent's mutable view of one shard and its current worker."""

    def __init__(
        self,
        shard_id: int,
        spec: ShardSpec,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.shard_id = shard_id
        self.spec = spec
        self._clock = clock
        #: Guards every liveness/state field below (leaf lock).
        self.lock = threading.Lock()
        self.state = "starting"
        self.state_reason = "spawn"
        self.incarnation = 0
        self.restarts = 0
        self.process: BaseProcess | None = None
        self.cmd: Connection | None = None
        self.evt: Connection | None = None
        self.reader: threading.Thread | None = None
        self.started_at = clock()
        self.down_since: float | None = None
        self.retry_at = 0.0
        self.last_heartbeat: float | None = None
        self.last_payload: dict = {}
        self.last_recovery_seconds: float | None = None
        self.drain_summary: dict | None = None
        #: Fleet hook: called with the recovery duration on every
        #: starting → ok transition (feeds the recovery histogram).
        self.on_ready: Callable[[float], None] | None = None
        #: Guards the pending-request table (leaf lock).
        self.pending_lock = threading.Lock()
        self.pending: dict[int, _PendingSlot] = {}
        #: Serialises writes on the command pipe (leaf lock).
        self.send_lock = threading.Lock()

    # -- state reads ------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent copy of the liveness state (for ``health()``)."""
        now = self._clock()
        with self.lock:
            process = self.process
            return {
                "shard_id": self.shard_id,
                "state": self.state,
                "state_reason": self.state_reason,
                "incarnation": self.incarnation,
                "restarts": self.restarts,
                "pid": process.pid if process is not None else None,
                "heartbeat_age_s": (
                    now - self.last_heartbeat
                    if self.last_heartbeat is not None
                    else None
                ),
                "last_recovery_seconds": self.last_recovery_seconds,
                "payload": dict(self.last_payload),
            }

    def pending_count(self) -> int:
        """How many requests are in flight to this shard."""
        with self.pending_lock:
            return len(self.pending)

    def current_state(self) -> str:
        """The shard's liveness state right now."""
        with self.lock:
            return self.state

    def unavailable_for(self) -> float:
        """Seconds since this shard last accepted traffic (0 when ok)."""
        now = self._clock()
        with self.lock:
            if self.state == "ok":
                return 0.0
            since = (
                self.down_since
                if self.down_since is not None
                else self.started_at
            )
            return max(0.0, now - since)

    # -- reader-side transitions ------------------------------------------

    def note_heartbeat(self, incarnation: int, payload: dict) -> None:
        """Record a worker heartbeat (ignored from stale incarnations)."""
        now = self._clock()
        with self.lock:
            if incarnation != self.incarnation:
                return
            self.last_heartbeat = now
            self.last_payload = payload

    def mark_ready(self, incarnation: int, info: dict) -> None:
        """Recovery finished: the shard re-admits traffic."""
        now = self._clock()
        with self.lock:
            if incarnation != self.incarnation or self.state != "starting":
                return
            self.state = "ok"
            self.state_reason = "recovered"
            self.last_heartbeat = now
            recovery_seconds = now - self.started_at
            self.last_recovery_seconds = recovery_seconds
            self.down_since = None
        obs.event(
            "shard.ready",
            shard=self.shard_id,
            incarnation=incarnation,
            recovery_seconds=round(recovery_seconds, 6),
            next_sequence=info.get("next_sequence"),
        )
        if self.on_ready is not None:
            self.on_ready(recovery_seconds)

    def mark_failed(self, reason: str, detail: str = "") -> None:
        """Pin the shard unready (recovery failed / budget exhausted)."""
        with self.lock:
            self.state = "failed"
            self.state_reason = reason
        obs.event(
            "shard.failed", shard=self.shard_id, reason=reason, detail=detail
        )
        self.fail_pending(ShardError(self.shard_id, reason, detail))

    def note_eof(self, incarnation: int, backoff: float) -> None:
        """The event pipe closed: fail fast, let the supervisor respawn."""
        with self.lock:
            if incarnation != self.incarnation or self.state in (
                "down",
                *TERMINAL_STATES,
            ):
                stale = True
            else:
                stale = False
                self.state = "down"
                self.state_reason = "pipe-eof"
                self.down_since = self._clock()
                self.retry_at = self.down_since + backoff * self.restarts
        if not stale:
            self.fail_pending(
                ShardError(self.shard_id, "crash", "event pipe closed")
            )

    def note_stopped(self, summary: dict) -> None:
        """The worker drained gracefully."""
        with self.lock:
            self.drain_summary = summary
            self.state = "stopped"
            self.state_reason = "drained"

    # -- request plumbing --------------------------------------------------

    def dispatch(self, req_id: int, message: tuple) -> _PendingSlot:
        """Register a pending slot and send one request message."""
        slot = _PendingSlot(self.shard_id)
        with self.pending_lock:
            self.pending[req_id] = slot
        try:
            self.send(message)
        except ShardError:
            with self.pending_lock:
                self.pending.pop(req_id, None)
            raise
        return slot

    def send(self, message: tuple) -> None:
        """Send one message on the command pipe (raises ShardError)."""
        with self.send_lock:
            connection = self.cmd
            if connection is None:
                raise ShardError(self.shard_id, "pipe", "no command pipe")
            try:
                connection.send(message)
            except (BrokenPipeError, OSError) as error:
                raise ShardError(
                    self.shard_id, "pipe", str(error)
                ) from error

    def deliver(self, req_id: int, payload: dict) -> None:
        """Resolve one pending request with the worker's payload."""
        with self.pending_lock:
            slot = self.pending.pop(req_id, None)
        if slot is not None:
            slot.deliver(payload)

    def fail_pending(self, error: Exception) -> None:
        """Fail every in-flight request — the never-hang guarantee."""
        with self.pending_lock:
            slots = list(self.pending.values())
            self.pending.clear()
        for slot in slots:
            slot.fail(error)


def reader_loop(handle: ShardHandle, incarnation: int, evt: Connection, backoff: float) -> None:
    """Drain one worker incarnation's event pipe until EOF.

    Runs as a daemon thread per spawn; a restarted shard gets a fresh
    reader on the fresh pipe, and this one exits on EOF of the old one.
    The fleet's close path joins the *current* reader (RR009's
    join-path contract); readers for dead incarnations have already
    exited by construction — EOF is their exit condition.
    """
    while True:
        try:
            message = evt.recv()
        except (EOFError, OSError):
            break
        try:
            message = wire.parse_event(message)
        except WireProtocolError as error:
            # A worker speaking a different protocol cannot be trusted
            # with traffic: fail the shard instead of mis-dispatching.
            handle.mark_failed("wire-protocol", str(error))
            break
        kind = message[0]
        if kind == "hb":
            handle.note_heartbeat(incarnation, message[1])
        elif kind == "ready":
            handle.mark_ready(message[1], message[2])
        elif kind == "res":
            handle.deliver(message[1], message[2])
        elif kind == "recovery-failed":
            handle.mark_failed("recovery-failed", message[1])
        elif kind == "stopped":
            handle.note_stopped(message[1])
    handle.note_eof(incarnation, backoff)


class ShardSupervisor:
    """The fleet's liveness monitor and restart policy.

    One daemon thread sweeps every handle each ``check_interval``.
    Detection budgets: a live shard whose heartbeat is older than
    ``hang_timeout`` is hung (its process gets ``SIGKILL`` — it may be
    stuck under the GIL and cannot honour anything gentler); a starting
    shard gets the larger ``start_timeout`` because replaying a log is
    legitimate silence only up to a point.  Restarts are paced by a
    deterministic linear backoff (``restart_backoff × restarts`` — no
    jitter; the fleet is seeded-deterministic end to end) and capped at
    ``max_restarts``, after which the shard is pinned ``failed`` and
    the fleet reports unready rather than crash-looping.
    """

    def __init__(
        self,
        handles: Sequence[ShardHandle],
        *,
        respawn: Callable[[ShardHandle], None],
        on_down: Callable[[ShardHandle, str], None] | None = None,
        hang_timeout: float = 1.0,
        start_timeout: float = 30.0,
        check_interval: float = 0.02,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        name: str = "repro-fleet",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if hang_timeout <= 0.0:
            raise ValueError(
                f"hang_timeout must be > 0, got {hang_timeout}"
            )
        if start_timeout <= 0.0:
            raise ValueError(
                f"start_timeout must be > 0, got {start_timeout}"
            )
        if max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        self._handles = tuple(handles)
        self._respawn = respawn
        self._on_down = on_down
        self.hang_timeout = hang_timeout
        self.start_timeout = start_timeout
        self.check_interval = check_interval
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self._clock = clock
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._monitor_loop,
            name=f"{name}-supervisor",
            daemon=True,
        )

    def start(self) -> None:
        """Start the monitor thread."""
        self._thread.start()

    def stop(self, timeout: float = 2.0) -> None:
        """Stop monitoring and join the monitor thread."""
        self._stop.set()
        self._thread.join(timeout=timeout)

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.check_interval):
            now = self._clock()
            for handle in self._handles:
                self._check(handle, now)

    def _check(self, handle: ShardHandle, now: float) -> None:
        with handle.lock:
            state = handle.state
            retry_at = handle.retry_at
            process = handle.process
            last_heartbeat = handle.last_heartbeat
            started_at = handle.started_at
        if state in TERMINAL_STATES:
            return
        if state == "down":
            if now >= retry_at:
                self._restart(handle)
            return
        if process is None:
            return
        if not process.is_alive():
            self._mark_down(
                handle, "crash", now, detail=f"exitcode={process.exitcode}"
            )
            return
        reference = (
            last_heartbeat if last_heartbeat is not None else started_at
        )
        budget = self.hang_timeout if state == "ok" else self.start_timeout
        if now - reference > budget:
            reason = "hang" if state == "ok" else "start-timeout"
            # A hung worker may be wedged under the GIL; SIGKILL is the
            # only signal it is guaranteed to honour.
            process.kill()
            process.join(timeout=1.0)
            self._mark_down(handle, reason, now)

    def _mark_down(
        self, handle: ShardHandle, reason: str, now: float, detail: str = ""
    ) -> None:
        obs.event(
            "shard.down",
            shard=handle.shard_id,
            reason=reason,
            detail=detail,
            incarnation=handle.incarnation,
        )
        handle.fail_pending(ShardError(handle.shard_id, reason, detail))
        with handle.lock:
            if handle.state in ("down", *TERMINAL_STATES):
                return  # the reader's EOF path got here first
            handle.state = "down"
            handle.state_reason = reason
            handle.down_since = now
            handle.retry_at = now + self.restart_backoff * handle.restarts
        if self._on_down is not None:
            self._on_down(handle, reason)

    def _restart(self, handle: ShardHandle) -> None:
        with handle.lock:
            if handle.restarts >= self.max_restarts:
                exhausted = True
            else:
                exhausted = False
                handle.restarts += 1
        if exhausted:
            handle.mark_failed(
                "restart-budget-exhausted",
                f"max_restarts={self.max_restarts}",
            )
            return
        obs.event(
            "shard.restart",
            shard=handle.shard_id,
            restarts=handle.restarts,
        )
        self._respawn(handle)
