"""Health and readiness probes for the serving layer.

Kubernetes-shaped semantics, derived from live server state rather than
a self-reported flag:

* **liveness** — the process can still make progress: worker threads
  exist and the server is not closed.  A live-but-degraded server keeps
  its traffic; only a dead one should be restarted.
* **readiness** — the server should receive *new* traffic: not
  draining, admission queue below the pressure threshold, and at least
  one substrate breaker not open.  Load balancers pull an unready
  replica out of rotation without killing in-flight work.

:func:`collect_breaker_states` walks a pipeline for the per-substrate
:class:`~repro.resilience.policies.CircuitBreaker` instances the
resilience layer installed, so the probe reflects the same state
machine that is actually gating calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience.policies import CircuitBreaker

__all__ = ["HealthReport", "collect_breaker_states", "derive_status"]

#: Fraction of queue capacity above which readiness reports pressure.
QUEUE_PRESSURE_THRESHOLD = 0.9


@dataclass(frozen=True)
class HealthReport:
    """One probe snapshot, renderable as a plain dict for exposition."""

    live: bool
    ready: bool
    status: str  # "ok" | "degraded" | "recovering" | "draining" | "closed"
    queue_depth: int
    queue_capacity: int
    inflight: int
    breaker_states: dict[str, str] = field(default_factory=dict)
    bulkhead_active: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly rendering (the ``/healthz`` payload shape)."""
        return {
            "live": self.live,
            "ready": self.ready,
            "status": self.status,
            "queue": {
                "depth": self.queue_depth,
                "capacity": self.queue_capacity,
            },
            "inflight": self.inflight,
            "breakers": dict(self.breaker_states),
            "bulkheads": dict(self.bulkhead_active),
        }


def collect_breaker_states(pipeline: object) -> dict[str, str]:
    """Per-substrate breaker states reachable from a pipeline.

    Understands the shapes the resilience layer builds: an
    ``ExplainedRecommender`` whose ``recommender`` is a
    ``ResilientRecommender`` or a ``FallbackChain`` of them.  Anything
    without breakers yields an empty dict — an unguarded pipeline is
    simply not breaker-limited.
    """
    breakers: dict[str, str] = {}
    roots = [pipeline, getattr(pipeline, "recommender", None)]
    seen: set[int] = set()
    while roots:
        node = roots.pop()
        if node is None or id(node) in seen:
            continue
        seen.add(id(node))
        breaker = getattr(node, "breaker", None)
        if isinstance(breaker, CircuitBreaker):
            breakers[breaker.name] = breaker.state
        components = getattr(node, "components", None)
        if isinstance(components, list):
            roots.extend(components)
        inner = getattr(node, "inner", None)
        if inner is not None:
            roots.append(inner)
    return breakers


def derive_status(
    *,
    closed: bool,
    draining: bool,
    queue_depth: int,
    queue_capacity: int,
    breaker_states: dict[str, str],
    recovering: bool = False,
) -> tuple[bool, bool, str]:
    """``(live, ready, status)`` from raw server state.

    Degradation is not unreadiness: a server with *some* breakers open
    still serves (the fallback chain covers the gap) and stays ready;
    only every-breaker-open or a pressured queue pulls it from rotation.
    A *recovering* server (event-log replay still running) is live but
    not ready — the load balancer must not route traffic to a replica
    that would answer from pre-crash state.
    """
    if closed:
        return False, False, "closed"
    if recovering:
        return True, False, "recovering"
    if draining:
        return True, False, "draining"
    pressured = (
        queue_capacity > 0
        and queue_depth >= queue_capacity * QUEUE_PRESSURE_THRESHOLD
    )
    any_open = any(
        state != CircuitBreaker.CLOSED for state in breaker_states.values()
    )
    all_open = bool(breaker_states) and all(
        state == CircuitBreaker.OPEN for state in breaker_states.values()
    )
    ready = not pressured and not all_open
    status = "degraded" if (any_open or pressured) else "ok"
    return True, ready, status
