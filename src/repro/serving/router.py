"""User→shard routing: a consistent-hash ring and the degrade policy.

The ring answers *where a user lives*; the router answers *what to do
when that shard cannot take traffic*.  The contract for the second
question is **never hang**: a request to a dead or recovering shard
either raises :class:`~repro.errors.RejectedError` with a retry-after
hint derived from the shard's recovery history, or — when the fleet
was built with a local fallback pipeline — returns a degraded answer
computed in the parent process.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

from repro import obs
from repro.errors import RejectedError, ServingError
from repro.serving.server import ServeRequest, ServeResult
from repro.serving.worker import WireRecommendation, to_wire

__all__ = ["HashRing", "ShardRouter"]


class HashRing:
    """A consistent-hash ring over shard ids with virtual nodes.

    Hashing is sha1 over stable strings — never the process-salted
    builtin ``hash`` — so the parent router, every worker, and every
    future run agree on placement.  ``replicas`` virtual nodes per
    shard smooth the key distribution, and resizing the fleet moves
    only the users whose nearest virtual node changed (≈ ``1/N`` of
    them), which is what keeps the rebalance handoff small.
    """

    def __init__(self, n_shards: int, *, replicas: int = 64) -> None:
        if n_shards < 1:
            raise ServingError(f"n_shards must be >= 1, got {n_shards}")
        if replicas < 1:
            raise ServingError(f"replicas must be >= 1, got {replicas}")
        self.n_shards = n_shards
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append(
                    (_point(f"shard-{shard}:vnode-{replica}"), shard)
                )
        points.sort()
        self._hashes = [point for point, __ in points]
        self._shards = [shard for __, shard in points]

    def route(self, user_id: str) -> int:
        """The shard that owns this user."""
        index = bisect.bisect_right(self._hashes, _point(f"user:{user_id}"))
        if index == len(self._hashes):
            index = 0
        return self._shards[index]

    def assignments(self, user_ids: Iterable[str]) -> dict[int, list[str]]:
        """Partition ``user_ids`` by owning shard (all shards present)."""
        out: dict[int, list[str]] = {
            shard: [] for shard in range(self.n_shards)
        }
        for user_id in user_ids:
            out[self.route(user_id)].append(user_id)
        return out


def _point(key: str) -> int:
    return int.from_bytes(
        hashlib.sha1(key.encode("utf-8")).digest()[:8], "big"
    )


class ShardRouter:
    """The routing policy in front of the shard fleet.

    Owns the ring and the two degraded paths for an unavailable owner
    shard: reject-with-hint (the default) or a parent-local fallback
    pipeline (anything with ``recommend(user_id, n=...)``) whose
    answers are marked degraded — stale-capable but instant, for
    deployments that prefer a worse answer over an error while a shard
    replays its log.
    """

    def __init__(
        self, ring: HashRing, *, fallback: object | None = None
    ) -> None:
        self.ring = ring
        self.fallback = fallback

    def shard_for(self, user_id: str) -> int:
        """The owner shard for this user."""
        return self.ring.route(user_id)

    @staticmethod
    def retry_after(
        state: str,
        *,
        unavailable_for: float,
        last_recovery_seconds: float | None,
    ) -> float:
        """A retry hint for a shard that cannot take traffic now.

        A recovering shard's best completion estimate is its last
        recovery duration: the hint is the *remaining* share of that
        budget.  Without history (first boot) — or once the estimate is
        exhausted — fall back to half the time already spent
        unavailable, so hints grow instead of letting clients hot-loop.
        Clamped to [0.05s, 5s] like every retry hint in the stack.
        """
        if state == "starting" and last_recovery_seconds is not None:
            remaining = last_recovery_seconds - unavailable_for
            if remaining > 0.0:
                return min(max(0.05, remaining), 5.0)
        return min(max(0.05, 0.5 * unavailable_for), 5.0)

    def reject(
        self, request: ServeRequest, shard_id: int, state: str, hint: float
    ) -> None:
        """Refuse a request whose owner shard is down/recovering."""
        reason = (
            "shard_recovering" if state == "starting" else "shard_down"
        )
        obs.event(
            "shard.reject",
            shard=shard_id,
            state=state,
            reason=reason,
            user=request.user_id,
        )
        raise RejectedError(reason=reason, retry_after_seconds=hint)

    def degrade(self, request: ServeRequest) -> ServeResult | None:
        """A parent-local degraded answer, or ``None`` without fallback."""
        if self.fallback is None:
            return None
        recommendations = self.fallback.recommend(
            request.user_id, n=request.n
        )
        wired = tuple(
            WireRecommendation(
                item_id=wire.item_id,
                score=wire.score,
                degraded=True,
                render=wire.render,
            )
            for wire in to_wire(tuple(recommendations))
        )
        return ServeResult(
            request=request,
            outcome="degraded",
            recommendations=wired,
        )
