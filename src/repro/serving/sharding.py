"""Sharded multi-process serving: the fleet facade.

:class:`ShardedServer` partitions users across N worker processes by
consistent hashing (:class:`~repro.serving.router.HashRing`) and gives
them one front door.  Each shard is a child process owning its own
cache, its own event-log directory, and an internal
:class:`~repro.serving.server.RecommendationServer` whose ``recovery=``
gate replays that log before the shard re-admits traffic.  The parent
keeps one :class:`~repro.serving.supervisor.ShardHandle` per shard, a
:class:`~repro.serving.supervisor.ShardSupervisor` monitor thread, and
one reader thread per worker incarnation.

The durability contract the fleet inherits from the single-process
server and extends across the process boundary:

* **journal-before-ack** — a rating is acknowledged to the caller only
  after the owning shard's worker appended it to that shard's event
  log; a ``kill -9`` immediately after the ack therefore loses nothing,
  because the restart replays the log before serving;
* **never hang** — a request to a dead or recovering shard either gets
  a :class:`~repro.errors.RejectedError` with a retry-after hint, a
  parent-local degraded answer (when a ``fallback`` pipeline is
  configured), or — for requests already in flight at the instant of a
  crash — a failed :class:`~repro.serving.server.ServeResult`; the
  reader thread fails every pending slot the moment the event pipe
  reports EOF;
* **invalidation bus** — an acked rating broadcasts ``("inval", user)``
  to every other live shard, so any shard that might answer for that
  user from cache (e.g. after a resize) drops its stale entries.

Resizing is a stop-the-world handoff: drain the fleet, rewrite each
shard's log in place keeping only the events the new ring still routes
there (:meth:`~repro.eventlog.EventLog.rewrite`), append the removed
events to their new owners' logs (re-stamped, per-user order
preserved — a user's events live entirely in one source log), then
respawn under the new ring.

Workers start under the ``spawn`` method: ``fork`` from a process with
live threads (the supervisor, readers, metric locks) can inherit a
lock mid-acquisition and deadlock the child before it runs a line.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro import obs
from repro.errors import (
    EventLogError,
    RejectedError,
    ServerClosedError,
    ServingError,
    ShardError,
)
from repro.eventlog import EventLog
from repro.serving.router import HashRing, ShardRouter
from repro.serving.server import ServeRequest, ServeResult
from repro.serving.supervisor import (
    TERMINAL_STATES,
    ShardHandle,
    ShardSupervisor,
    reader_loop,
)
from repro.serving import wire
from repro.serving.worker import ShardSpec, movie_world, shard_main

if TYPE_CHECKING:
    from collections.abc import Callable
    from multiprocessing.connection import Connection

    from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
    from repro.resilience.chaos import ShardFaultPlan

__all__ = [
    "FleetDrainReport",
    "FleetHealthReport",
    "RebalanceReport",
    "STATE_CODES",
    "ShardHealth",
    "ShardedServer",
    "register_shard_metrics",
]

#: ``repro_shard_state`` gauge encoding.
STATE_CODES = {
    "failed": -1.0,
    "down": 0.0,
    "starting": 1.0,
    "ok": 2.0,
    "stopping": 3.0,
    "stopped": 4.0,
}


def register_shard_metrics(
    registry: MetricsRegistry | None = None,
) -> dict[str, Counter | Gauge | Histogram]:
    """Create (or fetch) the fleet's metric family in ``registry``."""
    if registry is None:
        registry = obs.get_registry()
    return {
        "requests": registry.counter(
            "repro_shard_requests_total",
            "Requests completed per shard by outcome.",
            labelnames=("shard", "outcome"),
        ),
        "rejected": registry.counter(
            "repro_shard_rejected_total",
            "Requests rejected by the fleet by reason.",
            labelnames=("reason",),
        ),
        "restarts": registry.counter(
            "repro_shard_restarts_total",
            "Worker respawns per shard by down reason.",
            labelnames=("shard", "reason"),
        ),
        "invalidations": registry.counter(
            "repro_shard_invalidations_total",
            "Cross-shard invalidation bus deliveries per target shard.",
            labelnames=("shard",),
        ),
        "fallbacks": registry.counter(
            "repro_shard_fallbacks_total",
            "Parent-local degraded answers for unavailable shards.",
            labelnames=("shard",),
        ),
        "state": registry.gauge(
            "repro_shard_state",
            "Shard liveness (-1 failed, 0 down, 1 starting, 2 ok, "
            "3 stopping, 4 stopped).",
            labelnames=("shard",),
        ),
        "shards": registry.gauge(
            "repro_shard_count", "Configured shard count."
        ),
        "recovery": registry.histogram(
            "repro_shard_recovery_seconds",
            "Shard recovery duration, down (or spawn) to ready.",
        ),
    }


@dataclass(frozen=True)
class ShardHealth:
    """One shard's row in the fleet health report."""

    shard_id: int
    state: str
    state_reason: str
    incarnation: int
    restarts: int
    pid: int | None
    heartbeat_age_s: float | None
    last_recovery_seconds: float | None
    worker: dict

    @property
    def ok(self) -> bool:
        """Live *and* the worker's own server reports ready."""
        return self.state == "ok" and bool(self.worker.get("ready"))

    def as_dict(self) -> dict:
        """A JSON-friendly view."""
        return {
            "shard_id": self.shard_id,
            "state": self.state,
            "state_reason": self.state_reason,
            "incarnation": self.incarnation,
            "restarts": self.restarts,
            "pid": self.pid,
            "heartbeat_age_s": self.heartbeat_age_s,
            "last_recovery_seconds": self.last_recovery_seconds,
            "worker": dict(self.worker),
        }


@dataclass(frozen=True)
class FleetHealthReport:
    """Aggregated fleet health: ``ready`` only when every shard is."""

    name: str
    status: str  # ok | recovering | degraded | rebalancing | draining | closed
    ready: bool
    shards: tuple[ShardHealth, ...]

    def as_dict(self) -> dict:
        """A JSON-friendly view (CLI / ops surface)."""
        return {
            "name": self.name,
            "status": self.status,
            "ready": self.ready,
            "shards": [shard.as_dict() for shard in self.shards],
        }


@dataclass(frozen=True)
class FleetDrainReport:
    """What happened when the fleet closed."""

    shards: int
    stopped_clean: int
    killed: int
    duration_s: float
    drains: tuple[dict | None, ...]

    @property
    def clean(self) -> bool:
        """True when no worker needed a kill to stop."""
        return self.killed == 0


@dataclass(frozen=True)
class RebalanceReport:
    """What a :meth:`ShardedServer.resize` moved."""

    old_shards: int
    new_shards: int
    events_moved: int
    duration_s: float


class _ResolvedSlot:
    """An already-answered future (parent-local degraded fallback)."""

    def __init__(self, result: ServeResult) -> None:
        self._result = result

    def done(self) -> bool:
        return True

    def result(self, timeout: float | None = None) -> ServeResult:
        return self._result


class _FleetSlot:
    """Parent-side future translating a shard payload to a ServeResult.

    Three payload shapes come back over the pipe: a rejected marker
    (re-raised as :class:`RejectedError`, preserving the backpressure
    contract end to end), a serve-result dict (rebuilt around the
    original request), or — when the shard died with this request in
    flight — a :class:`ShardError` from the failed slot, translated to
    a failed result rather than an exception: the caller's request
    genuinely failed, but the *fleet* is still serving.
    """

    def __init__(
        self,
        request: ServeRequest,
        shard_id: int,
        slot: object,
        on_outcome: Callable[[int, str], None],
        on_reject: Callable[[str], None],
    ) -> None:
        self._request = request
        self._shard_id = shard_id
        self._slot = slot
        self._on_outcome = on_outcome
        self._on_reject = on_reject

    def done(self) -> bool:
        return self._slot.done()

    def result(self, timeout: float | None = None) -> ServeResult:
        try:
            payload = self._slot.result(timeout)
        except ShardError as error:
            if error.reason == "timeout":
                raise  # the caller's own wait budget, not a shard death
            self._on_outcome(self._shard_id, "failed")
            return ServeResult(
                request=self._request,
                outcome="failed",
                error=f"ShardError: {error}",
            )
        if payload.get("rejected"):
            self._on_reject(payload["reason"])
            raise RejectedError(
                reason=payload["reason"],
                retry_after_seconds=payload["retry_after"],
            )
        result = ServeResult(
            request=self._request,
            outcome=payload["outcome"],
            recommendations=tuple(payload["recommendations"]),
            shed_reason=payload["shed_reason"],
            error=payload["error"],
            queue_wait_s=payload["queue_wait_s"],
            service_s=payload["service_s"],
            cached=payload["cached"],
        )
        self._on_outcome(self._shard_id, result.outcome)
        return result


def _close_quietly(connection: Connection | None) -> None:
    if connection is None:
        return
    try:
        connection.close()
    except OSError:
        pass


class ShardedServer:
    """N supervised shard workers behind one consistent-hash front door.

    The facade mirrors the single-process server's surface —
    ``submit``/``serve``/``health``/``ready``/``close`` plus the write
    path ``rate`` — so :func:`~repro.serving.driver.run_traffic` drives
    either interchangeably.  ``world_factory`` must be a module-level
    callable (it crosses the ``spawn`` boundary inside each
    :class:`ShardSpec`).
    """

    def __init__(
        self,
        world_factory: Callable[
            [int], tuple[object, dict[str, object]]
        ] = movie_world,
        *,
        log_root: str | Path,
        shards: int = 2,
        name: str = "repro-fleet",
        seed: int = 7,
        shard_workers: int = 2,
        queue_size: int = 32,
        default_deadline_seconds: float | None = None,
        cache_capacity: int = 512,
        cache_ttl_seconds: float = 60.0,
        heartbeat_seconds: float = 0.05,
        hang_timeout: float = 1.0,
        start_timeout: float = 30.0,
        check_interval: float = 0.02,
        max_restarts: int = 5,
        restart_backoff: float = 0.05,
        max_inflight_per_shard: int = 64,
        replicas: int = 64,
        fallback: object | None = None,
        fault_plan: ShardFaultPlan | None = None,
        drain_seconds: float = 2.0,
        fsync_policy: str = "always",
        start_method: str = "spawn",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if shards < 1:
            raise ServingError(f"shards must be >= 1, got {shards}")
        self._name = name
        self._clock = clock
        self._world_factory = world_factory
        self._seed = seed
        self._shard_workers = shard_workers
        self._queue_size = queue_size
        self._default_deadline_seconds = default_deadline_seconds
        self._cache_capacity = cache_capacity
        self._cache_ttl_seconds = cache_ttl_seconds
        self._heartbeat_seconds = heartbeat_seconds
        self._hang_timeout = hang_timeout
        self._start_timeout = start_timeout
        self._check_interval = check_interval
        self._max_restarts = max_restarts
        self._restart_backoff = restart_backoff
        self._max_inflight_per_shard = max_inflight_per_shard
        self._replicas = replicas
        self._fallback = fallback
        self._fault_plan = fault_plan
        self._drain_seconds = drain_seconds
        self._fsync_policy = fsync_policy
        self._ctx = multiprocessing.get_context(start_method)
        self._log_root = Path(log_root)
        self._log_root.mkdir(parents=True, exist_ok=True)
        self._fleet_metrics = register_shard_metrics()
        self._req_ids = itertools.count(1)
        self._state_lock = threading.Lock()
        self._closed = False
        self._draining = False
        self._rebalancing = False
        self._drain_report: FleetDrainReport | None = None
        self.ring = HashRing(shards, replicas=replicas)
        self._router = ShardRouter(self.ring, fallback=fallback)
        self._handles: tuple[ShardHandle, ...] = ()
        self._supervisor: ShardSupervisor | None = None
        self._boot(shards)

    # -- lifecycle ---------------------------------------------------------

    def _boot(self, shards: int) -> None:
        """Spawn every shard and start the supervisor."""
        self._fleet_metrics["shards"].set(float(shards))
        handles = []
        for shard_id in range(shards):
            handle = ShardHandle(
                shard_id, self._make_spec(shard_id), clock=self._clock
            )
            handle.on_ready = self._fleet_metrics["recovery"].observe
            handles.append(handle)
        self._handles = tuple(handles)
        for handle in self._handles:
            self._launch(handle)
        self._supervisor = ShardSupervisor(
            self._handles,
            respawn=self._respawn,
            hang_timeout=self._hang_timeout,
            start_timeout=self._start_timeout,
            check_interval=self._check_interval,
            max_restarts=self._max_restarts,
            restart_backoff=self._restart_backoff,
            name=self._name,
            clock=self._clock,
        )
        self._supervisor.start()

    def _make_spec(self, shard_id: int, incarnation: int = 0) -> ShardSpec:
        log_dir = self._log_root / f"shard-{shard_id:03d}"
        log_dir.mkdir(parents=True, exist_ok=True)
        return ShardSpec(
            shard_id=shard_id,
            incarnation=incarnation,
            name=self._name,
            log_dir=str(log_dir),
            world_factory=self._world_factory,
            seed=self._seed,
            workers=self._shard_workers,
            queue_size=self._queue_size,
            default_deadline_seconds=self._default_deadline_seconds,
            cache_capacity=self._cache_capacity,
            cache_ttl_seconds=self._cache_ttl_seconds,
            heartbeat_seconds=self._heartbeat_seconds,
            drain_seconds=self._drain_seconds,
            fsync_policy=self._fsync_policy,
            fault_plan=self._fault_plan,
        )

    def _launch(self, handle: ShardHandle) -> None:
        """Spawn one worker incarnation and its reader thread."""
        with handle.lock:
            incarnation = handle.incarnation
        spec = replace(handle.spec, incarnation=incarnation)
        handle.spec = spec
        old_cmd, old_evt = handle.cmd, handle.evt
        cmd_recv, cmd_send = self._ctx.Pipe(duplex=False)
        evt_recv, evt_send = self._ctx.Pipe(duplex=False)
        handle.process = self._ctx.Process(
            target=shard_main,
            args=(spec, cmd_recv, evt_send),
            name=f"{spec.shard_name}-{incarnation}",
            daemon=True,
        )
        handle.process.start()
        # The child owns its pipe ends now; dropping the parent copies is
        # what turns a dead worker into EOF on the event pipe.
        cmd_recv.close()
        evt_send.close()
        with handle.send_lock:
            handle.cmd = cmd_send
        handle.evt = evt_recv
        handle.reader = threading.Thread(
            target=reader_loop,
            args=(handle, incarnation, evt_recv, self._restart_backoff),
            name=f"{spec.shard_name}-reader-{incarnation}",
            daemon=True,
        )
        handle.reader.start()
        _close_quietly(old_cmd)
        _close_quietly(old_evt)
        self._fleet_metrics["state"].set(
            STATE_CODES["starting"], shard=str(handle.shard_id)
        )
        obs.event(
            "shard.spawn",
            shard=handle.shard_id,
            incarnation=incarnation,
            pid=handle.process.pid,
        )

    def _respawn(self, handle: ShardHandle) -> None:
        """Supervisor callback: replace a down shard's worker."""
        now = self._clock()
        with handle.lock:
            reason = handle.state_reason
            handle.incarnation += 1
            handle.state = "starting"
            handle.state_reason = "respawn"
            handle.started_at = now
            handle.last_heartbeat = None
            handle.down_since = None
            handle.last_payload = {}
        self._fleet_metrics["restarts"].inc(
            shard=str(handle.shard_id), reason=reason
        )
        self._launch(handle)

    def close(self, drain_seconds: float = 5.0) -> FleetDrainReport:
        """Drain and stop the fleet; idempotent after the first close."""
        with self._state_lock:
            if self._drain_report is not None:
                return self._drain_report
            if self._draining:
                raise ServingError(
                    f"fleet {self._name!r} is already draining"
                )
            self._draining = True
        started = self._clock()
        if self._supervisor is not None:
            self._supervisor.stop()
        with obs.span("shard.drain", shards=len(self._handles)):
            killed, drains = self._stop_fleet(started + drain_seconds)
        report = FleetDrainReport(
            shards=len(self._handles),
            stopped_clean=sum(1 for drain in drains if drain is not None),
            killed=killed,
            duration_s=self._clock() - started,
            drains=tuple(drains),
        )
        with self._state_lock:
            self._closed = True
            self._drain_report = report
        obs.event(
            "shard.fleet_drained",
            shards=report.shards,
            killed=report.killed,
            duration_s=round(report.duration_s, 6),
        )
        return report

    def _stop_fleet(self, deadline: float) -> tuple[int, list[dict | None]]:
        """Stop every worker: graceful first, then kill; reap readers."""
        for handle in self._handles:
            with handle.lock:
                if handle.state not in TERMINAL_STATES:
                    handle.state = "stopping"
                    handle.state_reason = "drain"
            try:
                handle.send(wire.stop_message())
            except ShardError:
                continue  # already dead; the join below reaps it
        killed = 0
        drains: list[dict | None] = []
        for handle in self._handles:
            if handle.process is not None:
                handle.process.join(
                    timeout=max(0.0, deadline - self._clock())
                )
                if handle.process.is_alive():
                    handle.process.kill()
                    handle.process.join(timeout=1.0)
                    killed += 1
            if handle.reader is not None:
                handle.reader.join(
                    timeout=max(0.0, deadline - self._clock()) + 0.5
                )
            with handle.send_lock:
                _close_quietly(handle.cmd)
                handle.cmd = None
            _close_quietly(handle.evt)
            handle.evt = None
            handle.fail_pending(
                ShardError(handle.shard_id, "draining", "fleet closed")
            )
            with handle.lock:
                if handle.state == "stopping":
                    handle.state = "stopped"
                    handle.state_reason = "drained"
                state = handle.state
                drains.append(handle.drain_summary)
            self._fleet_metrics["state"].set(
                STATE_CODES.get(state, 0.0), shard=str(handle.shard_id)
            )
        return killed, drains

    def resize(
        self, shards: int, *, drain_seconds: float = 5.0
    ) -> RebalanceReport:
        """Stop-the-world rebalance to ``shards`` workers.

        Event handoff is a two-phase rewrite: every surviving shard log
        keeps only what the new ring still routes to it; everything
        removed is appended (re-stamped) to its new owner's log before
        the fleet respawns — so each worker's recovery replay sees its
        complete, gap-free user set.
        """
        if shards < 1:
            raise ServingError(f"shards must be >= 1, got {shards}")
        with self._state_lock:
            if self._closed:
                raise ServerClosedError(self._name)
            if self._draining or self._rebalancing:
                raise ServingError(f"fleet {self._name!r} is busy")
            self._rebalancing = True
        started = self._clock()
        old_shards = len(self._handles)
        try:
            with obs.span("shard.rebalance", old=old_shards, new=shards):
                if self._supervisor is not None:
                    self._supervisor.stop()
                self._stop_fleet(self._clock() + drain_seconds)
                new_ring = HashRing(shards, replicas=self._replicas)
                moved = self._handoff(new_ring, shards)
                self.ring = new_ring
                self._router = ShardRouter(
                    new_ring, fallback=self._fallback
                )
                self._boot(shards)
        finally:
            with self._state_lock:
                self._rebalancing = False
        report = RebalanceReport(
            old_shards=old_shards,
            new_shards=shards,
            events_moved=moved,
            duration_s=self._clock() - started,
        )
        obs.event(
            "shard.rebalanced",
            old=old_shards,
            new=shards,
            moved=moved,
            duration_s=round(report.duration_s, 6),
        )
        return report

    def _handoff(self, new_ring: HashRing, shards: int) -> int:
        """Move misplaced events to their new owner shards' logs."""
        moved: dict[int, list] = {}
        total = 0
        for directory in sorted(self._log_root.glob("shard-*")):
            index = int(directory.name.split("-")[1])
            log = EventLog(
                directory,
                fsync_policy=self._fsync_policy,
                name=f"{self._name}-handoff-{index}",
            )
            if index < shards:
                removed = log.rewrite(
                    lambda event, index=index: (
                        new_ring.route(event.user_id) == index
                    )
                )
            else:
                removed = log.rewrite(lambda event: False)
            log.close()
            # Per-user order survives regrouping: a user's events live
            # entirely in one source log, in sequence order.
            for event in removed:
                moved.setdefault(
                    new_ring.route(event.user_id), []
                ).append(event)
            total += len(removed)
        for destination in sorted(moved):
            dest_dir = self._log_root / f"shard-{destination:03d}"
            dest_dir.mkdir(parents=True, exist_ok=True)
            dest_log = EventLog(
                dest_dir,
                fsync_policy=self._fsync_policy,
                name=f"{self._name}-handoff-{destination}",
            )
            dest_log.append_many(moved[destination])
            dest_log.close()
        return total

    def __enter__(self) -> ShardedServer:
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- request paths -----------------------------------------------------

    def submit(self, request: ServeRequest) -> _FleetSlot | _ResolvedSlot:
        """Route one request to its owner shard; never hangs.

        Unavailable owner shard: degraded parent-local answer when a
        fallback pipeline is configured, otherwise RejectedError with a
        retry-after hint derived from the shard's recovery history.
        ``shard_saturated`` (per-shard in-flight cap) gets a flat 50 ms
        hint — saturation clears at service rate, not recovery rate.
        """
        with self._state_lock:
            if self._closed:
                raise ServerClosedError(self._name)
            if self._draining:
                self._reject("draining", None)
            if self._rebalancing:
                self._reject("rebalancing", self._drain_seconds)
        shard_id = self._router.shard_for(request.user_id)
        handle = self._handles[shard_id]
        state = handle.current_state()
        if state != "ok":
            degraded = self._router.degrade(request)
            if degraded is not None:
                self._fleet_metrics["fallbacks"].inc(shard=str(shard_id))
                self._fleet_metrics["requests"].inc(
                    shard=str(shard_id), outcome="degraded"
                )
                return _ResolvedSlot(degraded)
            hint = ShardRouter.retry_after(
                state,
                unavailable_for=handle.unavailable_for(),
                last_recovery_seconds=handle.last_recovery_seconds,
            )
            reason = (
                "shard_recovering" if state == "starting" else "shard_down"
            )
            self._fleet_metrics["rejected"].inc(reason=reason)
            self._router.reject(request, shard_id, state, hint)
        if handle.pending_count() >= self._max_inflight_per_shard:
            self._reject("shard_saturated", 0.05)
        req_id = next(self._req_ids)
        deadline = (
            request.deadline_seconds
            if request.deadline_seconds is not None
            else self._default_deadline_seconds
        )
        try:
            slot = handle.dispatch(
                req_id,
                wire.req_message(
                    req_id, request.user_id, request.n, request.lane, deadline
                ),
            )
        except ShardError:
            # The pipe died between the state read and the send — same
            # answer as finding the shard down up front.
            self._reject(
                "shard_down",
                ShardRouter.retry_after(
                    "down",
                    unavailable_for=0.0,
                    last_recovery_seconds=handle.last_recovery_seconds,
                ),
            )
        return _FleetSlot(
            request, shard_id, slot, self._count_outcome, self._count_reject
        )

    def serve(
        self,
        user_id: str,
        n: int = 3,
        *,
        lane: str | None = None,
        deadline_seconds: float | None = None,
        timeout: float | None = None,
    ) -> ServeResult:
        """Submit and wait: the blocking convenience path."""
        request = ServeRequest(
            user_id=user_id,
            n=n,
            lane=lane,
            deadline_seconds=deadline_seconds,
        )
        return self.submit(request).result(timeout)

    def rate(
        self,
        user_id: str,
        item_id: str,
        value: float,
        *,
        timeout: float = 10.0,
    ) -> dict:
        """Journal one rating on the owner shard; ack means durable.

        Writes never degrade and never fall back — an ack that skipped
        the journal would be a durability lie.  After the owner's ack
        the parent broadcasts the invalidation to every *other* live
        shard (the bus), so post-resize stale cache entries die.  A
        :class:`ShardError` here means the write's fate is unknown
        (maybe journaled): the caller must treat it as unacknowledged
        and the next replay is the arbiter.
        """
        with self._state_lock:
            if self._closed:
                raise ServerClosedError(self._name)
            if self._draining:
                self._reject("draining", None)
            if self._rebalancing:
                self._reject("rebalancing", self._drain_seconds)
        shard_id = self._router.shard_for(user_id)
        handle = self._handles[shard_id]
        state = handle.current_state()
        if state != "ok":
            reason = (
                "shard_recovering" if state == "starting" else "shard_down"
            )
            self._reject(
                reason,
                ShardRouter.retry_after(
                    state,
                    unavailable_for=handle.unavailable_for(),
                    last_recovery_seconds=handle.last_recovery_seconds,
                ),
            )
        req_id = next(self._req_ids)
        slot = handle.dispatch(
            req_id, wire.rate_message(req_id, user_id, item_id, value)
        )
        payload = slot.result(timeout)
        if not payload.get("acked"):
            raise EventLogError(payload.get("error") or "append failed")
        self._broadcast_invalidation(user_id, exclude=shard_id)
        obs.event(
            "shard.rate_acked",
            shard=shard_id,
            user=user_id,
            sequence=payload.get("sequence"),
        )
        return payload

    def invalidate_user(self, user_id: str) -> int:
        """Broadcast an invalidation to every live shard (ops surface)."""
        return self._broadcast_invalidation(user_id, exclude=None)

    def _broadcast_invalidation(
        self, user_id: str, exclude: int | None
    ) -> int:
        delivered = 0
        for handle in self._handles:
            if handle.shard_id == exclude:
                continue
            if handle.current_state() != "ok":
                continue  # its replay rebuilds a coherent cache anyway
            try:
                handle.send(wire.inval_message(user_id))
            except ShardError:
                continue  # the supervisor owns the fallout
            self._fleet_metrics["invalidations"].inc(shard=str(handle.shard_id))
            delivered += 1
        return delivered

    def _reject(self, reason: str, retry_after: float | None) -> None:
        self._fleet_metrics["rejected"].inc(reason=reason)
        obs.event("shard.reject", reason=reason, stage="fleet")
        raise RejectedError(reason=reason, retry_after_seconds=retry_after)

    def _count_outcome(self, shard_id: int, outcome: str) -> None:
        self._fleet_metrics["requests"].inc(shard=str(shard_id), outcome=outcome)

    def _count_reject(self, reason: str) -> None:
        self._fleet_metrics["rejected"].inc(reason=reason)

    # -- health ------------------------------------------------------------

    def health(self) -> FleetHealthReport:
        """Aggregate fleet health; also refreshes the state gauges."""
        with self._state_lock:
            closed = self._closed
            draining = self._draining
            rebalancing = self._rebalancing
        rows = []
        for handle in self._handles:
            snap = handle.snapshot()
            self._fleet_metrics["state"].set(
                STATE_CODES.get(snap["state"], 0.0),
                shard=str(snap["shard_id"]),
            )
            rows.append(
                ShardHealth(
                    shard_id=snap["shard_id"],
                    state=snap["state"],
                    state_reason=snap["state_reason"],
                    incarnation=snap["incarnation"],
                    restarts=snap["restarts"],
                    pid=snap["pid"],
                    heartbeat_age_s=snap["heartbeat_age_s"],
                    last_recovery_seconds=snap["last_recovery_seconds"],
                    worker=snap["payload"],
                )
            )
        shards = tuple(rows)
        ready = (
            not closed
            and not draining
            and not rebalancing
            and all(shard.ok for shard in shards)
        )
        if closed:
            status = "closed"
        elif draining:
            status = "draining"
        elif rebalancing:
            status = "rebalancing"
        elif any(shard.state == "failed" for shard in shards):
            status = "degraded"
        elif any(shard.state in ("starting", "down") for shard in shards):
            status = "recovering"
        elif any(
            shard.worker.get("status") == "degraded" for shard in shards
        ):
            status = "degraded"
        else:
            status = "ok"
        return FleetHealthReport(
            name=self._name, status=status, ready=ready, shards=shards
        )

    def ready(self) -> bool:
        """True when every shard is live and recovered."""
        return self.health().ready

    def await_ready(self, timeout: float = 30.0) -> bool:
        """Block (poll) until the whole fleet is ready, or time out."""
        deadline = self._clock() + timeout
        while True:
            if self.ready():
                return True
            if self._clock() >= deadline:
                return False
            time.sleep(0.01)

    # -- introspection (tests / ops) ---------------------------------------

    @property
    def n_shards(self) -> int:
        """How many shards the fleet currently runs."""
        return len(self._handles)

    @property
    def name(self) -> str:
        """The fleet's display name."""
        return self._name

    def shard_pids(self) -> dict[int, int | None]:
        """Current worker pid per shard (chaos tests kill these)."""
        return {
            handle.shard_id: (
                handle.process.pid if handle.process is not None else None
            )
            for handle in self._handles
        }

    def shard_states(self) -> dict[int, str]:
        """Current liveness state per shard."""
        return {
            handle.shard_id: handle.current_state()
            for handle in self._handles
        }
