"""LIBRA-style naive-Bayes text recommender with influence attribution.

Bilgic & Mooney's LIBRA book recommender (paper reference [5], Figure 3)
classifies items into *like* / *dislike* with a naive-Bayes model over
keyword features, trained on the user's own rated items, and explains a
recommendation by showing **how much each past rating influenced it**.

This module reproduces both halves:

* a weighted Bernoulli naive-Bayes classifier per user, where each rated
  item is a training example weighted by how far its rating sits from the
  scale midpoint; and
* **exact leave-one-out influence attribution**: the influence of a past
  rating is the change in the recommendation's log-odds score when that
  training example is removed.  These influences populate
  :class:`~repro.recsys.base.InfluenceEvidence`, from which the Figure 3
  influence table is rendered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PredictionImpossibleError
from repro.recsys.base import (
    InfluenceEvidence,
    KeywordEvidence,
    KeywordInfluence,
    Prediction,
    RatingInfluence,
    Recommender,
)
from repro.recsys.data import Dataset

__all__ = ["NaiveBayesRecommender"]

_LIKE = "like"
_DISLIKE = "dislike"


@dataclass
class _UserModel:
    """Per-user weighted Bernoulli NB sufficient statistics."""

    class_weight: dict[str, float]
    feature_weight: dict[str, dict[str, float]]  # class -> keyword -> weight
    examples: list[tuple[str, float, str, float]]
    # (item_id, rating_value, class_label, example_weight)


class NaiveBayesRecommender(Recommender):
    """Per-user naive-Bayes like/dislike classifier over item keywords.

    Parameters
    ----------
    alpha:
        Laplace smoothing constant.
    min_examples:
        Minimum rated items before predictions are attempted.
    """

    def __init__(self, alpha: float = 1.0, min_examples: int = 2) -> None:
        super().__init__()
        if alpha <= 0.0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self.min_examples = min_examples
        self._models: dict[str, _UserModel] = {}

    def _fit(self, dataset: Dataset) -> None:
        self._models = {}

    def _example_weight(self, rating_value: float) -> float:
        """Training weight: distance from the scale midpoint, min 0.5.

        A 5-of-5 rating teaches the model more than a 4-of-5, mirroring
        LIBRA's strength-weighted training.
        """
        scale = self.dataset.scale
        distance = abs(rating_value - scale.midpoint) / (scale.span / 2.0)
        return max(0.5, distance)

    def _build_model(self, user_id: str) -> _UserModel:
        dataset = self.dataset
        scale = dataset.scale
        class_weight = {_LIKE: 0.0, _DISLIKE: 0.0}
        feature_weight: dict[str, dict[str, float]] = {_LIKE: {}, _DISLIKE: {}}
        examples: list[tuple[str, float, str, float]] = []
        for item_id, rating in dataset.ratings_by(user_id).items():
            label = _LIKE if scale.is_positive(rating.value) else _DISLIKE
            weight = self._example_weight(rating.value)
            class_weight[label] += weight
            per_class = feature_weight[label]
            for keyword in dataset.item(item_id).keywords:
                per_class[keyword] = per_class.get(keyword, 0.0) + weight
            examples.append((item_id, rating.value, label, weight))
        return _UserModel(class_weight, feature_weight, examples)

    def model_for(self, user_id: str) -> _UserModel:
        """The user's (cached) NB model; built on first use."""
        model = self._models.get(user_id)
        if model is None:
            model = self._build_model(user_id)
            self._models[user_id] = model
        return model

    def invalidate(self, user_id: str) -> None:
        """Drop the cached model after the user's ratings changed."""
        self._models.pop(user_id, None)

    # -- scoring ----------------------------------------------------------

    def _log_odds(
        self,
        keywords: frozenset[str],
        class_weight: dict[str, float],
        feature_weight: dict[str, dict[str, float]],
    ) -> float:
        """Log P(like | d) - log P(dislike | d) under the supplied counts."""
        total = class_weight[_LIKE] + class_weight[_DISLIKE]
        if total <= 0.0:
            return 0.0
        score = math.log(
            (class_weight[_LIKE] + self.alpha)
            / (class_weight[_DISLIKE] + self.alpha)
        )
        for keyword in keywords:
            p_like = (
                feature_weight[_LIKE].get(keyword, 0.0) + self.alpha
            ) / (class_weight[_LIKE] + 2.0 * self.alpha)
            p_dislike = (
                feature_weight[_DISLIKE].get(keyword, 0.0) + self.alpha
            ) / (class_weight[_DISLIKE] + 2.0 * self.alpha)
            score += math.log(p_like / p_dislike)
        return score

    def score(self, user_id: str, item_id: str) -> float:
        """Raw like/dislike log-odds for an item under the user's model."""
        model = self.model_for(user_id)
        keywords = self.dataset.item(item_id).keywords
        return self._log_odds(keywords, model.class_weight, model.feature_weight)

    def _keyword_contributions(
        self, user_id: str, item_id: str
    ) -> list[KeywordInfluence]:
        """Per-keyword additive log-odds contributions for an item."""
        model = self.model_for(user_id)
        contributions = []
        for keyword in self.dataset.item(item_id).keywords:
            delta = self._log_odds(
                frozenset([keyword]),
                model.class_weight,
                model.feature_weight,
            ) - self._log_odds(
                frozenset(), model.class_weight, model.feature_weight
            )
            contributions.append(KeywordInfluence(keyword=keyword, weight=delta))
        contributions.sort(key=lambda k: -k.weight)
        return contributions

    def rating_influences(
        self, user_id: str, item_id: str
    ) -> list[RatingInfluence]:
        """Exact leave-one-out influence of each past rating on the score.

        ``influence > 0`` means the past rating pushed the recommendation
        up; the magnitudes are what Figure 3 reports as percentages (see
        :meth:`InfluenceEvidence.percentages`).
        """
        model = self.model_for(user_id)
        keywords = self.dataset.item(item_id).keywords
        full_score = self._log_odds(
            keywords, model.class_weight, model.feature_weight
        )
        influences: list[RatingInfluence] = []
        for example_id, rating_value, label, weight in model.examples:
            reduced_class = dict(model.class_weight)
            reduced_class[label] -= weight
            reduced_features = {
                _LIKE: dict(model.feature_weight[_LIKE]),
                _DISLIKE: dict(model.feature_weight[_DISLIKE]),
            }
            per_class = reduced_features[label]
            for keyword in self.dataset.item(example_id).keywords:
                per_class[keyword] = per_class.get(keyword, 0.0) - weight
            reduced_score = self._log_odds(
                keywords, reduced_class, reduced_features
            )
            influences.append(
                RatingInfluence(
                    item_id=example_id,
                    rating=rating_value,
                    influence=full_score - reduced_score,
                )
            )
        influences.sort(key=lambda r: -abs(r.influence))
        return influences

    def predict(self, user_id: str, item_id: str) -> Prediction:
        """P(like | item) mapped onto the rating scale, with influences."""
        dataset = self.dataset
        dataset.user(user_id)
        dataset.item(item_id)
        model = self.model_for(user_id)
        if len(model.examples) < self.min_examples:
            raise PredictionImpossibleError(
                f"user {user_id!r} has only {len(model.examples)} rated "
                f"items; {self.min_examples} required"
            )
        log_odds = self.score(user_id, item_id)
        probability_like = 1.0 / (1.0 + math.exp(-log_odds))
        value = dataset.scale.denormalize(probability_like)

        influences = self.rating_influences(user_id, item_id)
        keyword_evidence = KeywordEvidence(
            influences=tuple(self._keyword_contributions(user_id, item_id))
        )
        influence_evidence = InfluenceEvidence(influences=tuple(influences))
        confidence = min(1.0, len(model.examples) / 10.0) * min(
            1.0, abs(log_odds) / 2.0 + 0.2
        )
        return Prediction(
            value=value,
            confidence=confidence,
            evidence=(influence_evidence, keyword_evidence),
        )
