"""LIBRA-style naive-Bayes text recommender with influence attribution.

Bilgic & Mooney's LIBRA book recommender (paper reference [5], Figure 3)
classifies items into *like* / *dislike* with a naive-Bayes model over
keyword features, trained on the user's own rated items, and explains a
recommendation by showing **how much each past rating influenced it**.

This module reproduces both halves:

* a weighted Bernoulli naive-Bayes classifier per user, where each rated
  item is a training example weighted by how far its rating sits from the
  scale midpoint; and
* **exact leave-one-out influence attribution**: the influence of a past
  rating is the change in the recommendation's log-odds score when that
  training example is removed.  These influences populate
  :class:`~repro.recsys.base.InfluenceEvidence`, from which the Figure 3
  influence table is rendered.

Vectorized layout: keywords live in a catalogue-wide index aligned with
the :class:`~repro.recsys.data.RatingMatrix` column order (one flat
CSR-style array of per-item keyword ids, in **canonical sorted keyword
order** — a determinism improvement over the old per-``frozenset``
iteration order).  A user's sufficient statistics are two ``bincount``
passes, a candidate pool scores through one shared per-keyword log-odds
term table (:func:`log_odds_terms`), and leave-one-out influences for
one item evaluate as a single ``(examples, keywords)`` array expression.
All transcendentals go through ``np.log``/``np.exp`` (the vectorized
twins of the old ``math.log``/``math.exp`` calls); scores can therefore
drift from the pre-vectorization path by float-ulp amounts, which
``docs/vectorization.md`` documents and the parity suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.recsys.base import (
    Evidence,
    InfluenceEvidence,
    KeywordEvidence,
    KeywordInfluence,
    RatingInfluence,
)
from repro.recsys.data import Dataset, RatingMatrix
from repro.recsys.engine import PoolScores, VectorRecommender

__all__ = ["NaiveBayesRecommender", "log_odds_terms"]

_LIKE = "like"
_DISLIKE = "dislike"


def log_odds_terms(
    alpha: float, class_weight: np.ndarray, feature_weight: np.ndarray
) -> tuple[float, np.ndarray]:
    """The additive pieces of the NB like/dislike log-odds.

    Given class weights ``[dislike, like]`` and per-class keyword weights
    of shape ``(2, vocabulary)``, returns ``(base, terms)`` such that the
    log-odds of an item is ``base + terms[item_keywords].sum()``.  Shared
    by the scoring engine and the parity-test reference so both sides
    use the exact same float operations.
    """
    like = float(class_weight[1])
    dislike = float(class_weight[0])
    base = float(np.log((like + alpha) / (dislike + alpha)))
    p_like = (feature_weight[1] + alpha) / (like + 2.0 * alpha)
    p_dislike = (feature_weight[0] + alpha) / (dislike + 2.0 * alpha)
    return base, np.log(p_like / p_dislike)


@dataclass
class _Catalog:
    """Catalogue-wide keyword index aligned with rating-matrix columns."""

    vocabulary: dict[str, int]
    keywords: list[str]
    kw_flat: np.ndarray  # concatenated per-item keyword ids (canonical order)
    kw_indptr: np.ndarray  # item col -> [start, end) into kw_flat
    n_items: int

    @classmethod
    def build(cls, dataset: Dataset) -> "_Catalog":
        vocabulary: dict[str, int] = {}
        for keyword in sorted(
            {kw for item in dataset.items.values() for kw in item.keywords}
        ):
            vocabulary[keyword] = len(vocabulary)
        rows: list[list[int]] = []
        for item in dataset.items.values():
            rows.append(
                sorted(map(vocabulary.__getitem__, item.keywords))
            )
        lengths = np.full(len(rows), 0)
        lengths[:] = list(map(len, rows))
        kw_indptr = np.full(len(rows) + 1, 0)
        np.cumsum(lengths, out=kw_indptr[1:])
        kw_flat = np.full(int(kw_indptr[-1]), 0)
        kw_flat[:] = [index for row in rows for index in row]
        return cls(
            vocabulary=vocabulary,
            keywords=list(vocabulary),
            kw_flat=kw_flat,
            kw_indptr=kw_indptr,
            n_items=len(rows),
        )

    def item_keywords(self, col: int) -> np.ndarray:
        return self.kw_flat[self.kw_indptr[col] : self.kw_indptr[col + 1]]


@dataclass
class _UserModel:
    """Per-user weighted Bernoulli NB sufficient statistics (arrays)."""

    class_weight: np.ndarray  # (2,)  [dislike, like]
    feature_weight: np.ndarray  # (2, vocabulary)
    example_ids: list[str]  # rated item ids, in rating order
    example_cols: np.ndarray  # matrix columns of the rated items
    example_values: np.ndarray  # rating values
    example_labels: np.ndarray  # 0 = dislike, 1 = like
    example_weights: np.ndarray  # training weights
    kw_mask: np.ndarray  # (examples, vocabulary) keyword membership

    @property
    def examples(self) -> list[tuple[str, float, str, float]]:
        """Legacy-shaped ``(item_id, rating, label, weight)`` tuples."""
        return [
            (item_id, value, _LIKE if label else _DISLIKE, weight)
            for item_id, value, label, weight in zip(
                self.example_ids,
                self.example_values.tolist(),
                self.example_labels.tolist(),
                self.example_weights.tolist(),
            )
        ]


class NaiveBayesRecommender(VectorRecommender):
    """Per-user naive-Bayes like/dislike classifier over item keywords.

    Parameters
    ----------
    alpha:
        Laplace smoothing constant.
    min_examples:
        Minimum rated items before predictions are attempted.
    """

    def __init__(self, alpha: float = 1.0, min_examples: int = 2) -> None:
        super().__init__()
        if alpha <= 0.0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self.min_examples = min_examples
        self._models: dict[str, _UserModel] = {}
        self._catalog: _Catalog | None = None

    def _fit(self, dataset: Dataset) -> None:
        self._models = {}
        self._catalog = _Catalog.build(dataset)

    def _on_matrix_change(self, matrix: RatingMatrix) -> None:
        self._models = {}
        if self._catalog is None or self._catalog.n_items != matrix.n_items:
            self._catalog = _Catalog.build(self.dataset)

    @property
    def catalog(self) -> _Catalog:
        if self._catalog is None:
            self.dataset  # noqa: B018  raises NotFittedError
            raise AssertionError("unreachable")
        return self._catalog

    def _example_weight(self, rating_value: float) -> float:
        """Training weight: distance from the scale midpoint, min 0.5.

        A 5-of-5 rating teaches the model more than a 4-of-5, mirroring
        LIBRA's strength-weighted training.
        """
        scale = self.dataset.scale
        distance = abs(rating_value - scale.midpoint) / (scale.span / 2.0)
        return max(0.5, distance)

    def _build_model(self, user_id: str) -> _UserModel:
        matrix = self._matrix()
        catalog = self.catalog
        scale = matrix.scale
        width = len(catalog.vocabulary)
        row = matrix.row_of.get(user_id)
        cols = matrix.user_cols(row) if row is not None else np.full(0, 0)
        values = (
            matrix.user_vals(row) if row is not None else np.full(0, 0.0)
        )
        assert scale.like_threshold is not None
        labels = (values >= scale.like_threshold).astype(np.intp)
        weights = np.maximum(
            0.5, np.abs(values - scale.midpoint) / (scale.span / 2.0)
        )
        class_weight = np.bincount(labels, weights=weights, minlength=2)
        positions, owner = RatingMatrix.gather_ranges(
            catalog.kw_indptr, cols
        )
        kw_ids = catalog.kw_flat[positions]
        feature_weight = np.bincount(
            labels[owner] * width + kw_ids,
            weights=weights[owner],
            minlength=2 * width,
        ).reshape(2, width)
        kw_mask = np.full((cols.size, width), False)
        kw_mask[owner, kw_ids] = True
        return _UserModel(
            class_weight=class_weight,
            feature_weight=feature_weight,
            example_ids=list(
                map(matrix.item_ids.__getitem__, cols.tolist())
            ),
            example_cols=cols,
            example_values=values,
            example_labels=labels,
            example_weights=weights,
            kw_mask=kw_mask,
        )

    def model_for(self, user_id: str) -> _UserModel:
        """The user's (cached) NB model; built on first use."""
        model = self._models.get(user_id)
        if model is None:
            model = self._build_model(user_id)
            self._models[user_id] = model
        return model

    def invalidate(self, user_id: str) -> None:
        """Drop the cached model after the user's ratings changed."""
        self._models.pop(user_id, None)

    # -- scoring ----------------------------------------------------------

    def _pool_log_odds(
        self, model: _UserModel, cols: np.ndarray
    ) -> np.ndarray:
        """Log P(like | d) - log P(dislike | d) for a whole item pool."""
        catalog = self.catalog
        if float(model.class_weight.sum()) <= 0.0:
            return np.full(cols.size, 0.0)
        base, terms = log_odds_terms(
            self.alpha, model.class_weight, model.feature_weight
        )
        positions, owner = RatingMatrix.gather_ranges(
            catalog.kw_indptr, cols
        )
        return base + np.bincount(
            owner, weights=terms[catalog.kw_flat[positions]],
            minlength=cols.size,
        )

    def score(self, user_id: str, item_id: str) -> float:
        """Raw like/dislike log-odds for an item under the user's model."""
        matrix = self._matrix()
        col = matrix.col_of[self.dataset.item(item_id).item_id]
        model = self.model_for(user_id)
        pool = np.full(1, col)
        return float(self._pool_log_odds(model, pool)[0])

    def _keyword_contributions(
        self, user_id: str, item_id: str
    ) -> list[KeywordInfluence]:
        """Per-keyword additive log-odds contributions for an item.

        Each delta is computed as ``(base + term) - base`` — the exact
        float expression the one-keyword-document formulation evaluates.
        """
        matrix = self._matrix()
        catalog = self.catalog
        model = self.model_for(user_id)
        col = matrix.col_of[self.dataset.item(item_id).item_id]
        item_kw = catalog.item_keywords(col)
        if float(model.class_weight.sum()) <= 0.0:
            deltas = np.full(item_kw.size, 0.0)
        else:
            base, terms = log_odds_terms(
                self.alpha, model.class_weight, model.feature_weight
            )
            deltas = (base + terms[item_kw]) - base
        contributions = [
            KeywordInfluence(keyword=keyword, weight=delta)
            for keyword, delta in zip(
                map(catalog.keywords.__getitem__, item_kw.tolist()),
                deltas.tolist(),
            )
        ]
        contributions.sort(key=lambda k: -k.weight)
        return contributions

    def rating_influences(
        self, user_id: str, item_id: str
    ) -> list[RatingInfluence]:
        """Exact leave-one-out influence of each past rating on the score.

        ``influence > 0`` means the past rating pushed the recommendation
        up; the magnitudes are what Figure 3 reports as percentages (see
        :meth:`InfluenceEvidence.percentages`).  All leave-one-out scores
        evaluate in one ``(examples, keywords)`` array expression.
        """
        matrix = self._matrix()
        col = matrix.col_of[self.dataset.item(item_id).item_id]
        model = self.model_for(user_id)
        pool = np.full(1, col)
        full_score = float(self._pool_log_odds(model, pool)[0])
        return self._loo_influences(model, col, full_score)

    def _loo_influences(
        self, model: _UserModel, col: int, full_score: float
    ) -> list[RatingInfluence]:
        catalog = self.catalog
        alpha = self.alpha
        item_kw = catalog.item_keywords(col)
        like = model.example_labels.astype(np.float64)
        removed_like = model.example_weights * like
        removed_dislike = model.example_weights * (1.0 - like)
        cw_like = model.class_weight[1] - removed_like
        cw_dislike = model.class_weight[0] - removed_dislike
        member = model.kw_mask[:, item_kw]
        fw_like = (
            model.feature_weight[1][item_kw][None, :]
            - removed_like[:, None] * member
        )
        fw_dislike = (
            model.feature_weight[0][item_kw][None, :]
            - removed_dislike[:, None] * member
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            base = np.log((cw_like + alpha) / (cw_dislike + alpha))
            term_rows = np.log(
                ((fw_like + alpha) / (cw_like[:, None] + 2.0 * alpha))
                / ((fw_dislike + alpha) / (cw_dislike[:, None] + 2.0 * alpha))
            )
        reduced = np.where(
            cw_like + cw_dislike > 0.0,
            base + term_rows.sum(axis=1),
            0.0,
        )
        influences = [
            RatingInfluence(
                item_id=example_id, rating=value, influence=influence
            )
            for example_id, value, influence in zip(
                model.example_ids,
                model.example_values.tolist(),
                (full_score - reduced).tolist(),
            )
        ]
        influences.sort(key=lambda r: -abs(r.influence))
        return influences

    # -- engine hooks ------------------------------------------------------

    def _score_pool(
        self, user_id: str, cols: np.ndarray, matrix: RatingMatrix
    ) -> PoolScores:
        """P(like | item) over the pool, mapped onto the rating scale."""
        model = self.model_for(user_id)
        size = cols.size
        n_examples = len(model.example_ids)
        if n_examples < self.min_examples:
            zero = np.full(size, 0.0)
            return PoolScores(
                cols=cols,
                values=zero,
                confidences=zero,
                ok=np.full(size, False),
                context={"n_examples": n_examples},
            )
        log_odds = self._pool_log_odds(model, cols)
        probability_like = 1.0 / (1.0 + np.exp(-log_odds))
        values = matrix.scale.denormalize_array(probability_like)
        confidences = min(1.0, n_examples / 10.0) * np.minimum(
            1.0, np.abs(log_odds) / 2.0 + 0.2
        )
        return PoolScores(
            cols=cols,
            values=values,
            confidences=confidences,
            ok=np.full(size, True),
            context={
                "model": model,
                "log_odds": log_odds,
                "n_examples": n_examples,
            },
        )

    def _evidence_for(
        self,
        user_id: str,
        scores: PoolScores,
        idx: int,
        matrix: RatingMatrix,
    ) -> tuple[Evidence, ...]:
        """Leave-one-out influences plus per-keyword contributions."""
        model = scores.context["model"]
        col = int(scores.cols[idx])
        full_score = float(scores.context["log_odds"][idx])
        item_id = matrix.item_ids[col]
        influence_evidence = InfluenceEvidence(
            influences=tuple(
                self._loo_influences(model, col, full_score)
            )
        )
        keyword_evidence = KeywordEvidence(
            influences=tuple(
                self._keyword_contributions(user_id, item_id)
            )
        )
        return (influence_evidence, keyword_evidence)

    def _impossible_message(
        self, user_id: str, item_id: str, scores: PoolScores, idx: int
    ) -> str:
        n_examples = int(scores.context["n_examples"])
        return (
            f"user {user_id!r} has only {n_examples} rated "
            f"items; {self.min_examples} required"
        )
